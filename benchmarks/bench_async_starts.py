"""Experiment A4 — §5.3: asynchronous starts cost at most max(s_i) extra.

Push-Sum under staggered starts equals Push-Sum on the masked dynamic
graph, whose dynamic diameter is at most ``max(s_i) + D``.  The sweep
measures rounds-to-ε as the latest start grows and checks the overhead is
roughly additive in ``max(s_i)``, never multiplicative.
"""

from conftest import emit

from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.starts import AsynchronousStartGraph
from repro.graphs.builders import random_symmetric_connected

EPS = 1e-8
N = 6
INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
TARGET = sum(INPUTS) / N


def rounds_to_eps(latest_start, seed=4, max_rounds=20000):
    base = StaticAsDynamic(random_symmetric_connected(N, seed=seed))
    starts = [1 + (i * latest_start) // (N - 1) for i in range(N)]
    starts[-1] = max(1, latest_start)
    dyn = AsynchronousStartGraph(base, starts) if latest_start > 1 else base
    ex = Execution(PushSumAlgorithm(), dyn, inputs=INPUTS)
    for t in range(1, max_rounds + 1):
        ex.step()
        if max(abs(o - TARGET) for o in ex.outputs()) <= EPS:
            return t
    raise AssertionError("no convergence")


def test_async_start_overhead(benchmark):
    baseline = rounds_to_eps(1)
    rows = [[1, baseline, 0]]
    for latest in (5, 10, 20, 40):
        t = rounds_to_eps(latest)
        rows.append([latest, t, t - baseline])
        # Additive overhead: bounded by the start delay plus slack, never
        # a multiplicative blow-up.
        assert t <= baseline + latest + 25
    emit(render_table(
        ["latest start max(s_i)", "rounds-to-ε", "overhead vs synchronous"],
        rows,
        title="A4 — §5.3 Push-Sum under asynchronous starts",
    ))
    benchmark.extra_info["rows"] = [list(map(int, r)) for r in rows]
    benchmark.pedantic(lambda: rounds_to_eps(10), rounds=3, iterations=1)
