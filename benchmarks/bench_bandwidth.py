"""Experiment A7 — bandwidth: the cost side of the computability trades.

On one dynamic symmetric network, measure the per-round worst-case
message size of each algorithm family.  Expected shapes, per the paper's
discussion:

* gossip and the averaging algorithms (Push-Sum / Metropolis /
  constant-weight) — bounded messages, flat curves;
* view exchange (static pipeline) — linear growth in t without the
  finite-state cap, flat once capped;
* history trees — unbounded growth ("infinite bandwidth"), the price of
  exactness without knowledge.
"""

from conftest import emit

from repro.algorithms.constant_weight import ConstantWeightFrequency
from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.minimum_base_alg import SymmetricViewAlgorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.analysis.bandwidth import bandwidth_curve
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_symmetric
from repro.graphs.builders import random_symmetric_connected

INPUTS = [3, 1, 1, 4, 1]
ROUNDS = 24
CHECKPOINTS = (4, 12, 24)


def curve_for(algorithm, static=False):
    if static:
        network = random_symmetric_connected(len(INPUTS), seed=6)
    else:
        network = random_dynamic_symmetric(len(INPUTS), seed=6)
    ex = Execution(algorithm, network, inputs=INPUTS)
    return bandwidth_curve(ex, ROUNDS)


def test_bandwidth_curves(benchmark):
    curves = {
        "gossip (set flood)": curve_for(GossipAlgorithm()),
        "Push-Sum frequencies": curve_for(PushSumFrequencyAlgorithm(mode="frequencies")),
        "constant-weight 1/N": curve_for(ConstantWeightFrequency(mode="exact", n_bound=7)),
        "views (unbounded)": curve_for(SymmetricViewAlgorithm(), static=True),
        "views (finite-state, cap 16)": curve_for(
            SymmetricViewAlgorithm(max_view_depth=16), static=True
        ),
        "history trees": curve_for(HistoryTreeAlgorithm()),
    }
    rows = [
        [name] + [c[t - 1] for t in CHECKPOINTS]
        for name, c in curves.items()
    ]
    emit(render_table(
        ["algorithm"] + [f"units @ round {t}" for t in CHECKPOINTS],
        rows,
        title="A7 — worst-case message size (units) over time",
    ))

    # Shapes: bounded families stay flat; unbounded views and history
    # trees keep growing; the depth cap flattens the view curve.
    for name in ("gossip (set flood)", "Push-Sum frequencies", "constant-weight 1/N"):
        c = curves[name]
        assert c[-1] <= 4 * max(c[3], 1), f"{name} should be bounded"
    assert curves["views (unbounded)"][-1] > 1.5 * curves["views (unbounded)"][7]
    assert curves["history trees"][-1] > 1.5 * curves["history trees"][7]
    capped = curves["views (finite-state, cap 16)"]
    assert capped[-1] == capped[-5], "capped views must plateau"
    assert capped[-1] < curves["views (unbounded)"][-1]

    benchmark.pedantic(
        lambda: curve_for(SymmetricViewAlgorithm(), static=True), rounds=3, iterations=1
    )
