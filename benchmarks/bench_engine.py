"""Experiment E1 — old-vs-new executor throughput (the engine refactor).

Measures rounds/sec of the layered engine (compiled delivery plans,
flavor-resolved transports, one scramble stream) against the pre-engine
monolithic interpreter (kept alive verbatim as
``ReferenceExecution(legacy_scramble=True)``) on the two workloads the
refactor targeted:

* a **static 64-node bidirectional ring** — the plan compiles once and
  every subsequent round is pure transport (the table harness's shape);
* a **random dynamic graph** (fresh strongly connected digraph each
  round) — plans must be compiled per round graph, so this bounds the
  worst case for the plan layer.

A third workload benchmarks the PR-7 **vector backend**: Push-Sum on a
64-node *periodic* dynamic graph (16 pre-built strongly connected
digraphs cycled round-robin, so plans cache but the topology genuinely
changes every round).  The object engine runs one Python call per vertex
per round; the vector engine runs the same rounds as numpy
gather/segment-reduce over cached CSR index arrays.  Acceptance bar:
``vector ≥ 10×`` object on this workload.

Results are written to ``BENCH_engine.json`` next to this file's repo
root, and the static-ring speedup is asserted ≥ 2× (the refactor's
acceptance bar).

Run directly (``python benchmarks/bench_engine.py``) or via pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.algorithms import PushSumAlgorithm
from repro.core.agent import BroadcastAlgorithm
from repro.core.engine import ReferenceExecution
from repro.core.engine.vector import numpy_available
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.graphs.builders import bidirectional_ring, random_strongly_connected

N = 64
ROUNDS = 300
REPEATS = 3
VECTOR_SPEEDUP_BAR = 10.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


class FloodCount(BroadcastAlgorithm):
    """A cheap but honest workload: executor overhead dominates."""

    def initial_state(self, input_value):
        return int(input_value)

    def message(self, state):
        return state

    def transition(self, state, received):
        return max(state, max(received))

    def output(self, state):
        return state


def _throughput(make_execution, rounds: int = ROUNDS, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` rounds/sec for a fresh execution each repeat."""
    best = 0.0
    for _ in range(repeats):
        execution = make_execution()
        started = time.perf_counter()
        execution.run(rounds)
        elapsed = time.perf_counter() - started
        best = max(best, rounds / elapsed)
    return best


def _workloads():
    inputs = list(range(N))
    ring = bidirectional_ring(N)
    return {
        "static_ring_64": (
            lambda: ReferenceExecution(
                FloodCount(), ring, inputs=inputs, legacy_scramble=True
            ),
            lambda: Execution(FloodCount(), ring, inputs=inputs),
        ),
        "random_dynamic_64": (
            lambda: ReferenceExecution(
                FloodCount(),
                random_dynamic_strongly_connected(N, seed=7),
                inputs=inputs,
                legacy_scramble=True,
            ),
            lambda: Execution(
                FloodCount(), random_dynamic_strongly_connected(N, seed=7), inputs=inputs
            ),
        ),
    }


def _vector_workload():
    """Object vs vector Push-Sum on a periodic 64-node dynamic graph.

    Each execution first runs one full 16-graph period untimed so every
    round graph's plan (and the vector path's CSR arrays) is compiled and
    cached — the timed section then measures steady-state round
    throughput, which is what the table harness's long runs see.  Both
    engines get the identical warm-up.
    """
    inputs = [float(v + 1) for v in range(N)]
    graphs = [random_strongly_connected(N, 0.2, seed=100 + i) for i in range(16)]

    def make(vector):
        def build():
            execution = Execution(
                PushSumAlgorithm(),
                PeriodicDynamicGraph(graphs),
                inputs=inputs,
                vector=vector,
            )
            execution.run(len(graphs))  # warm the plan/CSR caches
            return execution

        return build

    # Longer timed section + more repeats than the interpreter workloads:
    # the vector engine finishes 300 rounds in ~10ms, so per-run jitter
    # needs more amortization before the ratio stabilizes.
    object_rps = _throughput(make(False), rounds=600, repeats=5)
    vector_rps = _throughput(make(True), rounds=600, repeats=5)
    return {
        "object_rounds_per_sec": round(object_rps, 1),
        "vector_rounds_per_sec": round(vector_rps, 1),
        "speedup": round(vector_rps / object_rps, 2),
    }


def run_bench() -> dict:
    results = {"n": N, "rounds": ROUNDS, "workloads": {}}
    for name, (make_old, make_new) in _workloads().items():
        old_rps = _throughput(make_old)
        new_rps = _throughput(make_new)
        results["workloads"][name] = {
            "old_rounds_per_sec": round(old_rps, 1),
            "new_rounds_per_sec": round(new_rps, 1),
            "speedup": round(new_rps / old_rps, 2),
        }
    if numpy_available():
        results["vector_push_sum_dynamic_64"] = _vector_workload()
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    lines = [f"Engine throughput (n={results['n']}, {results['rounds']} rounds)"]
    for name, r in results["workloads"].items():
        lines.append(
            f"  {name:<20} old {r['old_rounds_per_sec']:>9.1f} r/s   "
            f"new {r['new_rounds_per_sec']:>9.1f} r/s   ({r['speedup']:.2f}x)"
        )
    vec = results.get("vector_push_sum_dynamic_64")
    if vec:
        lines.append(
            f"  {'vector_push_sum':<20} obj {vec['object_rounds_per_sec']:>9.1f} r/s   "
            f"vec {vec['vector_rounds_per_sec']:>9.1f} r/s   ({vec['speedup']:.2f}x)"
        )
    lines.append(f"  -> {RESULT_PATH.name}")
    return "\n".join(lines)


def test_engine_speedup():
    results = run_bench()
    emit(_render(results))
    ring = results["workloads"]["static_ring_64"]
    assert ring["speedup"] >= 2.0, (
        f"static-ring speedup {ring['speedup']}x below the 2x acceptance bar"
    )
    dynamic = results["workloads"]["random_dynamic_64"]
    assert dynamic["speedup"] >= 1.0, (
        f"engine slower than the naive interpreter on dynamic graphs: {dynamic}"
    )
    vec = results.get("vector_push_sum_dynamic_64")
    if vec is not None:
        assert vec["speedup"] >= VECTOR_SPEEDUP_BAR, (
            f"vector backend speedup {vec['speedup']}x below the "
            f"{VECTOR_SPEEDUP_BAR}x acceptance bar"
        )


if __name__ == "__main__":
    print(_render(run_bench()))
