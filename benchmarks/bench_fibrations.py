"""Experiment E4 — worklist partition refinement + fingerprint memoization.

Two layers of the PR-4 optimisation, measured separately:

* **Partition refinement** — the Hopcroft/Paige–Tarjan-style worklist
  refiner (``equitable_partition``) against the retained naive
  iterate-to-fixpoint reference (``equitable_partition_reference``).
  The adversarial workload is a **uniform directed chain**: the naive
  refiner discovers one new class per full pass (Θ(n) passes of Θ(n)
  signature work), while the worklist pops one singleton splitter per
  split.  A valued bidirectional ring that collapses in one pass is kept
  as the honest near-best case for the naive code.

* **Plan interning** — ``bench_engine``'s ``random_dynamic_64`` workload
  rerun against a *recurring* adversary (a fixed pool of ``PERIOD``
  graphs cycled per round, the regime of Chakraborty–Milani–Mosteiro).
  With ``intern=True`` the round graphs are collapsed through the
  content-addressed memo layer, so the engine compiles ``PERIOD`` plans
  total instead of one per round; ``intern=False`` is the baseline.

Results are written to ``BENCH_fibrations.json`` at the repo root; the
chain speedup at n = 256 is asserted ≥ 5× (the PR's acceptance bar).

Run directly (``python benchmarks/bench_fibrations.py``) or via pytest.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from conftest import emit
from bench_engine import FloodCount

from repro.core.execution import Execution
from repro.core.memo import clear_memos
from repro.dynamics.generators import recurring_dynamic_pool
from repro.fibrations.minimum_base import (
    equitable_partition,
    equitable_partition_reference,
    same_partition,
)
from repro.graphs.builders import bidirectional_ring
from repro.graphs.digraph import DiGraph

N_ENGINE = 64
ROUNDS = 300
PERIOD = 5
REPEATS = 5
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fibrations.json"


def _uniform_chain(n: int) -> DiGraph:
    """A directed path with no values: the naive refiner's worst case."""
    return DiGraph(n, [(i, i + 1) for i in range(n - 1)])


def _valued_ring(n: int) -> DiGraph:
    """A two-valued ring that stabilizes after a single pass."""
    return bidirectional_ring(n, values=[v % 2 for v in range(n)])


PARTITION_WORKLOADS = {
    "uniform_chain_64": lambda: _uniform_chain(64),
    "uniform_chain_256": lambda: _uniform_chain(256),
    "valued_ring_256": lambda: _valued_ring(256),
}


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of one ``fn()`` call."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _one_run(make_execution, rounds: int = ROUNDS) -> float:
    """Rounds/sec of a single fresh execution."""
    execution = make_execution()
    started = time.perf_counter()
    execution.run(rounds)
    return rounds / (time.perf_counter() - started)


def _paired_throughput(make_a, make_b, repeats: int = 3):
    """Best-of-``repeats`` rounds/sec for two contenders, interleaved
    a, b, a, b, … so background-load drift hits both equally."""
    best_a = best_b = 0.0
    for _ in range(repeats):
        best_a = max(best_a, _one_run(make_a))
        best_b = max(best_b, _one_run(make_b))
    return best_a, best_b


def run_bench() -> dict:
    results = {"partition": {}, "plan_interning": {}}

    for name, make_graph in PARTITION_WORKLOADS.items():
        g = make_graph()
        # Both refiners must induce the same partition before we time them.
        assert same_partition(equitable_partition(g), equitable_partition_reference(g))
        ref = _best_seconds(lambda: equitable_partition_reference(g))
        wl = _best_seconds(lambda: equitable_partition(g))
        results["partition"][name] = {
            "n": g.n,
            "reference_seconds": round(ref, 6),
            "worklist_seconds": round(wl, 6),
            "speedup": round(ref / wl, 2),
        }

    clear_memos()
    inputs = list(range(N_ENGINE))
    baseline_rps, interned_rps = _paired_throughput(
        lambda: Execution(
            FloodCount(),
            recurring_dynamic_pool(N_ENGINE, period=PERIOD, seed=7, intern=False),
            inputs=inputs,
        ),
        lambda: Execution(
            FloodCount(),
            recurring_dynamic_pool(N_ENGINE, period=PERIOD, seed=7, intern=True),
            inputs=inputs,
        ),
    )
    results["plan_interning"]["recurring_dynamic_64"] = {
        "n": N_ENGINE,
        "rounds": ROUNDS,
        "period": PERIOD,
        "baseline_rounds_per_sec": round(baseline_rps, 1),
        "interned_rounds_per_sec": round(interned_rps, 1),
        "speedup": round(interned_rps / baseline_rps, 2),
    }

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    lines = ["Partition refinement (worklist vs naive reference)"]
    for name, r in results["partition"].items():
        lines.append(
            f"  {name:<20} naive {r['reference_seconds'] * 1e3:>9.2f} ms   "
            f"worklist {r['worklist_seconds'] * 1e3:>8.2f} ms   ({r['speedup']:.2f}x)"
        )
    lines.append(f"Plan interning (recurring pool of {PERIOD}, {ROUNDS} rounds)")
    for name, r in results["plan_interning"].items():
        lines.append(
            f"  {name:<20} fresh {r['baseline_rounds_per_sec']:>9.1f} r/s   "
            f"interned {r['interned_rounds_per_sec']:>8.1f} r/s   ({r['speedup']:.2f}x)"
        )
    lines.append(f"  -> {RESULT_PATH.name}")
    return "\n".join(lines)


def test_fibration_refinement_speedup():
    results = run_bench()
    emit(_render(results))
    chain = results["partition"]["uniform_chain_256"]
    assert chain["speedup"] >= 5.0, (
        f"worklist speedup {chain['speedup']}x on the n=256 chain is below "
        f"the 5x acceptance bar"
    )
    # The interning gain on this workload is real but modest (~10%: plan
    # compilation is O(n + m) against a round that is also O(n + m) but
    # constant-heavier), so the test only guards against interning
    # *costing* throughput; the recorded JSON carries the honest number.
    interning = results["plan_interning"]["recurring_dynamic_64"]
    assert interning["speedup"] >= 0.9, (
        f"plan interning materially slower than per-round compilation: {interning}"
    )


if __name__ == "__main__":
    print(_render(run_bench()))
