"""Experiment A1 — ablation: eq. (1) elimination vs eq. (3)/(4) closed forms.

The paper notes that output-port awareness and symmetric communications
admit closed-form fibre ratios (all-equal; spanning-tree ratios) while the
outdegree model needs integer Gaussian elimination.  The ablation checks
all applicable solvers agree on the same graphs and compares their cost.
"""

import pytest

from conftest import emit

from repro.algorithms.fibre_solver import (
    fibre_ratios_outdegree,
    fibre_ratios_symmetric,
)
from repro.algorithms.minimum_base_alg import (
    OutdegreeViewAlgorithm,
    SymmetricViewAlgorithm,
)
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.graphs.builders import random_symmetric_connected, star_graph


def stabilized_base(algorithm, graph, rounds=28):
    ex = Execution(algorithm, graph, inputs=list(graph.values))
    ex.run(rounds)
    base = ex.outputs()[0]
    assert base is not None
    return base


GRAPHS = {
    "star(6)": star_graph(6, values=["h", "l", "l", "l", "l", "l"]),
    "random_sym(7)": random_symmetric_connected(7, seed=2).with_values(
        [1, 2, 1, 2, 1, 2, 1]
    ),
    "random_sym(8)": random_symmetric_connected(8, seed=5).with_values(
        [1, 1, 2, 2, 1, 1, 2, 2]
    ),
}


def test_solver_agreement(benchmark):
    rows = []
    for name, g in GRAPHS.items():
        base_od = stabilized_base(OutdegreeViewAlgorithm(), g)
        base_sym = stabilized_base(SymmetricViewAlgorithm(), g)
        z_od = fibre_ratios_outdegree(base_od)
        z_sym = fibre_ratios_symmetric(base_sym)
        assert z_od is not None and z_sym is not None
        assert sorted(z_od) == sorted(z_sym)
        rows.append([name, str(sorted(z_od)), str(sorted(z_sym))])
    emit(render_table(
        ["graph", "eq. (1) Gaussian (outdegree)", "eq. (4) ratios (symmetric)"],
        rows,
        title="A1 — fibre-ratio solver agreement",
    ))
    g = GRAPHS["star(6)"]
    benchmark.pedantic(
        lambda: fibre_ratios_outdegree(stabilized_base(OutdegreeViewAlgorithm(), g)),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("solver_name", ["outdegree", "symmetric"])
def test_solver_cost(benchmark, solver_name):
    g = GRAPHS["random_sym(8)"]
    if solver_name == "outdegree":
        base = stabilized_base(OutdegreeViewAlgorithm(), g)
        benchmark(lambda: fibre_ratios_outdegree(base))
    else:
        base = stabilized_base(SymmetricViewAlgorithm(), g)
        benchmark(lambda: fibre_ratios_symmetric(base))
