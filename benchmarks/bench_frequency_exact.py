"""Experiment Q3 — Corollary 5.3: exact frequencies in O(n² D log N).

With a known bound ``N ≥ n``, rounding Push-Sum's estimates to the nearest
rational of ``ℚ_N`` becomes exact once the estimate error drops below
``1/(2N²)`` — so the stabilization round should grow like ``log N`` at
fixed (n, D).  The sweep measures the first round from which the rounded
frequency function is correct and stays correct.
"""

import math

from conftest import emit

from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.functions.frequency import frequencies_of

INPUTS = [3, 1, 1, 4, 1, 4]


def stabilization_round(n_bound, seed=5, horizon=4000):
    dyn = random_dynamic_strongly_connected(len(INPUTS), seed=seed)
    alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=n_bound)
    ex = Execution(alg, dyn, inputs=INPUTS)
    truth = frequencies_of(INPUTS)
    last_bad = 0
    for t in range(1, horizon + 1):
        ex.step()
        if any(o != truth for o in ex.outputs()):
            last_bad = t
        elif t - last_bad > 200:
            break  # stable long enough; stop early
    return last_bad + 1


def test_exact_frequency_stabilization(benchmark):
    bounds = (8, 32, 128, 512)
    rows = []
    series = []
    for n_bound in bounds:
        t = stabilization_round(n_bound)
        series.append(t)
        rows.append([n_bound, t, f"{t / math.log(n_bound):.1f}"])
    emit(render_table(
        ["bound N", "stabilization round", "rounds / log N"],
        rows,
        title="Corollary 5.3 — exact frequencies via ℚ_N rounding",
    ))
    # Shape: non-decreasing in N, and growth consistent with log N — the
    # largest bound (64× the smallest) costs far less than 64× the rounds.
    assert series == sorted(series)
    assert series[-1] <= 8 * series[0] + 8
    benchmark.extra_info["series"] = dict(zip(map(str, bounds), series))
    benchmark.pedantic(lambda: stabilization_round(32), rounds=3, iterations=1)
