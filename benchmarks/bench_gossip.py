"""Experiment Q5 — §1: flooding recovers the support within the diameter.

"A simple flooding algorithm easily allows all agents to recover the set
of all input values in finite time" — concretely, within the (dynamic)
diameter.  The sweep measures the stabilization round of gossip across
graph families and checks it never exceeds D (static) or the certified
dynamic diameter (dynamic).
"""

from conftest import emit

from repro.algorithms.gossip import GossipAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.generators import random_dynamic_strongly_connected, sparse_pulsed_dynamic
from repro.graphs.builders import (
    bidirectional_ring,
    directed_ring,
    hypercube,
    random_strongly_connected,
    star_graph,
)
from repro.graphs.properties import diameter


def gossip_stabilization(network, inputs, horizon):
    ex = Execution(GossipAlgorithm(), network, inputs=inputs)
    target = frozenset(inputs)
    last_bad = 0
    for t in range(1, horizon + 1):
        ex.step()
        if any(o != target for o in ex.outputs()):
            last_bad = t
    return last_bad + 1


def test_gossip_within_diameter(benchmark):
    rows = []
    for name, g in (
        ("directed_ring(8)", directed_ring(8)),
        ("bidirectional_ring(8)", bidirectional_ring(8)),
        ("star(8)", star_graph(8)),
        ("hypercube(3)", hypercube(3)),
        ("random(8)", random_strongly_connected(8, seed=3)),
    ):
        inputs = [i % 3 for i in range(g.n)]
        d = diameter(g)
        t = gossip_stabilization(g, inputs, horizon=2 * d + 4)
        rows.append([name, g.n, d, t])
        assert t <= d + 1

    for name, dyn in (
        ("random dynamic(8)", random_dynamic_strongly_connected(8, seed=4)),
        ("pulsed(6, every 3)", sparse_pulsed_dynamic(6, pulse_every=3, seed=5)),
    ):
        inputs = [i % 3 for i in range(dyn.n)]
        d = dynamic_diameter(dyn, horizon=4)
        t = gossip_stabilization(dyn, inputs, horizon=3 * d + 6)
        rows.append([name, dyn.n, d, t])
        assert t <= d + 1
    emit(render_table(
        ["network", "n", "diameter D", "gossip stabilization round"],
        rows,
        title="Q5 — §1: set flooding stabilizes within the diameter",
    ))
    benchmark.pedantic(
        lambda: gossip_stabilization(
            random_strongly_connected(8, seed=3), [i % 3 for i in range(8)], horizon=12
        ),
        rounds=5,
        iterations=1,
    )
