"""Experiment A5 — history-tree counting: cost of exactness (§5 discussion).

The paper contrasts Di Luna–Viglietta's exact linear-time algorithm
(unbounded state and bandwidth) with Push-Sum (asymptotic, constant
state).  This ablation measures, on the same dynamic symmetric networks,
(a) the round at which history-tree counting becomes exact vs the round
at which Push-Sum's ℚ_N rounding becomes exact, and (b) the growth of the
history DAG — the "infinite number of states" in action.
"""

from conftest import emit

from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_symmetric
from repro.functions.frequency import frequencies_of
from repro.graphs.views import dag_size

INPUTS = [3, 1, 1, 4, 1]


def history_stabilization(seed, horizon=30):
    dyn = random_dynamic_symmetric(len(INPUTS), seed=seed)
    alg = HistoryTreeAlgorithm()
    ex = Execution(alg, dyn, inputs=INPUTS)
    truth = {w: f for w, f in frequencies_of(INPUTS).items()}
    last_bad, size = 0, 0
    for t in range(1, horizon + 1):
        ex.step()
        outs = ex.outputs()
        if any(o != truth for o in outs):
            last_bad = t
    size = max(dag_size(s[1]) for s in ex.states)
    return last_bad + 1, size


def pushsum_stabilization(seed, horizon=3000):
    dyn = random_dynamic_symmetric(len(INPUTS), seed=seed)
    alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=len(INPUTS))
    ex = Execution(alg, dyn, inputs=INPUTS)
    truth = frequencies_of(INPUTS)
    last_bad = 0
    for t in range(1, horizon + 1):
        ex.step()
        if any(o != truth for o in ex.outputs()):
            last_bad = t
        elif t - last_bad > 150:
            break
    return last_bad + 1


def test_exactness_tradeoff(benchmark):
    rows = []
    for seed in (0, 1, 2):
        ht_round, ht_state = history_stabilization(seed)
        ps_round = pushsum_stabilization(seed)
        rows.append([seed, ht_round, ht_state, ps_round, "O(1) floats/value"])
        # Shape: history trees are exact far sooner (linear in D vs n²D log N)
        # at the cost of ever-growing state.
        assert ht_round <= ps_round
    emit(render_table(
        ["seed", "history-tree exact at round", "history DAG nodes (30 rounds)",
         "Push-Sum+ℚ_N exact at round", "Push-Sum state"],
        rows,
        title="A5 — exactness vs state: history trees against Push-Sum",
    ))
    benchmark.pedantic(lambda: history_stabilization(0, horizon=16), rounds=2, iterations=1)
