"""Experiment A3 — §4.1 ring collapses: the impossibility micro-benchmark.

Verifies (and times) the full collapse diagram ``R_n ← R_p → R_m`` at
growing sizes: the Lifting-lemma check must hold at every size, with the
forced-equal outputs certifying that the sum is uncomputable.
"""

from conftest import emit

from repro.algorithms.gossip import GossipAlgorithm
from repro.analysis.impossibility import demonstrate_collapse
from repro.analysis.reporting import render_table


def collapse_at(scale):
    outcome = demonstrate_collapse(
        GossipAlgorithm,
        n=2 * scale,
        m=4 * scale,
        base_values=[1, 2],
        rounds=2 * scale + 4,
    )
    assert outcome.lifted
    return outcome


def test_collapse_scaling(benchmark):
    rows = []
    for scale in (2, 4, 8, 16):
        outcome = collapse_at(scale)
        sums = (3 * 2 * scale // 2, 3 * 4 * scale // 2)
        rows.append([
            f"R_{2*scale} ← R_2 → R_{4*scale}",
            "yes" if outcome.lifted else "NO",
            f"{sums[0]} vs {sums[1]}",
        ])
    emit(render_table(
        ["collapse diagram", "outputs lift fibrewise", "sum(v) vs sum(w) (forced equal outputs)"],
        rows,
        title="A3 — §4.1 impossibility certificates",
    ))
    benchmark(lambda: collapse_at(8))
