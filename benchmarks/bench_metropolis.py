"""Experiment Q4 — Metropolis vs Push-Sum on symmetric dynamic networks.

The paper's §5 intro: Metropolis computes the average in symmetric
networks under outdegree awareness, with *quadratic* convergence when
every round's graph is connected [10]; Push-Sum carries the worst-case
``n² D log(1/ε)`` bound of Theorem 5.2.  Two shape checks:

* on well-connected random dynamic graphs both converge quickly and stay
  within a small constant factor of one another (neither blows up);
* on the bidirectional path — the classic high-diameter worst case — both
  algorithms' rounds-to-ε grow superlinearly (quadratic-flavored) in n,
  matching the quadratic bounds the paper cites.
"""

from conftest import emit

from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_symmetric
from repro.graphs.builders import path_graph

EPS = 1e-6


def rounds_to_eps(algorithm_factory, network, inputs, max_rounds=200000):
    target = sum(inputs) / len(inputs)
    ex = Execution(algorithm_factory(), network, inputs=inputs)
    for t in range(1, max_rounds + 1):
        ex.step()
        if max(abs(o - target) for o in ex.outputs()) <= EPS:
            return t
    raise AssertionError(f"no convergence within {max_rounds} rounds")


def test_random_dynamic_comparison(benchmark):
    sizes = (4, 8, 12, 16)
    rows, metro, push = [], [], []
    for n in sizes:
        inputs = [float(i % 4) for i in range(n)]
        tm = rounds_to_eps(MetropolisAlgorithm, random_dynamic_symmetric(n, seed=3), inputs)
        tp = rounds_to_eps(PushSumAlgorithm, random_dynamic_symmetric(n, seed=3), inputs)
        metro.append(tm)
        push.append(tp)
        rows.append([n, tm, tp, f"{tp / tm:.2f}x"])
    emit(render_table(
        ["n", "Metropolis rounds", "Push-Sum rounds", "Push-Sum / Metropolis"],
        rows,
        title="Q4a — random connected symmetric dynamic graphs (ε=1e-6)",
    ))
    # Neither algorithm blows up relative to the other on easy instances.
    assert all(tm <= 3 * tp and tp <= 3 * tm for tm, tp in zip(metro, push))
    benchmark.extra_info["metropolis"] = dict(zip(map(str, sizes), metro))
    benchmark.extra_info["push_sum"] = dict(zip(map(str, sizes), push))
    benchmark.pedantic(
        lambda: rounds_to_eps(
            MetropolisAlgorithm, random_dynamic_symmetric(8, seed=3),
            [float(i % 4) for i in range(8)],
        ),
        rounds=3,
        iterations=1,
    )


def test_degree_blind_variant_cost(benchmark):
    """The paper's remark that the pure-symmetric (no outdegree) variant
    pays a higher temporal complexity: constant-weight 1/N averaging vs
    Metropolis on the same symmetric dynamic graphs."""
    from repro.algorithms.constant_weight import ConstantWeightAveraging

    rows = []
    for n in (4, 8, 12):
        inputs = [float(i % 4) for i in range(n)]
        tm = rounds_to_eps(MetropolisAlgorithm, random_dynamic_symmetric(n, seed=5), inputs)
        tc = rounds_to_eps(
            lambda: ConstantWeightAveraging(n + 2), random_dynamic_symmetric(n, seed=5), inputs
        )
        rows.append([n, tm, tc, f"{tc / tm:.2f}x"])
        assert tc >= tm  # degree-blindness never helps
    emit(render_table(
        ["n", "Metropolis (outdegree-aware)", "constant-weight 1/N (degree-blind)", "cost"],
        rows,
        title="Q4c — the price of dropping outdegree awareness (ε=1e-6)",
    ))
    benchmark.pedantic(
        lambda: rounds_to_eps(
            lambda: ConstantWeightAveraging(10),
            random_dynamic_symmetric(8, seed=5),
            [float(i % 4) for i in range(8)],
        ),
        rounds=3,
        iterations=1,
    )


def test_path_quadratic_growth(benchmark):
    sizes = (4, 8, 16)
    rows, metro, push = [], [], []
    for n in sizes:
        inputs = [float(i % 2) for i in range(n)]
        g = path_graph(n)
        tm = rounds_to_eps(MetropolisAlgorithm, g, inputs)
        tp = rounds_to_eps(PushSumAlgorithm, g, inputs)
        metro.append(tm)
        push.append(tp)
        rows.append([n, tm, tp])
    emit(render_table(
        ["n", "Metropolis rounds", "Push-Sum rounds"],
        rows,
        title="Q4b — bidirectional path: quadratic-flavored growth (ε=1e-6)",
    ))
    # Quadrupling n (4 -> 16) should multiply rounds by much more than 4
    # (quadratic predicts ~16x) but stay polynomial (well under ~n³).
    for series in (metro, push):
        assert series == sorted(series)
        growth = series[-1] / series[0]
        assert growth > 4, f"sub-quadratic-looking growth {growth}"
        assert growth < 64 * 4, f"super-cubic-looking growth {growth}"
    benchmark.pedantic(
        lambda: rounds_to_eps(MetropolisAlgorithm, path_graph(8), [float(i % 2) for i in range(8)]),
        rounds=3,
        iterations=1,
    )
