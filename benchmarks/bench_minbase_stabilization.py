"""Experiment Q2 — §3.2/§4.2: distributed minimum-base stabilization time.

Boldi–Vigna's infinite-state algorithm stabilizes by round ``n + D``; our
view-truncation extraction trusts only the top half of the view, so its
certified bound is ``2(n + D) + 2``.  The benchmark measures the *actual*
first round from which every agent's extracted base is isomorphic to the
true minimum base (and stays so), across graph families and sizes, and
asserts the measured series is within the certified bound and grows
linearly along the ring family.
"""

from conftest import emit

from repro.algorithms.minimum_base_alg import SymmetricViewAlgorithm, extract_base
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import bidirectional_ring, random_symmetric_connected
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.properties import diameter


def stabilization_round(graph, max_rounds=None):
    """First round from which all agents output the true base forever."""
    truth = minimum_base(graph).base
    alg = SymmetricViewAlgorithm()
    ex = Execution(alg, graph, inputs=list(graph.values))
    horizon = max_rounds or (2 * (graph.n + diameter(graph)) + 4)
    last_bad = 0
    for t in range(1, horizon + 1):
        ex.step()
        good = True
        for state in ex.states:
            base = extract_base(state[1], alg.builder)
            if base is None or not are_isomorphic(base, truth):
                good = False
                break
        if not good:
            last_bad = t
    return last_bad + 1


def ring_with_pattern(n):
    # One distinguished value: vertices are classified by their ring
    # distance to it, so the base has ~n/2 classes and telling deep
    # classes apart genuinely needs deep views — the worst-case regime of
    # the n + D bound (alternating patterns stabilize in O(1) instead).
    return bidirectional_ring(n, values=[2] + [1] * (n - 1))


def test_minbase_stabilization_sweep(benchmark):
    rows = []
    ring_series = []
    for n in (4, 6, 8, 10):
        g = ring_with_pattern(n)
        d = diameter(g)
        t = stabilization_round(g)
        ring_series.append(t)
        rows.append([f"ring({n})", n, d, t, n + d, 2 * (n + d) + 2])
        assert t <= 2 * (n + d) + 2
    for seed in (0, 1):
        g = random_symmetric_connected(8, seed=seed).with_values(
            [i % 3 for i in range(8)]
        )
        d = diameter(g)
        t = stabilization_round(g)
        rows.append([f"random(8, seed={seed})", 8, d, t, 8 + d, 2 * (8 + d) + 2])
        assert t <= 2 * (8 + d) + 2
    emit(render_table(
        ["graph", "n", "D", "measured stabilization", "paper bound n+D", "our certified 2(n+D)+2"],
        rows,
        title="§3.2/§4.2 — distributed minimum-base stabilization",
    ))
    # Linear growth along the ring family: roughly proportional to n.
    assert ring_series == sorted(ring_series)
    assert ring_series[-1] <= 4 * ring_series[0] + 8

    benchmark.extra_info["ring_series"] = ring_series
    benchmark.pedantic(lambda: stabilization_round(ring_with_pattern(8)), rounds=3, iterations=1)


def finite_state_stabilization(graph, max_view_depth):
    truth = minimum_base(graph).base
    alg = SymmetricViewAlgorithm(max_view_depth=max_view_depth)
    ex = Execution(alg, graph, inputs=list(graph.values))
    horizon = 2 * (graph.n + diameter(graph)) + max_view_depth + 4
    last_bad = 0
    for t in range(1, horizon + 1):
        ex.step()
        for state in ex.states:
            base = extract_base(state[1], alg.builder)
            if base is None or not are_isomorphic(base, truth):
                last_bad = t
                break
    return last_bad + 1


def test_finite_state_overhead(benchmark):
    """§3.2: the finite-state (depth-capped) variant stabilizes with only a
    modest overhead over the unbounded version — the paper quotes less
    than D·log(1+D) extra rounds for Boldi–Vigna's construction."""
    import math

    rows = []
    for n in (6, 8, 10):
        g = ring_with_pattern(n)
        d = diameter(g)
        unbounded = stabilization_round(g)
        capped = finite_state_stabilization(g, max_view_depth=2 * (n + d) + 2)
        overhead = capped - unbounded
        rows.append([n, d, unbounded, capped, overhead, f"{d * math.log(1 + d):.1f}"])
        # Depth-capping never helps, and its cost stays in the paper's
        # D log(1+D) ballpark (generous 4x slack for our extraction rule).
        assert capped >= unbounded
        assert overhead <= 4 * d * math.log(1 + d) + 4
    emit(render_table(
        ["n", "D", "unbounded stabilization", "finite-state stabilization",
         "overhead", "paper overhead D·log(1+D)"],
        rows,
        title="§3.2 — finite-state variant overhead",
    ))
    benchmark.pedantic(
        lambda: finite_state_stabilization(ring_with_pattern(8), 26), rounds=3, iterations=1
    )
