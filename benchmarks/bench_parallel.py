"""Experiment E2 — table regeneration through the process-parallel backend.

Regenerates every cell of Tables 1 and 2 (16 static + 12 dynamic = 28
cells) twice: once through the sequential batch runner, once fanned
across a 4-worker process pool (``parallel=True``), and checks the two
runs cell for cell — model, knowledge level, measured function class,
consistency verdict, and detail strings must be identical, the
determinism contract of :mod:`repro.core.engine.parallel`.

Results are written to ``BENCH_parallel.json`` at the repo root:
sequential and parallel wall time, the speedup, the host CPU count, and
the identity verdict.  The ≥2× speedup bar is only asserted on hosts
with at least 4 CPUs — on fewer cores a process pool cannot beat the
sequential runner, and the honest number is recorded either way.

Run directly (``python benchmarks/bench_parallel.py``) or via pytest.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.analysis.tables import reproduce_table1, reproduce_table2

WORKERS = 4
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _fingerprint(cells):
    """A cell's identity-relevant content, order preserved."""
    return [
        (
            cell.model.value,
            cell.knowledge.value,
            cell.dynamic,
            cell.label(),
            cell.consistent,
            tuple(cell.details),
        )
        for cell in cells
    ]


def _regenerate(parallel: bool):
    """All 28 cells of Tables 1 and 2, and the wall time taken."""
    started = time.perf_counter()
    cells = list(reproduce_table1(parallel=parallel, workers=WORKERS))
    cells += list(reproduce_table2(parallel=parallel, workers=WORKERS))
    return cells, time.perf_counter() - started


def run_bench() -> dict:
    seq_cells, seq_seconds = min(
        (_regenerate(parallel=False) for _ in range(REPEATS)), key=lambda r: r[1]
    )
    par_cells, par_seconds = min(
        (_regenerate(parallel=True) for _ in range(REPEATS)), key=lambda r: r[1]
    )
    cpu_count = os.cpu_count() or 1
    results = {
        "cells": len(seq_cells),
        "workers": WORKERS,
        "cpu_count": cpu_count,
        "sequential_seconds": round(seq_seconds, 3),
        "parallel_seconds": round(par_seconds, 3),
        "speedup": round(seq_seconds / par_seconds, 2),
        "identical": _fingerprint(seq_cells) == _fingerprint(par_cells),
        "all_consistent": all(cell.consistent for cell in seq_cells),
        # Honesty marker: on a <4-CPU host the ≥2x bar is not asserted,
        # and any reader of the checked-in JSON should know that.
        "skipped_speedup_assertion": cpu_count < 4,
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    return "\n".join(
        [
            f"Table regeneration, sequential vs {results['workers']}-worker pool "
            f"({results['cells']} cells, {results['cpu_count']} CPUs)",
            f"  sequential {results['sequential_seconds']:>7.3f} s",
            f"  parallel   {results['parallel_seconds']:>7.3f} s   "
            f"({results['speedup']:.2f}x, identical={results['identical']}"
            + (
                ", speedup bar skipped: <4 CPUs)"
                if results["skipped_speedup_assertion"]
                else ")"
            ),
            f"  -> {RESULT_PATH.name}",
        ]
    )


def test_parallel_tables_identical_and_fast():
    results = run_bench()
    emit(_render(results))
    assert results["cells"] == 28, f"expected 28 table cells, got {results['cells']}"
    assert results["identical"], "parallel table run diverged from sequential"
    assert results["all_consistent"], "some cell disagrees with the paper"
    if not results["skipped_speedup_assertion"]:
        assert results["speedup"] >= 2.0, (
            f"parallel speedup {results['speedup']}x below the 2x acceptance bar "
            f"on a {results['cpu_count']}-CPU host"
        )


if __name__ == "__main__":
    print(_render(run_bench()))
