"""Experiment Q1 — Theorem 5.2: Push-Sum within ε in O(n² D log(1/ε)).

Sweeps network size and accuracy, measuring rounds-to-ε on random dynamic
strongly connected graphs.  Shape checks: (a) every run meets the paper's
bound ``n² D log(1/ε)``; (b) rounds grow monotonically in ``log(1/ε)`` at
fixed (n, D); (c) no pathological growth with n at fixed ε.
"""

import math

from conftest import emit

from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.generators import random_dynamic_strongly_connected


def rounds_to_epsilon(n, eps, seed=0, max_rounds=20000):
    dyn = random_dynamic_strongly_connected(n, seed=seed)
    inputs = [float(i) for i in range(n)]
    target = sum(inputs) / n
    ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
    for t in range(1, max_rounds + 1):
        ex.step()
        if max(abs(o - target) for o in ex.outputs()) <= eps:
            return t, dynamic_diameter(dyn, horizon=3)
    raise AssertionError(f"no convergence within {max_rounds} rounds (n={n}, eps={eps})")


def test_pushsum_rate_sweep(benchmark):
    sizes = (4, 8, 12)
    epsilons = (1e-2, 1e-4, 1e-6)
    rows = []
    measured = {}
    for n in sizes:
        for eps in epsilons:
            t, d = rounds_to_epsilon(n, eps, seed=17)
            bound = n * n * d * math.log(1 / eps)
            measured[(n, eps)] = (t, bound)
            rows.append([n, d, f"{eps:g}", t, f"{bound:.0f}", f"{t / bound:.3f}"])
    emit(render_table(
        ["n", "D", "ε", "rounds-to-ε", "paper bound n²D·log(1/ε)", "ratio"],
        rows,
        title="Theorem 5.2 — Push-Sum convergence rate",
    ))
    # (a) inside the paper's bound.
    for (n, eps), (t, bound) in measured.items():
        assert t <= bound + 1, f"bound violated at n={n}, eps={eps}"
    # (b) monotone in log(1/ε).
    for n in sizes:
        series = [measured[(n, eps)][0] for eps in epsilons]
        assert series == sorted(series), f"not monotone in log(1/ε) at n={n}"
    benchmark.extra_info["rounds"] = {
        f"n{n}_eps{eps:g}": measured[(n, eps)][0] for n in sizes for eps in epsilons
    }
    benchmark.pedantic(lambda: rounds_to_epsilon(8, 1e-4, seed=17), rounds=3, iterations=1)
