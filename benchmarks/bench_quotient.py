"""Experiment A12 — quotient-accelerated execution on huge symmetric graphs.

The Lifting lemma (Lemma 3.1) makes a 65,536-vertex hypercube cost one
vertex per round: :class:`~repro.core.engine.quotient.QuotientExecution`
simulates the memoized minimum base and lifts the trajectory only when
states are actually read.  This benchmark measures that collapse on the
three stock vertex-transitive families at ``n = 2**16``:

* ``ring_65536`` — bidirectional ring, base 1;
* ``torus_256x256`` — 256×256 torus, base 1;
* ``hypercube_2^16`` — 16-dimensional hypercube (17-regular with
  self-loops: > 1.1 M messages per direct round), base 1.

For each family the quotient run's rounds/sec is paired against a direct
run's (the direct side gets few rounds — a single 2^16 hypercube round
costs seconds).  One-time costs are reported separately
(``activation_seconds``: the minimum-base refinement + base construction)
so the steady-state throughput ratio stays honest, alongside the
base-compression ratio ``full_n / base_n`` and the module's
activation/fallback counters.

Results land in ``BENCH_quotient.json`` at the repo root; the hypercube
speedup is asserted ≥ 10× (the PR's acceptance bar — measured values are
orders of magnitude above it).

Run directly (``python benchmarks/bench_quotient.py``) or via pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.algorithms import GossipAlgorithm
from repro.core.engine.quotient import clear_quotient_stats, quotient_stats
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring, hypercube, torus

N = 2**16
QUOTIENT_ROUNDS = 200
DIRECT_ROUNDS = 2
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_quotient.json"

WORKLOADS = {
    "ring_65536": lambda: bidirectional_ring(N),
    "torus_256x256": lambda: torus(256, 256),
    "hypercube_2^16": lambda: hypercube(16),
}


def _throughput(execution, rounds: int) -> float:
    started = time.perf_counter()
    execution.run(rounds)
    return rounds / (time.perf_counter() - started)


def run_bench() -> dict:
    clear_quotient_stats()
    results: dict = {"n": N, "workloads": {}}
    for name, make_graph in WORKLOADS.items():
        g = make_graph()
        inputs = [7] * g.n

        started = time.perf_counter()
        accelerated = Execution(
            GossipAlgorithm(max), g, inputs=inputs, quotient=True
        )
        activation_seconds = time.perf_counter() - started
        assert accelerated.quotient_active, (
            f"{name}: quotient did not activate "
            f"({accelerated.quotient_fallback_reason})"
        )
        quotient_rps = _throughput(accelerated, QUOTIENT_ROUNDS)

        direct = Execution(GossipAlgorithm(max), g, inputs=inputs)
        direct_rps = _throughput(direct, DIRECT_ROUNDS)

        # The lift is the honest read-out cost: one full-size vector copy.
        lift_started = time.perf_counter()
        lifted = accelerated.states
        lift_seconds = time.perf_counter() - lift_started
        assert len(lifted) == g.n

        results["workloads"][name] = {
            "full_n": g.n,
            "base_n": accelerated.base_n,
            "compression": g.n // accelerated.base_n,
            "activation_seconds": round(activation_seconds, 3),
            "lift_seconds": round(lift_seconds, 4),
            "quotient_rounds": QUOTIENT_ROUNDS,
            "direct_rounds": DIRECT_ROUNDS,
            "quotient_rounds_per_sec": round(quotient_rps, 1),
            "direct_rounds_per_sec": round(direct_rps, 3),
            "speedup": round(quotient_rps / direct_rps, 1),
        }
    results["quotient_stats"] = quotient_stats()
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    lines = [f"Quotient execution at n = {results['n']} (rounds/sec)"]
    for name, r in results["workloads"].items():
        lines.append(
            f"  {name:<16} base {r['base_n']:>2} ({r['compression']}x smaller)   "
            f"direct {r['direct_rounds_per_sec']:>8.3f} r/s   "
            f"quotient {r['quotient_rounds_per_sec']:>10.1f} r/s   "
            f"({r['speedup']:.0f}x)"
        )
    lines.append(f"  -> {RESULT_PATH.name}")
    return "\n".join(lines)


def test_quotient_speedup():
    results = run_bench()
    emit(_render(results))
    stats = results["quotient_stats"]
    assert stats["activations"] == len(WORKLOADS)
    for name, r in results["workloads"].items():
        assert r["compression"] == r["full_n"], f"{name}: expected a one-vertex base"
    cube = results["workloads"]["hypercube_2^16"]
    assert cube["speedup"] >= 10.0, (
        f"quotient speedup {cube['speedup']}x on the 2^16 hypercube is below "
        f"the 10x acceptance bar"
    )


if __name__ == "__main__":
    print(_render(run_bench()))
