"""Experiment A15 — sharded batch dispatch vs the single-directory queue.

The question: at campaign scale (10k queued jobs), how fast can a
dispatcher turn queued records into claimed-and-completed ones?  Three
dispatch disciplines run against the same synthetic noop campaign:

* **single-directory (full-rescan)** — the pre-shard discipline: one
  flat ``jobs/`` directory, and every claim pass re-reads *every* record
  to find a runnable one.  Dispatch cost is O(queue depth) per job; at
  10k records each claim is a 10k-file scan.
* **single-directory (incremental)** — the same flat directory under
  this PR's claim path: one name listing per pass, records read lazily
  from a rotating cursor, known-done ids skipped.  The listing itself —
  sorting 10k names per claim — is now the dominant cost.
* **sharded (8 shards, batch claim)** — the orchestrator's discipline:
  consistent-hashed shard directories, each claim pass listing one
  shard (depth/8 names) and amortizing it over a whole
  ``claim_batch``.

Two workloads: a **deep-queue scan** (one dispatcher draining the head
of a 10k-job backlog) and a **contention** workload (8 worker processes
racing on the same queue, 1 shard vs 8 shards).  Results land in
``BENCH_scheduler.json`` at the repo root.  Acceptance bar: sharded
dispatch throughput ≥ 5× the single-directory queue (the full-rescan
discipline it replaces) on both workloads, at 10k queued jobs.

Scale knob: ``REPRO_BENCH_SCHED_JOBS`` (default 10000) shrinks the
campaign for smoke runs; the recorded JSON states the size used.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path

from conftest import emit

from repro.store.scheduler import JobQueue
from repro.store.shard import ShardedJobQueue

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

QUEUE_DEPTH = int(os.environ.get("REPRO_BENCH_SCHED_JOBS", "10000"))
SHARDS = 8
WORKERS = 8
BATCH = 32

#: Per-arm dispatch sample sizes, sized so each arm runs a few seconds.
RESCAN_SAMPLE = max(4, QUEUE_DEPTH // 500)
INCREMENTAL_SAMPLE = max(10, QUEUE_DEPTH // 40)
SHARDED_SAMPLE = max(20, QUEUE_DEPTH // 5)
CONTENTION_RESCAN_PER_WORKER = max(1, QUEUE_DEPTH // 4000)
CONTENTION_SHARDED_PER_WORKER = max(5, QUEUE_DEPTH // 200)


def _fill(queue, depth: int) -> None:
    for i in range(depth):
        queue.submit("noop", {"i": i})


def _legacy_claim(queue: JobQueue):
    """The pre-shard claim discipline: scan every record, take the first
    runnable one.  (The live claim path no longer works this way; the
    benchmark keeps the old cost model as its baseline.)"""
    now = time.time()
    for record in queue.jobs():  # json-reads the entire directory
        if record.status == "queued" and record.not_before <= now:
            taken = queue._claim_queued(record.id, now)
            if taken is not None:
                return taken
    return None


def _drain_rescan(queue: JobQueue, budget: int) -> int:
    done = 0
    while done < budget:
        record = _legacy_claim(queue)
        if record is None:
            break
        queue.complete(record.id, result_key="bench")
        done += 1
    return done


def _drain_single(queue, budget: int) -> int:
    done = 0
    while done < budget:
        record = queue.claim()
        if record is None:
            break
        queue.complete(record.id, result_key="bench")
        done += 1
    return done


def _drain_batched(queue, budget: int) -> int:
    done = 0
    while done < budget:
        batch = queue.claim_batch(min(BATCH, budget - done))
        if not batch:
            break
        for record in batch:
            queue.complete(record.id, result_key="bench")
        done += len(batch)
    return done


def _timed(fn, *args) -> "tuple[int, float]":
    started = time.perf_counter()
    done = fn(*args)
    return done, time.perf_counter() - started


# -- contention workload ------------------------------------------------ #


def _contend_flat(root, budget, out):
    queue = JobQueue(root, owner=f"w{os.getpid()}")
    out.put(_drain_rescan(queue, budget))


def _contend_sharded(root, budget, out):
    queue = ShardedJobQueue(root, owner=f"w{os.getpid()}", rng=os.getpid())
    out.put(_drain_batched(queue, budget))


def _contention_arm(target, root, per_worker: int) -> "tuple[int, float]":
    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(root, per_worker, out))
        for _ in range(WORKERS)
    ]
    started = time.perf_counter()
    for p in procs:
        p.start()
    total = sum(out.get() for _ in procs)
    for p in procs:
        p.join()
    return total, time.perf_counter() - started


def run_bench() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-sched-bench-") as tmp:
        flat_root = os.path.join(tmp, "flat", "queue")
        shard_root = os.path.join(tmp, "sharded", "queue")
        flat = JobQueue(flat_root)
        sharded = ShardedJobQueue(shard_root, shards=SHARDS, rng=0)
        _fill(flat, QUEUE_DEPTH)
        _fill(sharded, QUEUE_DEPTH)

        # Deep-queue scan: one dispatcher draining the backlog's head.
        rescan_done, rescan_s = _timed(_drain_rescan, flat, RESCAN_SAMPLE)
        incr_done, incr_s = _timed(_drain_single, flat, INCREMENTAL_SAMPLE)
        shard_done, shard_s = _timed(_drain_batched, sharded, SHARDED_SAMPLE)

        rescan_rate = rescan_done / rescan_s
        incr_rate = incr_done / incr_s
        shard_rate = shard_done / shard_s

        # Contention: 8 workers racing, 1 shard vs 8 shards.  Fresh
        # queues so both arms start from a full backlog.
        c_flat_root = os.path.join(tmp, "cflat", "queue")
        c_shard_root = os.path.join(tmp, "cshard", "queue")
        _fill(JobQueue(c_flat_root), QUEUE_DEPTH)
        _fill(ShardedJobQueue(c_shard_root, shards=SHARDS, rng=0), QUEUE_DEPTH)

        # The flat contention arm keeps the full-rescan discipline (the
        # single-directory queue being replaced) with a budget small
        # enough to stay tractable.  Workers race leases either way.
        cf_total, cf_s = _contention_arm(
            _contend_flat, c_flat_root, CONTENTION_RESCAN_PER_WORKER
        )
        cs_total, cs_s = _contention_arm(
            _contend_sharded, c_shard_root, CONTENTION_SHARDED_PER_WORKER
        )
        cf_rate = cf_total / cf_s
        cs_rate = cs_total / cs_s

        stats = sharded.stats()
        results = {
            "queue_depth": QUEUE_DEPTH,
            "shards": SHARDS,
            "batch": BATCH,
            "workers": WORKERS,
            "deep_scan": {
                "single_dir_rescan_jobs_per_s": round(rescan_rate, 1),
                "single_dir_incremental_jobs_per_s": round(incr_rate, 1),
                "sharded_jobs_per_s": round(shard_rate, 1),
                "sampled": {
                    "rescan": rescan_done,
                    "incremental": incr_done,
                    "sharded": shard_done,
                },
                "speedup_vs_rescan": round(shard_rate / rescan_rate, 1),
                "speedup_vs_incremental": round(shard_rate / incr_rate, 2),
            },
            "contention": {
                "single_dir_jobs_per_s": round(cf_rate, 1),
                "sharded_jobs_per_s": round(cs_rate, 1),
                "dispatched": {"single_dir": cf_total, "sharded": cs_total},
                "speedup": round(cs_rate / cf_rate, 1),
            },
            "sharded_claim_stats": {
                "claims": stats["claims"],
                "listings": stats["listings"],
                "records_read": stats["records_read"],
                "lease_conflicts": stats["lease_conflicts"],
            },
        }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    deep = results["deep_scan"]
    cont = results["contention"]
    return "\n".join(
        [
            f"Dispatch throughput at {results['queue_depth']} queued jobs "
            f"({results['shards']} shards, batch {results['batch']})",
            f"  deep scan   single-dir rescan      "
            f"{deep['single_dir_rescan_jobs_per_s']:>8.1f} jobs/s",
            f"              single-dir incremental "
            f"{deep['single_dir_incremental_jobs_per_s']:>8.1f} jobs/s",
            f"              sharded batch          "
            f"{deep['sharded_jobs_per_s']:>8.1f} jobs/s   "
            f"({deep['speedup_vs_rescan']}x vs rescan, "
            f"{deep['speedup_vs_incremental']}x vs incremental)",
            f"  contention  single-dir ({results['workers']} workers) "
            f"{cont['single_dir_jobs_per_s']:>8.1f} jobs/s",
            f"              sharded    ({results['workers']} workers) "
            f"{cont['sharded_jobs_per_s']:>8.1f} jobs/s   ({cont['speedup']}x)",
            f"  -> {RESULT_PATH.name}",
        ]
    )


def test_sharded_dispatch_meets_the_bar():
    results = run_bench()
    emit(_render(results))
    deep = results["deep_scan"]
    cont = results["contention"]
    assert deep["sampled"]["sharded"] == SHARDED_SAMPLE, "sharded arm starved"
    assert deep["speedup_vs_rescan"] >= 5.0, (
        f"deep-queue sharded dispatch only {deep['speedup_vs_rescan']}x the "
        "single-directory queue (acceptance bar: 5x)"
    )
    assert cont["speedup"] >= 5.0, (
        f"contention sharded dispatch only {cont['speedup']}x the "
        "single-directory queue (acceptance bar: 5x)"
    )
    # The incremental flat queue (this PR's satellite fix) must itself
    # beat the rescan discipline it replaced.
    assert deep["single_dir_incremental_jobs_per_s"] > deep[
        "single_dir_rescan_jobs_per_s"
    ]
    # Batch claims actually amortize listings: far fewer listings than
    # claims.
    stats = results["sharded_claim_stats"]
    assert stats["listings"] < stats["claims"] / 2


if __name__ == "__main__":
    print(_render(run_bench()))
