"""Experiment A16 — warm-result serving throughput of the HTTP service.

The serving layer's reason to exist is cheap reads: a campaign's
documents are content-addressed and immutable, so dashboards and
re-submissions should revalidate or fetch them at HTTP speed without
ever touching the engine.  This bench stands up one in-process
:class:`~repro.service.app.ExperimentService` (ephemeral port, no
orchestrator) over a store holding one warm table-sized document, then
hammers it over a single keep-alive connection:

* **revalidate (304)** — ``GET /v1/results/{key}`` with
  ``If-None-Match``: the content-addressed fast path; the service does
  one existence check and writes ~100 bytes.
* **fetch (200)** — the same URL unconditionally: digest-checked entry
  bytes straight off disk (:meth:`ResultStore.get_bytes` — zero
  re-encode), a few KiB per response.
* **healthz** — the routing floor: no store, no queue, pure dispatch.

Results land in ``BENCH_service.json`` at the repo root.  Acceptance
bar: the warm revalidate path sustains **≥ 1000 requests/second**, and
every fetched body is byte-identical to the on-disk entry.

Scale knob: ``REPRO_BENCH_SERVICE_REQUESTS`` (default 3000) shrinks the
sample for smoke runs; the recorded JSON states the size used.
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
import time
from pathlib import Path

from conftest import emit

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "3000"))
THROUGHPUT_BAR = 1000.0  # requests/second on the warm 304 path


def _start_service(root):
    """The service on its own loop + thread, bound to an ephemeral port."""
    import asyncio
    import threading

    from repro.service.app import ExperimentService

    loop = asyncio.new_event_loop()
    service = ExperimentService(root)
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start(port=0))
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True, name="bench-service")
    thread.start()
    assert started.wait(10), "service failed to start"

    def stop():
        asyncio.run_coroutine_threadsafe(service.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()

    return service, stop


def _warm_document(root) -> str:
    """One realistic document in the store; returns its result key."""
    from repro.store.cache import ResultStore, result_key
    from repro.store.jobs import noop_document

    store = ResultStore(root)
    # Table-sized payload: a noop document padded with 60 rows of the
    # shape a grid scenario emits, so the 200 path moves real bytes.
    payload = noop_document({"bench": 1})
    payload["rows"] = [
        {
            "probe": "or-flood",
            "graph": "complete",
            "n": 4 + (i % 13),
            "seed": i,
            "converged": True,
            "stabilization_round": i % 7,
            "rounds_run": 8,
            "consistent": True,
        }
        for i in range(60)
    ]
    key = result_key("bench-doc", {"bench": 1})
    store.put(key, payload, kind="bench-doc", params={"bench": 1})
    return key


def _hammer(host, port, path, headers, count, expect_status):
    """``count`` keep-alive requests; returns (elapsed_s, last_body)."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    body = b""
    try:
        # One warm-up round trip so connection setup stays out of the clock.
        conn.request("GET", path, headers=headers)
        response = conn.getresponse()
        assert response.status == expect_status, response.status
        response.read()
        start = time.perf_counter()
        for _ in range(count):
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            assert response.status == expect_status, response.status
            body = response.read()
        elapsed = time.perf_counter() - start
    finally:
        conn.close()
    return elapsed, body


def run_bench() -> dict:
    with tempfile.TemporaryDirectory() as root:
        key = _warm_document(root)
        service, stop = _start_service(root)
        try:
            host, port = service.host, service.port
            path = f"/v1/results/{key}"
            etag = {"If-None-Match": f'"{key}"'}

            elapsed_304, _ = _hammer(host, port, path, etag, REQUESTS, 304)
            elapsed_200, body = _hammer(
                host, port, path, {}, max(200, REQUESTS // 3), 200
            )
            elapsed_health, _ = _hammer(
                host, port, "/healthz", {}, max(200, REQUESTS // 3), 200
            )

            with open(service.store.entry_path(key), "rb") as fh:
                byte_identical = body == fh.read()
            fetches = max(200, REQUESTS // 3)
            results = {
                "requests": REQUESTS,
                "entry_bytes": len(body),
                "revalidate_304_req_per_s": round(REQUESTS / elapsed_304, 1),
                "fetch_200_req_per_s": round(fetches / elapsed_200, 1),
                "healthz_req_per_s": round(fetches / elapsed_health, 1),
                "byte_identical": byte_identical,
                "throughput_bar_req_per_s": THROUGHPUT_BAR,
            }
        finally:
            stop()
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    return "\n".join(
        [
            f"Warm-result serving over one keep-alive connection "
            f"({results['requests']} requests, {results['entry_bytes']}-byte entry)",
            f"  revalidate (ETag/304)  {results['revalidate_304_req_per_s']:>8.1f} req/s"
            f"   (bar: ≥ {results['throughput_bar_req_per_s']:.0f})",
            f"  fetch      (200)       {results['fetch_200_req_per_s']:>8.1f} req/s",
            f"  healthz                {results['healthz_req_per_s']:>8.1f} req/s",
            f"  served bytes byte-identical to the store entry: "
            f"{results['byte_identical']}",
            f"  -> {RESULT_PATH.name}",
        ]
    )


def test_warm_serving_meets_the_bar():
    results = run_bench()
    emit(_render(results))
    assert results["byte_identical"], "served bytes diverged from the store entry"
    assert results["revalidate_304_req_per_s"] >= THROUGHPUT_BAR, (
        f"warm revalidation sustained only "
        f"{results['revalidate_304_req_per_s']} req/s "
        f"(bar: {THROUGHPUT_BAR})"
    )
    # The full-bytes path moves ~KiB payloads; it should still clear a
    # large fraction of the revalidate rate (same socket discipline,
    # one extra disk read + write).
    assert results["fetch_200_req_per_s"] >= THROUGHPUT_BAR / 4


if __name__ == "__main__":
    print(_render(run_bench()))
