"""Experiment A11 — warm-store table regeneration vs cold computation.

Runs ``reproduce_table1`` three ways against a fresh result store:

* **cold** — empty store; every one of the 16 cells is computed and
  persisted (content-addressed, atomic writes);
* **warm** — same store; every cell is served from disk without touching
  the engine;
* **healed** — one entry is corrupted on disk first; the store must
  detect the bad digest, quarantine the entry, recompute exactly that
  cell, and re-persist it — transparently returning correct results.

Results are written to ``BENCH_store.json`` at the repo root: cold and
warm wall time, the speedup (acceptance bar: warm ≥ 5× faster than
cold), store hit/miss/heal counters, and the verdicts.  Run directly
(``python benchmarks/bench_store.py``) or via pytest.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from conftest import emit

from repro.analysis.tables import reproduce_table1
from repro.store.cache import ResultStore

REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _fingerprint(cells):
    return [
        (
            cell.model.value,
            cell.knowledge.value,
            cell.label(),
            cell.consistent,
            tuple(cell.details),
        )
        for cell in cells
    ]


def _timed_table(store):
    started = time.perf_counter()
    cells = list(reproduce_table1(store=store))
    return cells, time.perf_counter() - started


def run_bench() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        store = ResultStore(root)

        cold_cells, cold_seconds = _timed_table(store)
        cold_stats = store.stats()

        warm_cells, warm_seconds = min(
            (_timed_table(store) for _ in range(REPEATS)), key=lambda r: r[1]
        )
        warm_stats = store.stats()

        # Corrupt one entry on disk; the next pass must heal it.
        key, _entry = next(store.entries())
        with open(store.entry_path(key), "w") as fh:
            fh.write("bitrot")
        healed_cells, _healed_seconds = _timed_table(store)

        results = {
            "cells": len(cold_cells),
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(cold_seconds / warm_seconds, 1),
            "cold_puts": cold_stats["puts"],
            "warm_hits": warm_stats["hits"] - cold_stats["hits"],
            "healed_entries": store.healed,
            "warm_identical": _fingerprint(cold_cells) == _fingerprint(warm_cells),
            "healed_identical": _fingerprint(cold_cells) == _fingerprint(healed_cells),
            "all_consistent": all(cell.consistent for cell in cold_cells),
            "store_entries": len(store),
        }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    return "\n".join(
        [
            f"Table 1 through the result store ({results['cells']} cells)",
            f"  cold (compute + persist) {results['cold_seconds']:>8.3f} s   "
            f"({results['cold_puts']} puts)",
            f"  warm (served from disk)  {results['warm_seconds']:>8.4f} s   "
            f"({results['speedup']}x, identical={results['warm_identical']})",
            f"  corrupt entry healed: {results['healed_entries']} "
            f"(identical={results['healed_identical']})",
            f"  -> {RESULT_PATH.name}",
        ]
    )


def test_warm_store_is_fast_and_identical():
    results = run_bench()
    emit(_render(results))
    assert results["cells"] == 16, f"expected 16 cells, got {results['cells']}"
    assert results["cold_puts"] == 16, "cold run must persist every cell"
    assert results["warm_hits"] >= 16, "warm run must serve every cell from disk"
    assert results["warm_identical"], "warm cells diverged from cold computation"
    assert results["healed_entries"] == 1, "corrupt entry was not quarantined"
    assert results["healed_identical"], "healed run diverged from cold computation"
    assert results["all_consistent"], "some cell disagrees with the paper"
    assert results["speedup"] >= 5.0, (
        f"warm store only {results['speedup']}x faster than cold "
        "(acceptance bar: 5x)"
    )


if __name__ == "__main__":
    print(_render(run_bench()))
