"""Experiment T1 — regenerate Table 1 (static networks).

For each of the 16 cells (4 communication models × 4 help levels) the
harness runs the positive probes (max / average / sum through the actual
distributed algorithms) and the impossibility certificates (shared-base
covers for broadcast, ring collapses for the sum), then prints the
reproduced table side by side with the paper's and asserts every cell
agrees.
"""

from conftest import emit

from repro.analysis.tables import format_results, reproduce_table1


def _check(results):
    bad = [(r.model.value, r.knowledge.value, r.details) for r in results if not r.consistent]
    assert not bad, f"cells disagreeing with the paper: {bad}"
    return results


def test_table1_reproduction(benchmark):
    results = benchmark.pedantic(
        lambda: _check(reproduce_table1()), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(format_results(results, "Table 1 — static strongly connected networks (measured vs paper)"))
    benchmark.extra_info["cells"] = len(results)
    benchmark.extra_info["consistent"] = sum(r.consistent for r in results)
