"""Experiment T2 — regenerate Table 2 (dynamic networks).

Same protocol as T1 over dynamic graphs with finite dynamic diameter:
gossip for the broadcast column, the Push-Sum family (Algorithm 1 and its
exact/multiset/leader variants) for outdegree awareness, and history-tree
counting for symmetric communications.  The two cells the paper leaves
open ("?") are reported as demonstrated lower bounds.
"""

from conftest import emit

from repro.analysis.tables import format_results, reproduce_table2


def _check(results):
    bad = [(r.model.value, r.knowledge.value, r.details) for r in results if not r.consistent]
    assert not bad, f"cells disagreeing with the paper: {bad}"
    return results


def test_table2_reproduction(benchmark):
    results = benchmark.pedantic(
        lambda: _check(reproduce_table2()), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(format_results(results, "Table 2 — dynamic networks with finite dynamic diameter (measured vs paper)"))
    benchmark.extra_info["cells"] = len(results)
    benchmark.extra_info["open_cells_demonstrated"] = sum(
        r.expected.open_question and r.measured is not None for r in results
    )
