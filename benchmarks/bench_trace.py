"""Experiment E3 — the tracing layer's zero-overhead-when-off contract.

Measures rounds/sec of the layered engine on the static 64-ring workload
of ``bench_engine.py`` in three configurations:

* **off** — no observers attached (the stepper builds no
  :class:`RoundRecord`, the plan cache pays one ``trace_hook is None``
  test per round);
* **on** — a :class:`~repro.core.engine.trace.Tracer` attached and
  hooked into the plan cache (full event stream + metrics);
* **reference** — the pre-engine interpreter, untouched by the trace
  refactor, re-measured as a *machine-drift calibration*: comparing this
  run's reference throughput against the one stored in
  ``BENCH_engine.json`` normalizes out how much faster or slower the
  current machine is than the one that wrote the baseline.

Two acceptance bars:

* the calibrated 2% bound — tracing-off throughput must stay within 2%
  of the stored post-refactor baseline, rescaled by the observed machine
  drift;
* the ring-tracer bound — tracing **on** may cost at most 2x the
  untraced rate.  The dict-per-round tracer this replaced cost 18.9x
  (kept under ``history`` in the results for the record); rounds now
  land in a preallocated structured-array ring with scalar fast paths
  for byte accounting and residuals, decoded only at export.

Results go to ``BENCH_trace.json``.

Run directly (``python benchmarks/bench_trace.py``) or via pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.core.agent import BroadcastAlgorithm
from repro.core.engine import ReferenceExecution
from repro.core.engine.trace import trace_execution
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring

N = 64
ROUNDS = 300
REPEATS = 7
ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "BENCH_engine.json"
RESULT_PATH = ROOT / "BENCH_trace.json"

#: Allowed tracing-off slowdown vs the calibrated stored baseline.
MAX_REGRESSION = 0.02

#: Allowed tracing-on cost relative to tracing-off (the ring-tracer bar).
MAX_TRACING_OVERHEAD = 2.0

#: What the pre-ring, dict-per-round tracer measured on this workload —
#: kept in the emitted results so the improvement stays on the record.
PRE_RING_OVERHEAD_FACTOR = 18.93


class FloodCount(BroadcastAlgorithm):
    """Same cheap workload as bench_engine: executor overhead dominates."""

    def initial_state(self, input_value):
        return int(input_value)

    def message(self, state):
        return state

    def transition(self, state, received):
        return max(state, max(received))

    def output(self, state):
        return state


def _one_run(make_execution, prepare=None) -> float:
    execution = make_execution()
    if prepare is not None:
        prepare(execution)
    started = time.perf_counter()
    execution.run(ROUNDS)
    elapsed = time.perf_counter() - started
    return ROUNDS / elapsed


def run_bench() -> dict:
    inputs = list(range(N))
    ring = bidirectional_ring(N)

    make_reference = lambda: ReferenceExecution(  # noqa: E731
        FloodCount(), ring, inputs=inputs, legacy_scramble=True
    )
    make_engine = lambda: Execution(FloodCount(), ring, inputs=inputs)  # noqa: E731

    # Interleaved best-of: each repeat measures all three configurations
    # back to back, so they share the machine's momentary thermal/cache
    # state and the best-of maxima are comparable.
    reference_rps = off_rps = on_rps = 0.0
    for _ in range(REPEATS):
        reference_rps = max(reference_rps, _one_run(make_reference))
        off_rps = max(off_rps, _one_run(make_engine))
        on_rps = max(on_rps, _one_run(make_engine, prepare=trace_execution))

    results = {
        "n": N,
        "rounds": ROUNDS,
        "reference_rounds_per_sec": round(reference_rps, 1),
        "tracing_off_rounds_per_sec": round(off_rps, 1),
        "tracing_on_rounds_per_sec": round(on_rps, 1),
        "tracing_overhead_factor": round(off_rps / on_rps, 2),
        "history": {"pre_ring_tracing_overhead_factor": PRE_RING_OVERHEAD_FACTOR},
    }

    if BASELINE_PATH.exists():
        stored = json.loads(BASELINE_PATH.read_text())["workloads"]["static_ring_64"]
        drift = reference_rps / stored["old_rounds_per_sec"]
        calibrated_floor = (1.0 - MAX_REGRESSION) * stored["new_rounds_per_sec"] * drift
        results["calibration"] = {
            "stored_reference_rps": stored["old_rounds_per_sec"],
            "stored_engine_rps": stored["new_rounds_per_sec"],
            "machine_drift": round(drift, 3),
            "calibrated_floor_rps": round(calibrated_floor, 1),
            "off_over_floor": round(off_rps / calibrated_floor, 3),
        }

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _render(results: dict) -> str:
    lines = [
        f"Tracing overhead (n={results['n']}, {results['rounds']} rounds)",
        f"  reference interpreter {results['reference_rounds_per_sec']:>9.1f} r/s",
        f"  engine, tracing off   {results['tracing_off_rounds_per_sec']:>9.1f} r/s",
        f"  engine, tracing on    {results['tracing_on_rounds_per_sec']:>9.1f} r/s"
        f"   ({results['tracing_overhead_factor']:.2f}x off/on)",
    ]
    cal = results.get("calibration")
    if cal:
        lines.append(
            f"  calibrated floor      {cal['calibrated_floor_rps']:>9.1f} r/s"
            f"   (drift {cal['machine_drift']:.3f}, "
            f"off/floor {cal['off_over_floor']:.3f})"
        )
    lines.append(f"  -> {RESULT_PATH.name}")
    return "\n".join(lines)


def test_tracing_off_is_free():
    results = run_bench()
    emit(_render(results))
    cal = results.get("calibration")
    assert cal is not None, "BENCH_engine.json baseline missing — run bench_engine first"
    assert results["tracing_off_rounds_per_sec"] >= cal["calibrated_floor_rps"], (
        f"tracing-off throughput {results['tracing_off_rounds_per_sec']} r/s fell below "
        f"the calibrated 2%-regression floor {cal['calibrated_floor_rps']} r/s "
        f"(machine drift {cal['machine_drift']})"
    )
    # The ring-tracer bar: the full observation stack (record
    # materialization, byte accounting, digests, residuals, ring write)
    # may at most halve throughput.  The dict-per-round tracer cost 18.9x.
    assert results["tracing_overhead_factor"] <= MAX_TRACING_OVERHEAD, (
        f"tracing-on overhead {results['tracing_overhead_factor']}x exceeds "
        f"the {MAX_TRACING_OVERHEAD}x ring-tracer bar"
    )


if __name__ == "__main__":
    print(_render(run_bench()))
