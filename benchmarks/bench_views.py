"""Experiment A2 — ablation: hash-consed views vs unfolded trees.

The design decision behind the whole static pipeline: a depth-``t`` view
has exponentially many tree nodes but O(n·t) distinct subtrees.  The
sweep reports both sizes and benchmarks building all views at depth 20.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.graphs.builders import random_symmetric_connected
from repro.graphs.views import ViewBuilder, all_views, dag_size, tree_size


def test_view_growth(benchmark):
    g = random_symmetric_connected(8, seed=3).with_values([i % 2 for i in range(8)])
    rows = []
    for depth in (2, 5, 10, 20):
        builder = ViewBuilder()
        views = all_views(g, depth, builder=builder)
        dag = max(dag_size(v) for v in views)
        tree = max(tree_size(v) for v in views)
        rows.append([depth, dag, tree, f"{tree / dag:.1e}"])
    emit(render_table(
        ["depth", "DAG nodes (interned)", "tree nodes (unfolded)", "blow-up"],
        rows,
        title="A2 — view sizes with and without hash-consing",
    ))
    # Shape: interned size linear-ish, unfolded exponential.
    assert rows[-1][1] <= 8 * 21
    assert rows[-1][2] > 10**6

    benchmark(lambda: all_views(g, 20, builder=ViewBuilder()))
