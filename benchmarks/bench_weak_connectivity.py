"""Experiment A6 — §6: computing without a finite dynamic diameter.

The concluding remarks ask which results survive when the network is
never permanently split but has no finite dynamic diameter.  On the
growing-gap family (connected pulses at perfect squares, silence in
between) the sweep measures rounds-to-ε for Metropolis (covered by
Moreau's theorem) and Push-Sum (correct but with Theorem 5.2's rate bound
void), against the fully-connected-every-round baseline.
"""

from conftest import emit

from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.reporting import render_table
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_symmetric
from repro.dynamics.weak_connectivity import certify_unbounded_diameter, growing_gap_dynamic

EPS = 1e-6
N = 5
INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0]
TARGET = sum(INPUTS) / N


def rounds_to_eps(algorithm_factory, network, max_rounds=50000):
    ex = Execution(algorithm_factory(), network, inputs=INPUTS)
    for t in range(1, max_rounds + 1):
        ex.step()
        if max(abs(o - TARGET) for o in ex.outputs()) <= EPS:
            return t
    raise AssertionError("no convergence")


def test_weak_connectivity_sweep(benchmark):
    gaps = growing_gap_dynamic(N, seed=4)
    windows = certify_unbounded_diameter(gaps, starts=[3, 9, 33, 65, 150], cap=512)
    assert windows is not None and windows[-1] > 2 * windows[0], "gaps must grow"

    rows = []
    for name, factory in (("Metropolis", MetropolisAlgorithm), ("Push-Sum", PushSumAlgorithm)):
        t_base = rounds_to_eps(factory, random_dynamic_symmetric(N, seed=4))
        t_gaps = rounds_to_eps(factory, growing_gap_dynamic(N, seed=4))
        rows.append([name, t_base, t_gaps, f"{t_gaps / t_base:.1f}x"])
        # Shape: still converges (§6's positive expectation), but pays for
        # the silence — never faster than the connected baseline.
        assert t_gaps >= t_base
    emit(render_table(
        ["algorithm", "connected-every-round", "growing gaps (D = ∞)", "slowdown"],
        rows,
        title="A6 — §6: averaging without a finite dynamic diameter",
    ))
    emit(f"windows-to-completeness from rounds 3/9/33/65/150: {windows} (unbounded growth)")
    benchmark.pedantic(
        lambda: rounds_to_eps(MetropolisAlgorithm, growing_gap_dynamic(N, seed=4)),
        rounds=3,
        iterations=1,
    )
