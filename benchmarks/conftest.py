"""Benchmark-harness helpers.

Every benchmark prints the paper-shaped table/series it regenerates (so
``pytest benchmarks/ --benchmark-only -s`` shows the reproduction next to
the timings) and asserts the qualitative *shape* the paper reports — who
wins, what grows with what — rather than absolute numbers.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a reproduction artifact so it survives output capture."""
    sys.stderr.write("\n" + text + "\n")
    sys.stderr.flush()
