"""Kill -9 a Table 2 regeneration mid-run and resume it.

The durable-store walkthrough (EXPERIMENTS.md, experiment A11) as a
self-contained script:

1. regenerate Table 2 through the job scheduler in a *clean* store —
   the uninterrupted reference document;
2. submit the same job to a second store, drive it with a worker
   subprocess, and ``SIGKILL`` the worker after it has persisted at
   least one cell but before it can finish;
3. resume with a fresh worker: it breaks the dead worker's stale lease,
   serves the already-computed cells from the store, computes only the
   remainder, and emits the final document;
4. assert the resumed document is **byte-for-byte identical** to the
   uninterrupted one.

Exits non-zero (via the asserts) if any step misbehaves, so CI can run
it as-is.  Prints the store statistics that make the resume visible —
the second worker's cell *hits* are work the crash did not destroy.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.store.jobs import open_queue, open_store, run_worker
from repro.store.scheduler import DONE, JobQueue

PARAMS = {"n": 4, "seed": 0}


def reference_document(root: str) -> bytes:
    queue, store = open_queue(root), open_store(root)
    record = queue.submit("table2", PARAMS)
    run_worker(root, queue=queue, store=store)
    key = queue.get(record.id).result_key
    with open(store.entry_path(key), "rb") as fh:
        return fh.read()


def interrupted_document(root: str) -> tuple[bytes, dict]:
    queue = JobQueue(os.path.join(root, "queue"), lease_ttl=0.5)
    store = open_store(root)
    record = queue.submit("table2", PARAMS)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")] if p
    )
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "store", "--root", root, "run"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if queue.get(record.id).progress.get("units_done", 0) >= 1:
                break
            if worker.poll() is not None:
                break
            time.sleep(0.02)
        else:
            raise RuntimeError("worker never reported progress")
    finally:
        if worker.poll() is None:
            os.kill(worker.pid, signal.SIGKILL)
            print(f"  killed worker pid {worker.pid} (SIGKILL) "
                  f"after {queue.get(record.id).progress} cells")
        worker.wait()

    if queue.get(record.id).status != DONE:
        time.sleep(0.6)  # let the dead worker's lease age past its TTL
        assert run_worker(root, queue=queue, store=store) == 1
    resumed = queue.get(record.id)
    assert resumed.status == DONE, resumed.status
    with open(store.entry_path(resumed.result_key), "rb") as fh:
        return fh.read(), store.stats()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-crash-demo-") as top:
        print("reference run (uninterrupted)...")
        clean = reference_document(os.path.join(top, "clean"))
        print("interrupted run (worker subprocess, kill -9 mid-table)...")
        resumed, stats = interrupted_document(os.path.join(top, "interrupted"))

        assert resumed == clean, "resumed document differs from uninterrupted run"
        print(f"  resumed document: {len(resumed)} bytes, byte-identical: True")
        print(f"  store stats after resume: {json.dumps(stats)}")
        print("OK — crash, resume, and byte-identical Table 2 document.")


if __name__ == "__main__":
    main()
