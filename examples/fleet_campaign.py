"""Run a sharded job campaign through a worker fleet and kill half of it.

The scheduler-at-scale walkthrough (EXPERIMENTS.md, experiment A15) as a
self-contained script:

1. submit a synthetic campaign (a sweep × seeds grid of trivial ``noop``
   jobs) to a **sharded** queue — consistent-hashed across shard
   directories, layout persisted in a manifest;
2. run the same campaign sequentially in a reference root — the
   uninterrupted baseline documents;
3. drive the sharded root with a fleet of orchestrator subprocesses
   (each an asyncio dispatcher feeding local process pools), and
   ``SIGKILL`` half the fleet mid-campaign — process groups, so the
   pools die with their orchestrators, leases still held;
4. the survivors detect the stale leases, take the orphaned jobs over,
   and finish the campaign;
5. assert every document in the fleet root is **byte-for-byte
   identical** to the reference root's.

Scale knobs: ``--jobs`` (campaign size), ``--workers`` / ``--kill``
(fleet size and casualties), ``--shards``, ``--pools``.  CI runs this at
1k jobs; the acceptance campaign is 10k.  ``--stats-out FILE`` dumps the
final shard statistics as JSON for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.store.jobs import open_queue, open_store, run_worker  # noqa: E402

#: Fleet timing: leases go stale fast so takeover is quick, heartbeats
#: faster still so live workers never look dead.
FLEET_ENV = {"REPRO_LEASE_STALE_SECONDS": "2.0", "REPRO_HEARTBEAT_SECONDS": "0.5"}


def campaign_params(jobs: int):
    """The sweep × seeds grid: jobs/4 sweep points × 4 seeds."""
    for i in range(jobs):
        yield {"sweep": i // 4, "seed": i % 4}


def submit_campaign(root: str, jobs: int, shards: int) -> None:
    queue = open_queue(root, shards=shards)
    for params in campaign_params(jobs):
        queue.submit("noop", params, max_attempts=6)


def _orchestrator_preexec():
    # Each orchestrator leads a process group, so one SIGKILL takes its
    # pools down too — the realistic host-loss shape.
    os.setsid()
    # Tie the orchestrator's life to this script's: `--wait` pollers
    # never exit on their own, so if the campaign process itself is
    # killed (a test-harness timeout, say) the kernel reaps the fleet
    # instead of leaving orphans polling a dead root forever.
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG
    except (OSError, AttributeError):
        pass  # non-Linux: fall back to the finally-block cleanup


def spawn_orchestrator(root: str, pools: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in [os.path.join(os.path.dirname(__file__), "..", "src"), env.get("PYTHONPATH")]
        if p
    )
    env.update(FLEET_ENV)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "store", "--root", root,
            "run", "--wait", "--pools", str(pools),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        preexec_fn=_orchestrator_preexec,
    )


def kill_group(worker: subprocess.Popen, sig: int) -> None:
    try:
        os.killpg(worker.pid, sig)
    except ProcessLookupError:
        pass
    worker.wait()


def run_fleet(root: str, jobs: int, workers: int, kill: int, pools: int) -> dict:
    queue = open_queue(root)
    fleet = [spawn_orchestrator(root, pools) for _ in range(workers)]
    print(f"  fleet up: {workers} orchestrator(s), {pools} pool(s) each")
    killed = False
    try:
        deadline = time.time() + 600
        while time.time() < deadline:
            counts = queue.counts()
            if not killed and counts["done"] >= max(1, jobs // 10):
                for victim in fleet[:kill]:
                    kill_group(victim, signal.SIGKILL)
                killed = True
                print(
                    f"  SIGKILLed {kill}/{workers} orchestrator group(s) at "
                    f"{counts['done']}/{jobs} jobs done"
                )
            if counts["done"] >= jobs:
                break
            time.sleep(0.2)
        counts = queue.counts()
        if counts["done"] < jobs:
            raise RuntimeError(f"campaign stalled: {counts}")
    finally:
        for worker in fleet:
            if worker.poll() is None:
                kill_group(worker, signal.SIGKILL)
    stats = {"counts": queue.counts(), "shards": queue.shard_stats()}
    takeovers = None
    if hasattr(queue, "shard_stats"):
        takeovers = sum(
            row.get("takeovers", 0) for row in queue.stats().get("per_shard", [])
        )
    print(f"  campaign complete: {stats['counts']}")
    if takeovers:
        print(f"  (this poller observed {takeovers} lease takeover(s))")
    return stats


def compare_documents(fleet_root: str, reference_root: str, jobs: int) -> None:
    fleet_queue, fleet_store = open_queue(fleet_root), open_store(fleet_root)
    ref_queue, ref_store = open_queue(reference_root), open_store(reference_root)
    ref_keys = {r.id: r.result_key for r in ref_queue.jobs()}
    records = fleet_queue.jobs()
    assert len(records) == jobs, f"expected {jobs} records, found {len(records)}"
    for record in records:
        assert record.result_key == ref_keys[record.id], record.id
        with open(ref_store.entry_path(record.result_key), "rb") as fh:
            ref_bytes = fh.read()
        with open(fleet_store.entry_path(record.result_key), "rb") as fh:
            fleet_bytes = fh.read()
        assert fleet_bytes == ref_bytes, f"document {record.result_key} diverged"
    print(f"  {len(records)} documents byte-identical to the reference run")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=200, help="campaign size")
    parser.add_argument("--workers", type=int, default=3, help="fleet size")
    parser.add_argument(
        "--kill", type=int, default=None, help="orchestrators to SIGKILL (default: half)"
    )
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--pools", type=int, default=1, help="process pools per orchestrator")
    parser.add_argument(
        "--stats-out", default=None, metavar="FILE", help="write shard stats JSON here"
    )
    args = parser.parse_args(argv)
    kill = args.kill if args.kill is not None else max(1, args.workers // 2)
    if kill >= args.workers:
        parser.error("--kill must leave at least one survivor")

    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as top:
        fleet_root = os.path.join(top, "fleet")
        reference_root = os.path.join(top, "reference")

        print(f"submitting {args.jobs}-job campaign ({args.shards} shards)...")
        submit_campaign(fleet_root, args.jobs, args.shards)
        submit_campaign(reference_root, args.jobs, args.shards)

        print("reference run (sequential, uninterrupted)...")
        run_worker(reference_root, queue=open_queue(reference_root))

        print(f"fleet run (kill {kill}/{args.workers} mid-campaign)...")
        stats = run_fleet(fleet_root, args.jobs, args.workers, kill, args.pools)

        compare_documents(fleet_root, reference_root, args.jobs)

        if args.stats_out:
            with open(args.stats_out, "w") as fh:
                json.dump(stats, fh, indent=2, sort_keys=True)
            print(f"  shard stats -> {args.stats_out}")

    print("OK — killed half the fleet, survivors finished, documents byte-identical.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
