"""Hegselmann–Krause opinion dynamics on this library's substrate.

The paper's introduction names the Hegselmann–Krause bounded-confidence
model as a natural system with *symmetric communications*: at every
round, agents listen exactly to the agents whose opinion lies within
their confidence radius ε — a symmetric, state-dependent communication
graph — and move to the average of what they hear.

This script drives the model through the library's graphs: each round's
communication graph is materialized as a symmetric ``DiGraph`` (with the
standing self-loops), stepped once, and analyzed with the usual tools.
The classic phenomenology appears: opinions freeze into clusters more
than ε apart, and the number of clusters falls as ε grows.  Each frozen
cluster is one value class — and on the frozen graph, the library's
history-tree algorithm recovers the exact cluster frequencies, tying the
natural system back to Table 2's symmetric column.

Run:  python examples/hegselmann_krause.py
"""

from fractions import Fraction

from repro import DiGraph, Execution, HistoryTreeAlgorithm, is_symmetric, run_until_stable


def confidence_graph(opinions, epsilon):
    """The round's symmetric communication graph: i hears j iff |x_i - x_j| ≤ ε."""
    n = len(opinions)
    specs = []
    for i in range(n):
        for j in range(n):
            if i != j and abs(opinions[i] - opinions[j]) <= epsilon:
                specs.append((i, j))
    return DiGraph(n, specs, ensure_self_loops=True)


def hk_round(opinions, epsilon):
    """One synchronous HK update via the communication graph."""
    g = confidence_graph(opinions, epsilon)
    assert is_symmetric(g)  # the model the paper points at
    new = []
    for i in range(len(opinions)):
        heard = [opinions[e.source] for e in g.in_edges(i)]
        new.append(sum(heard) / len(heard))
    return new


def run_hk(opinions, epsilon, max_rounds=100):
    for t in range(1, max_rounds + 1):
        updated = hk_round(opinions, epsilon)
        if max(abs(a - b) for a, b in zip(updated, opinions)) < 1e-12:
            return updated, t
        opinions = updated
    return opinions, max_rounds


def clusters(opinions, epsilon):
    groups = []
    for x in sorted(opinions):
        if groups and x - groups[-1][-1] <= epsilon:
            groups[-1].append(x)
        else:
            groups.append([x])
    return groups


def main() -> None:
    start = [i / 9 for i in range(10)]  # opinions spread over [0, 1]
    print(f"initial opinions: {[round(x, 2) for x in start]}\n")

    for epsilon in (0.05, 0.15, 0.30):
        final, rounds = run_hk(start, epsilon)
        cs = clusters(final, epsilon)
        print(f"ε = {epsilon:.2f}: froze after {rounds:3d} rounds into "
              f"{len(cs)} cluster(s) at {[round(c[0], 3) for c in cs]}")

    # Zoom in on ε = 0.15: poll the frozen profile with the library's
    # exact anonymous census (symmetric model, no knowledge of n).  The
    # frozen confidence graph is *disconnected* — clusters further than ε
    # apart never hear each other again — so the poll runs over a
    # connected symmetric backbone (a ring of the same agents).
    final, _ = run_hk(start, 0.15)
    labels = [round(x, 6) for x in final]
    from repro import bidirectional_ring

    backbone = bidirectional_ring(len(labels))
    census = HistoryTreeAlgorithm()
    report = run_until_stable(Execution(census, backbone, inputs=labels), 60, patience=5)
    print("\nanonymous census of the frozen clusters (exact fractions):")
    for opinion, share in report.value.items():
        print(f"  opinion {opinion}: {share} of the population")
    assert sum(report.value.values(), Fraction(0)) == 1

    print("\nBounded confidence + symmetric communications: the paper's "
          "motivating natural system, analyzed with its own machinery.")


if __name__ == "__main__":
    main()
