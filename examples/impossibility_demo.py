"""Seeing the Lifting lemma fool an algorithm, live.

The paper's impossibility proofs (§4.1) are constructive enough to run:
collapse the ring ``R_8`` onto ``R_4`` by a fibration, run the *same*
anonymous algorithm on both, and watch every round of the big execution
be a fibrewise copy of the small one.  The consequence is physical: the
agents of ``R_8`` can never learn they are 8 rather than 4, so no
algorithm computes the sum — it differs across the two rings while the
outputs are forced equal.

The second act plays the same trick against *simple broadcast*: two
networks of different value frequencies share a minimum base, so even
the average is out of reach without outdegree awareness — the exact
separation in Tables 1 and 2.

Run:  python examples/impossibility_demo.py
"""

from repro import (
    Execution,
    GossipAlgorithm,
    PushSumAlgorithm,
    demonstrate_collapse,
    fibres,
    minimum_base,
    ring_collapse,
    verify_lifting_on_outputs,
)
from repro.analysis.impossibility import two_fibre_cover
from repro.functions.frequency import frequencies_of


def act_one() -> None:
    print("=== Act 1: the ring collapse R_8 → R_4 ===")
    phi = ring_collapse(8, 4, base_values=[1, 5, 1, 5])
    print(f"fibration fibres: {fibres(phi)}")
    ok = verify_lifting_on_outputs(phi, PushSumAlgorithm, [1.0, 5.0, 1.0, 5.0], rounds=20)
    print(f"outputs of R_8 track R_4 fibrewise for 20 rounds: {ok}")

    outcome = demonstrate_collapse(
        PushSumAlgorithm, n=8, m=16, base_values=[1.0, 5.0, 1.0, 5.0], rounds=300
    )
    print(f"Push-Sum on R_8 outputs  {outcome.outputs_big[0]:.6f}")
    print(f"Push-Sum on R_16 outputs {outcome.outputs_other[0]:.6f}  (forced equal)")
    print(f"but sum(R_8 inputs) = {6 * 4} and sum(R_16 inputs) = {6 * 8}")
    print("=> no anonymous algorithm computes the sum.\n")


def act_two() -> None:
    print("=== Act 2: broadcast cannot even average ===")
    g1 = two_fibre_cover(1, 2)  # frequencies (1/3, 2/3)
    g2 = two_fibre_cover(1, 3)  # frequencies (1/4, 3/4)
    print(f"cover A: n={g1.n}, frequencies {dict(frequencies_of(g1.values).items())}")
    print(f"cover B: n={g2.n}, frequencies {dict(frequencies_of(g2.values).items())}")
    b1, b2 = minimum_base(g1), minimum_base(g2)
    print(f"shared minimum base sizes: {b1.base.n} and {b2.base.n} (isomorphic)")
    for g, mb in ((g1, b1), (g2, b2)):
        ok = verify_lifting_on_outputs(
            mb.fibration, GossipAlgorithm, list(mb.base.values), rounds=12
        )
        print(f"  broadcast execution on n={g.n} tracks the base: {ok}")
    print("=> under simple broadcast the two networks are indistinguishable,")
    print("   yet their averages differ: only set-based functions survive.")


if __name__ == "__main__":
    act_one()
    act_two()
