"""Anonymous census with one leader: counting the uncountable.

On a plain anonymous ring, nothing distinguishes the agents, and the
network *cannot even count itself* — the sum and the size are not
frequency-based, so Theorem 4.1 rules them out.  Appoint a single leader
(a base station, say) and Corollary 4.4 flips the answer: the fibre
cardinalities become absolute (eq. (5)), the full input multiset is
recovered, and any symmetric function — the sum, the size, the median —
is computable.  This script shows both sides on the same ring.

Run:  python examples/leader_counting.py
"""

from repro import (
    CommunicationModel,
    Execution,
    SUM,
    bidirectional_ring,
    frequency_counterexample,
    leader_algorithm,
    run_until_stable,
)
from repro.functions.classes import multiset_based


def median(counts):
    values = sorted(v for v, m in counts.items() for _ in range(m))
    return values[len(values) // 2]


def main() -> None:
    stock = [7, 7, 12, 7, 12, 7]  # six warehouses, anonymous
    ring = bidirectional_ring(len(stock))

    print("— Without a leader: the sum is provably out of reach —")
    cert = frequency_counterexample(SUM, [7, 12])
    print(f"certificate: inputs {cert['v']} and {cert['w']} have equal frequencies")
    print(f"but sums {cert['f(v)']} != {cert['f(w)']} — any algorithm is fooled "
          f"by the ring collapse R_{cert['n']} ← R_2 → R_{cert['m']}.\n")

    print("— With one leader: full census —")
    inputs = [(v, i == 0) for i, v in enumerate(stock)]  # agent 0 is the leader

    for name, fn, expected in (
        ("total stock (sum)", SUM, SUM(stock)),
        ("warehouse count (n)", multiset_based("size", lambda c: sum(c.values())), len(stock)),
        ("median stock", multiset_based("median", median), 7),
    ):
        algorithm = leader_algorithm(fn, CommunicationModel.SYMMETRIC, leader_count=1)
        report = run_until_stable(
            Execution(algorithm, ring, inputs=inputs), 60, patience=5, target=expected
        )
        print(f"{name}: {report.value} (expected {expected}, "
              f"stabilized round {report.stabilization_round})")
        assert report.converged

    print("\nOne distinguished agent turns frequencies into multiplicities.")


if __name__ == "__main__":
    main()
