"""Opinion polling in a dynamic crowd: exact counting without identities.

A Hegselmann–Krause-flavored scenario (§1 cites the model as a natural
home of symmetric communications): anonymous participants meet in a
different symmetric pattern every round.  Three questions, three tools:

1. "What's the *average* opinion?"  — Metropolis consensus, asymptotic,
   constant memory.
2. "What *fraction* supports each option?"  — history-tree counting
   (Di Luna–Viglietta-style, §5): exact rationals, no knowledge of n.
3. "Does option A clear a 2/3 supermajority?" — a threshold-frequency
   predicate evaluated on the exact frequencies.

Run:  python examples/opinion_dynamics.py
"""

from fractions import Fraction

from repro import (
    Execution,
    HistoryTreeAlgorithm,
    MetropolisAlgorithm,
    random_dynamic_symmetric,
    run_until_asymptotic,
    run_until_stable,
    threshold_predicate,
)


def main() -> None:
    # 0/1 opinions of seven anonymous participants (A = 1).
    opinions = [1, 1, 0, 1, 1, 0, 1]
    n = len(opinions)
    crowd = random_dynamic_symmetric(n, seed=7)

    print("— Average opinion via Metropolis (asymptotic, memoryless) —")
    execution = Execution(MetropolisAlgorithm(), crowd, inputs=[float(o) for o in opinions])
    report = run_until_asymptotic(
        execution, 3000, tolerance=1e-7, target=sum(opinions) / n
    )
    print(f"estimates converged to {report.value:.6f} "
          f"(true {sum(opinions) / n:.6f}) in {report.rounds_run} rounds\n")

    print("— Exact support fractions via history-tree counting —")
    execution = Execution(HistoryTreeAlgorithm(), crowd, inputs=opinions)
    report = run_until_stable(execution, 30, patience=5)
    print(f"exact frequencies: {report.value} "
          f"(stabilized round {report.stabilization_round})")
    assert report.value == {0: Fraction(2, 7), 1: Fraction(5, 7)}

    print("\n— Supermajority check: does A reach 2/3? —")
    phi = threshold_predicate(1, 2 / 3)
    execution = Execution(HistoryTreeAlgorithm(f=phi), crowd, inputs=opinions)
    report = run_until_stable(execution, 30, patience=5)
    verdict = "PASSES" if report.value == 1 else "fails"
    print(f"support 5/7 ≈ {5 / 7:.3f} vs threshold 2/3 ≈ {2 / 3:.3f}: motion {verdict}")
    assert report.value == 1

    print("\nAnonymous, size-oblivious, ever-changing — and still exact.")


if __name__ == "__main__":
    main()
