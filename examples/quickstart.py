"""Quickstart: exact average in an anonymous static network.

Eight identical, anonymous agents on a random symmetric network each hold
a private reading.  With symmetric communications, Theorem 4.1 says every
frequency-based function — the average included — is computable exactly,
with no identifiers, no network knowledge, and no termination detection.
This script runs the paper's static pipeline and watches the outputs lock
onto the exact rational average.

Run:  python examples/quickstart.py
"""

from repro import (
    AVERAGE,
    CommunicationModel,
    Execution,
    StaticFunctionAlgorithm,
    diameter,
    random_symmetric_connected,
    run_until_stable,
)


def main() -> None:
    readings = [3, 1, 4, 1, 5, 9, 2, 6]
    graph = random_symmetric_connected(len(readings), seed=1)
    print(f"network: {graph} (diameter {diameter(graph)})")
    print(f"private readings: {readings}")
    print(f"true average: {AVERAGE(readings)}\n")

    algorithm = StaticFunctionAlgorithm(AVERAGE, CommunicationModel.SYMMETRIC)
    execution = Execution(algorithm, graph, inputs=readings)

    report = run_until_stable(execution, max_rounds=80, patience=5)
    print(f"converged: {report.converged}")
    print(f"all agents output: {report.value}")
    print(f"first correct round: {report.stabilization_round}")

    assert report.converged and report.value == AVERAGE(readings)
    print("\nEvery anonymous agent holds the exact average — no IDs, no n, no clock.")


if __name__ == "__main__":
    main()
