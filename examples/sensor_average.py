"""Wireless sensor field: averaging over a changing network, ragged starts.

The paper's motivating scenario (§1): a field of anonymous temperature
sensors whose radio links change every round, waking up at different
times.  Push-Sum (Theorem 5.2) computes the average asymptotically under
outdegree awareness; with a known bound N on the fleet size, Algorithm 1
plus ℚ_N-rounding (Corollary 5.3) turns the estimates into the *exact*
value-frequency table in finite time.

Run:  python examples/sensor_average.py
"""

from repro import (
    AsynchronousStartGraph,
    Execution,
    PushSumAlgorithm,
    PushSumFrequencyAlgorithm,
    random_dynamic_strongly_connected,
    run_until_asymptotic,
    run_until_stable,
)


def main() -> None:
    temperatures = [19.0, 23.0, 21.0, 23.0, 19.0, 19.0, 23.0]
    n = len(temperatures)
    target = sum(temperatures) / n

    # Radio links are directed (asymmetric transmit power) and change
    # every round; each sensor wakes up somewhere in the first 5 rounds.
    links = random_dynamic_strongly_connected(n, seed=2024)
    wakeups = [1, 4, 2, 5, 3, 1, 2]
    network = AsynchronousStartGraph(links, wakeups)

    print("— Phase 1: asymptotic average via Push-Sum —")
    execution = Execution(PushSumAlgorithm(), network, inputs=temperatures)
    report = run_until_asymptotic(execution, 2000, tolerance=1e-6, target=target)
    print(f"true average {target:.4f}; converged={report.converged} "
          f"after {report.rounds_run} rounds; estimates e.g. {report.outputs[0]:.6f}")

    print("\n— Phase 2: exact readings census with a fleet bound N = 10 —")
    census = PushSumFrequencyAlgorithm(mode="exact", n_bound=10)
    execution = Execution(census, network, inputs=[int(t) for t in temperatures])
    report = run_until_stable(execution, 2000, patience=10)
    print(f"exact frequency table: {report.value}")
    print(f"stabilized at round {report.stabilization_round}")

    assert report.converged
    print("\nEvery sensor knows the exact fraction of each reading — "
          "despite anonymity, churn, and ragged wake-ups.")


if __name__ == "__main__":
    main()
