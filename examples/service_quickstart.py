"""Serve, submit, watch live, fetch — the experiment service end to end.

The service walkthrough (EXPERIMENTS.md, experiment A16) as a
self-contained script:

1. start ``python -m repro serve --port 0 --pools 1`` as a subprocess
   and discover its ephemeral port from the announce line;
2. submit a small grid scenario over ``POST /v1/runs`` with live tracing
   on, and watch the run's SSE feed — durable ``progress`` events as
   units finish, round-level ``trace`` metric snapshots while they
   compute, a terminal ``end``;
3. fetch the finished document from ``GET /v1/results/{key}`` and
   revalidate it (``If-None-Match`` → ``304 Not Modified``);
4. resubmit the identical scenario and observe the ``303 See Other``
   short-circuit — the store, not the engine, answers warm submissions;
5. assert the served payload is **byte-for-byte identical** to a direct
   in-process :func:`repro.scenarios.run_scenario` of the same config.

Exits non-zero (via the asserts) if any step misbehaves, so CI can run
it as-is.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

from repro.scenarios import document_bytes, run_scenario, validate_scenario
from repro.service.client import ServiceClient

SCENARIO = {
    "scenario": "service-quickstart",
    "kind": "grid",
    "model": "one-bit broadcast",
    "rounds": 10,
    "seeds": [0, 1],
    "graphs": [
        {"family": "complete", "sizes": [4]},
        {"family": "ring", "sizes": [5]},
    ],
    "probes": ["or-flood", "census"],
    "inputs": "alternating",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--stats-out",
        default=None,
        metavar="FILE",
        help="also write the final /v1/store/stats payload here (CI artifact)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-service-") as root:
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--root",
                root,
                "--port",
                "0",
                "--pools",
                "1",
            ],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": "src"},
            text=True,
        )
        try:
            announce = json.loads(server.stdout.readline())
            print(f"serving on {announce['host']}:{announce['port']} (root {root})")
            client = ServiceClient(announce["host"], announce["port"], timeout=120)

            # -- submit with live tracing on --------------------------- #
            record = client.submit(SCENARIO, trace=True)
            assert record["status"] == "queued", record
            print(f"submitted run {record['id']} -> watching {record['links']['events']}")

            progress = traces = 0
            result_key = None
            for event in client.events(record["id"]):
                if event["event"] == "progress":
                    progress += 1
                    data = event["data"]
                    print(
                        f"  progress {data['units_done']}/{data['units_total']}"
                        f"  (event id {event['id']})"
                    )
                elif event["event"] == "trace":
                    traces += 1
                elif event["event"] == "end":
                    result_key = event["data"]["result_key"]
                    print(f"  end: {event['data']['status']} -> {result_key}")
            assert result_key, "stream ended without a result key"
            assert progress > 0, "no progress events streamed"
            assert traces > 0, "no round-level trace events streamed"
            print(f"streamed {progress} progress + {traces} trace events over SSE")

            # -- fetch, revalidate, resubmit --------------------------- #
            served = client.result_bytes(result_key)
            assert client.result_bytes(result_key, etag=result_key) is None
            print(f"fetched {len(served)} bytes; revalidation returned 304")
            again = client.submit(SCENARIO)
            assert again["status"] == "cached" and again["result_key"] == result_key
            print("resubmission short-circuited: 303 See Other (store-served)")

            # -- byte-identity against a direct run -------------------- #
            entry = json.loads(served.decode("utf-8"))
            direct = run_scenario(
                validate_scenario(SCENARIO, source="quickstart"), store=None
            )
            assert document_bytes(entry["payload"]) == document_bytes(direct), (
                "HTTP-served document differs from the direct run"
            )
            print("served document is byte-identical to the direct run ✓")

            stats = client.store_stats()
            print(
                f"store: {stats['store']['entries']} entries, "
                f"queue done={stats['queue']['done']}"
            )
            if args.stats_out:
                with open(args.stats_out, "w", encoding="utf-8") as fh:
                    json.dump(stats, fh, indent=2, sort_keys=True)
                print(f"wrote {args.stats_out}")
            client.close()
        finally:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
    return 0


if __name__ == "__main__":
    sys.exit(main())
