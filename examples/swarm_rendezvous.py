"""Swarm rendezvous: anonymous drones agreeing on a meeting point.

Distributed control is the paper's other motivating domain (§1, §2.3's
Euclidean metric): here five anonymous drones, each knowing only its own
GPS position, agree on their barycenter over a changing directed radio
topology — vector-valued Push-Sum, δ2-computation on ℝ².

A sixth drone acting as a *leader* then upgrades the swarm from the
barycenter (frequency-based) to the exact head-count and total payload
(multiset-based) — Corollary 5.4's dynamic leader story.

Run:  python examples/swarm_rendezvous.py
"""

from repro import (
    Execution,
    PushSumFrequencyAlgorithm,
    random_dynamic_strongly_connected,
    run_until_asymptotic,
    run_until_stable,
)
from repro.algorithms.push_sum import VectorPushSumAlgorithm
from repro.core.metrics import euclidean_metric


def main() -> None:
    positions = [(0.0, 0.0), (10.0, 0.0), (10.0, 8.0), (0.0, 8.0), (5.0, 4.0)]
    n = len(positions)
    barycenter = tuple(sum(p[i] for p in positions) / n for i in range(2))
    radio = random_dynamic_strongly_connected(n, seed=99)

    print("— Rendezvous: converging on the barycenter —")
    execution = Execution(VectorPushSumAlgorithm(), radio, inputs=positions)
    report = run_until_asymptotic(
        execution, 1000, tolerance=1e-6, target=barycenter, metric=euclidean_metric
    )
    estimate = report.outputs[0]
    print(f"true barycenter {barycenter}")
    print(f"drone estimate  ({estimate[0]:.6f}, {estimate[1]:.6f}) "
          f"after {report.rounds_run} rounds — converged: {report.converged}\n")
    assert report.converged

    print("— With a leader drone: exact census of payload classes —")
    payloads = [2, 2, 5, 2, 5]  # kg, anonymous
    inputs = [(p, i == 0) for i, p in enumerate(payloads)]
    census = PushSumFrequencyAlgorithm(mode="multiset", leader_count=1)
    report = run_until_stable(Execution(census, radio, inputs=inputs), 1000, patience=8)
    print(f"payload multiset: {report.value} (true: 2kg ×3, 5kg ×2)")
    total = sum(k * m for k, m in report.value.items())
    print(f"swarm size {sum(report.value.values())}, total payload {total} kg")
    assert report.value == {2: 3, 5: 2}

    print("\nNo identities, no fleet size, links changing every round — "
          "yet a meeting point and a full manifest.")


if __name__ == "__main__":
    main()
