"""repro — computability in anonymous networks.

A complete, executable reproduction of *Know your audience: Communication
model and computability in anonymous networks* (Charron-Bost &
Lambein-Monette, PODC 2024 brief announcement): a synchronous round
simulator for anonymous message-passing networks under four communication
models, the graph-fibration machinery behind the paper's
characterizations, the full static pipeline (distributed minimum base +
fibre-cardinality solvers), the dynamic pipeline (Push-Sum, Metropolis,
history-tree counting), and experiment harnesses regenerating the paper's
Tables 1 and 2.

Quickstart::

    from repro import (
        Execution, StaticFunctionAlgorithm, run_until_stable,
        random_symmetric_connected, AVERAGE, CommunicationModel,
    )

    graph = random_symmetric_connected(8, seed=1)
    algorithm = StaticFunctionAlgorithm(AVERAGE, CommunicationModel.SYMMETRIC)
    execution = Execution(algorithm, graph, inputs=[3, 1, 4, 1, 5, 9, 2, 6])
    report = run_until_stable(execution, max_rounds=60)
    assert report.converged  # every agent holds the exact average
"""

from repro.core import (
    Algorithm,
    BatchJob,
    BatchResult,
    BroadcastAlgorithm,
    CellCharacterization,
    CommunicationModel,
    ConvergenceReport,
    Execution,
    Knowledge,
    NetworkClassSpec,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
    PlanCache,
    canonical_repr,
    computable_class,
    discrete_metric,
    euclidean_metric,
    run_batch,
    run_until_asymptotic,
    run_until_stable,
    table1,
    table2,
)
from repro.graphs import (
    DiGraph,
    bidirectional_ring,
    complete_graph,
    de_bruijn_graph,
    diameter,
    directed_ring,
    hypercube,
    is_strongly_connected,
    is_symmetric,
    random_strongly_connected,
    random_symmetric_connected,
    star_graph,
    torus,
)
from repro.fibrations import (
    GraphMorphism,
    MinimumBase,
    fibres,
    is_covering,
    is_fibration,
    is_fibration_prime,
    minimum_base,
    ring_collapse,
)
from repro.functions import (
    AVERAGE,
    MAXIMUM,
    MINIMUM,
    SIZE,
    SUM,
    FrequencyFunction,
    FunctionClass,
    NamedFunction,
    frequencies_of,
    frequency_of,
    threshold_predicate,
)
from repro.dynamics import (
    AsynchronousStartGraph,
    DynamicGraph,
    StaticAsDynamic,
    certify_unbounded_diameter,
    dynamic_diameter,
    eventually_split_dynamic,
    growing_gap_dynamic,
    random_dynamic_strongly_connected,
    random_dynamic_symmetric,
    random_matching_dynamic,
    sparse_pulsed_dynamic,
)
from repro.algorithms import (
    ConstantWeightAveraging,
    GossipAlgorithm,
    HistoryTreeAlgorithm,
    MetropolisAlgorithm,
    PushSumAlgorithm,
    VectorPushSumAlgorithm,
    PushSumFrequencyAlgorithm,
    StaticFunctionAlgorithm,
    known_size_algorithm,
    leader_algorithm,
    nearest_rational,
)
from repro.analysis import (
    demonstrate_collapse,
    frequency_counterexample,
    render_table,
    reproduce_table1,
    reproduce_table2,
    verify_lifting_on_outputs,
)

__version__ = "1.0.0"

__all__ = [
    "AVERAGE",
    "Algorithm",
    "AsynchronousStartGraph",
    "BatchJob",
    "BatchResult",
    "BroadcastAlgorithm",
    "CellCharacterization",
    "CommunicationModel",
    "ConstantWeightAveraging",
    "ConvergenceReport",
    "DiGraph",
    "DynamicGraph",
    "Execution",
    "FrequencyFunction",
    "FunctionClass",
    "GossipAlgorithm",
    "GraphMorphism",
    "HistoryTreeAlgorithm",
    "Knowledge",
    "MAXIMUM",
    "MINIMUM",
    "MetropolisAlgorithm",
    "MinimumBase",
    "NamedFunction",
    "NetworkClassSpec",
    "OutdegreeAlgorithm",
    "OutputPortAlgorithm",
    "PlanCache",
    "PushSumAlgorithm",
    "PushSumFrequencyAlgorithm",
    "VectorPushSumAlgorithm",
    "SIZE",
    "SUM",
    "StaticAsDynamic",
    "StaticFunctionAlgorithm",
    "bidirectional_ring",
    "canonical_repr",
    "certify_unbounded_diameter",
    "complete_graph",
    "computable_class",
    "de_bruijn_graph",
    "demonstrate_collapse",
    "diameter",
    "directed_ring",
    "discrete_metric",
    "dynamic_diameter",
    "euclidean_metric",
    "eventually_split_dynamic",
    "fibres",
    "frequencies_of",
    "frequency_counterexample",
    "frequency_of",
    "growing_gap_dynamic",
    "hypercube",
    "is_covering",
    "is_fibration",
    "is_fibration_prime",
    "is_strongly_connected",
    "is_symmetric",
    "known_size_algorithm",
    "leader_algorithm",
    "minimum_base",
    "nearest_rational",
    "random_dynamic_strongly_connected",
    "random_matching_dynamic",
    "random_dynamic_symmetric",
    "random_strongly_connected",
    "random_symmetric_connected",
    "render_table",
    "reproduce_table1",
    "reproduce_table2",
    "ring_collapse",
    "run_batch",
    "run_until_asymptotic",
    "run_until_stable",
    "sparse_pulsed_dynamic",
    "star_graph",
    "table1",
    "table2",
    "threshold_predicate",
    "torus",
    "verify_lifting_on_outputs",
]
