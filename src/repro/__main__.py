"""``python -m repro`` — reproduce the paper's tables from the command line.

Usage::

    python -m repro                 # both tables, default sizes
    python -m repro --table 1       # just Table 1
    python -m repro --n 8 --seed 3  # different network size / randomness
    python -m repro --json          # machine-readable certificate (+ manifest)
    python -m repro run configs/table1.json
                                    # run a declarative scenario config
    python -m repro run configs/onebit_counting.json --pretty
    python -m repro trace --n 8 --rounds 20 --out trace.jsonl
                                    # round-level JSONL trace of one execution
    python -m repro store --root ./exp submit table2 --n 5
    python -m repro store --root ./exp submit scenario --config cfg.json
    python -m repro store --root ./exp run          # crash-safe worker loop
    python -m repro store --root ./exp status       # queue + cache stats
                                    # durable, resumable experiment runs
    python -m repro store --root ./exp --shards 8 run --pools 2
                                    # sharded queue + asyncio orchestrator
    python -m repro store --root ./exp gc --jobs --retention 86400
                                    # prune terminal job records older than a day
    python -m repro serve --root ./exp --port 0 --pools 2
                                    # HTTP API + embedded orchestrator
                                    # (SSE live traces, cached-result 303s)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.tables import format_results, reproduce_table1, reproduce_table2


def trace_main(argv=None) -> int:
    """``python -m repro trace`` — run one traced execution, emit JSONL.

    The stream's first line is the run's provenance manifest; then one
    ``round`` event per round and a final ``summary`` event with the
    metrics-registry snapshot (:func:`repro.core.engine.trace.events_from_jsonl`
    reads it all back).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one algorithm under the engine's structured tracing layer "
            "and emit the round-level trace as JSON Lines (manifest first, "
            "then one event per round, then a metrics summary)."
        ),
    )
    parser.add_argument(
        "--algorithm",
        choices=["gossip", "push-sum"],
        default="push-sum",
        help="what to run: set-flooding gossip or average-computing Push-Sum",
    )
    parser.add_argument("--n", type=int, default=8, help="network size")
    parser.add_argument("--seed", type=int, default=0, help="random-graph seed")
    parser.add_argument("--rounds", type=int, default=20, help="rounds to trace")
    parser.add_argument(
        "--graph",
        choices=["random", "ring", "hypercube", "torus"],
        default="random",
        help=(
            "static topology family: a seeded random strongly connected "
            "graph, or a symmetric family (ring/hypercube/torus) whose "
            "minimum base is small enough for --quotient to kick in"
        ),
    )
    parser.add_argument(
        "--dynamic",
        action="store_true",
        help="run on a seeded random dynamic network instead of a static one",
    )
    parser.add_argument(
        "--quotient",
        action="store_true",
        help=(
            "simulate the minimum base and lift the trajectory "
            "(quotient-accelerated execution; falls back to a direct run "
            "when the Lifting lemma does not apply)"
        ),
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help=(
            "run rounds as vectorized numpy kernels where the algorithm "
            "has one (gossip, Push-Sum and variants, Metropolis); falls "
            "back to the object stepper otherwise — the trace is the same "
            "either way"
        ),
    )
    parser.add_argument(
        "--recurring",
        type=int,
        default=None,
        metavar="P",
        help=(
            "run on a dynamic adversary cycling through a pool of P random "
            "graphs (graph interning on: revisited topologies reuse their "
            "compiled plans; memo counters land in the summary metrics)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSONL stream to this path (default: stdout)",
    )
    args = parser.parse_args(argv)

    from repro.algorithms import GossipAlgorithm, PushSumAlgorithm
    from repro.analysis.provenance import (
        Manifest,
        current_backend,
        network_fingerprint,
    )
    from repro.core.engine.quotient import publish_quotient_metrics, quotient_stats
    from repro.core.engine.trace import trace_execution, write_jsonl
    from repro.core.engine.vector import publish_vector_metrics, vector_stats
    from repro.core.execution import Execution
    from repro.core.memo import memo_stats, publish_memo_metrics

    if args.recurring is not None:
        from repro.dynamics.generators import recurring_dynamic_pool

        network = recurring_dynamic_pool(args.n, period=args.recurring, seed=args.seed)
    elif args.dynamic:
        from repro.dynamics.generators import random_dynamic_strongly_connected

        network = random_dynamic_strongly_connected(args.n, seed=args.seed)
    elif args.graph == "ring":
        from repro.graphs.builders import bidirectional_ring

        network = bidirectional_ring(args.n)
    elif args.graph == "hypercube":
        from repro.graphs.builders import hypercube

        network = hypercube(max(args.n - 1, 1).bit_length())
    elif args.graph == "torus":
        from repro.graphs.builders import torus

        side = max(2, round(args.n ** 0.5))
        network = torus(side, side)
    else:
        from repro.graphs.builders import random_strongly_connected

        network = random_strongly_connected(args.n, seed=args.seed)
    n = args.n if args.dynamic or args.recurring is not None else network.n

    # The symmetric families get fibrewise-constant inputs (the minimum
    # base of a vertex-transitive graph is a single vertex, and the
    # Lifting lemma needs inputs constant on fibres); the random graphs
    # keep per-vertex inputs.  This depends only on --graph, never on
    # --quotient, so the flag changes execution strategy, not the run.
    if args.algorithm == "gossip":
        algorithm = GossipAlgorithm(max)
        if args.graph != "random" and not args.dynamic and args.recurring is None:
            inputs = [(args.seed * 7919) % 101] * n
        else:
            inputs = [(v * 7919 + args.seed) % 101 for v in range(n)]
    else:
        algorithm = PushSumAlgorithm()
        if args.graph != "random" and not args.dynamic and args.recurring is None:
            inputs = [float(args.seed % 7 + 1)] * n
        else:
            inputs = [float(v + 1) for v in range(n)]

    baseline = memo_stats()
    quotient_baseline = quotient_stats()
    vector_baseline = vector_stats()
    execution = Execution(
        algorithm, network, inputs=inputs, quotient=args.quotient, vector=args.vector
    )
    tracer = trace_execution(execution, rounds=args.rounds)
    # This run's memo hits/misses (delta from the baseline snapshot) go
    # into the summary metrics as memo_<cache>_hits / _misses counters,
    # and likewise the quotient and vector layers' activation/fallback
    # counters.
    publish_memo_metrics(tracer.registry, baseline)
    publish_quotient_metrics(tracer.registry, quotient_baseline)
    publish_vector_metrics(tracer.registry, vector_baseline)

    extra = {"algorithm": args.algorithm, "dynamic": args.dynamic}
    if args.recurring is not None:
        extra["recurring"] = args.recurring
    if args.graph != "random":
        extra["graph"] = args.graph
    if args.quotient:
        extra["quotient"] = {
            "active": bool(getattr(execution, "quotient_active", False)),
            "base_n": getattr(execution, "base_n", None),
            "full_n": n,
            "fallback_reason": getattr(execution, "quotient_fallback_reason", None),
        }
    if args.vector:
        extra["vector"] = {
            "active": bool(getattr(execution, "vector_active", False)),
            "fallback_reason": getattr(execution, "vector_fallback_reason", None),
        }

    manifest = Manifest(
        kind="trace",
        seed=args.seed,
        n=n,
        rounds=args.rounds,
        graph_hash=network_fingerprint(network),
        backend=current_backend(),
        extra=extra,
    )
    events = list(tracer.events) + [tracer.summary_event()]
    if args.out:
        write_jsonl(args.out, events, manifest=manifest.to_dict())
        print(f"wrote {len(events) + 1} JSONL lines to {args.out}")
    else:
        write_jsonl(sys.stdout, events, manifest=manifest.to_dict())
    return 0


def run_main(argv=None) -> int:
    """``python -m repro run`` — execute a declarative scenario config.

    Loads and validates the config (every failure mode is a one-line
    typed error naming the file and key — exit code 2, no traceback),
    runs it through the engine, and emits the scenario's deterministic
    JSON document (byte-identical across engine modes).  Exit code 0
    when the document's verdict is PASS, 1 when it is FAIL.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description=(
            "Run a declarative scenario config (JSON or TOML): one of the "
            "paper's tables, or a grid of graph families × sizes × seeds "
            "× probes under one communication model.  Emits the "
            "scenario's deterministic JSON document."
        ),
    )
    parser.add_argument("config", help="scenario config file (.json or .toml)")
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON document to this path instead of stdout",
    )
    parser.add_argument(
        "--pretty",
        action="store_true",
        help="print the rendered table instead of the JSON document",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="ROOT",
        help=(
            "serve and persist units through the durable result store at "
            "this root (default: $REPRO_STORE when set, else no store)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.scenarios import (
        ScenarioError,
        document_bytes,
        format_scenario_document,
        load_scenario,
        run_scenario,
    )

    try:
        scenario = load_scenario(args.config)
        document = run_scenario(scenario, store=args.store)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload = document_bytes(document)
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(payload)
        print(f"wrote {len(payload)} bytes to {args.out}")
    if args.pretty:
        print(format_scenario_document(document))
    elif not args.out:
        sys.stdout.buffer.write(payload)
        sys.stdout.buffer.flush()
    return 0 if document["summary"]["verdict"] == "PASS" else 1


def store_main(argv=None) -> int:
    """``python -m repro store`` — the durable experiment store CLI.

    ``submit`` enqueues a job (idempotent on its parameters), ``run``
    drives the crash-safe worker loop until the queue drains, ``status``
    prints queue and cache statistics, ``result`` prints a finished job's
    document, and ``gc`` reclaims stale leases, temp files, and corrupt
    or cross-generation cache entries.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description=(
            "Durable experiment runs: a content-addressed result store plus "
            "a crash-safe job queue.  Kill a worker mid-run (kill -9 "
            "included) and a fresh `run` resumes from the last finished "
            "cell — the final document is byte-identical to an "
            "uninterrupted run's."
        ),
    )
    parser.add_argument(
        "--root",
        required=True,
        help="store root directory (results live here, the queue under queue/)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help=(
            "shard the queue K ways (consistent-hashed job placement; the "
            "count is persisted in a manifest on first use and rediscovered "
            "afterwards — passing a conflicting K later is an error)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="enqueue a job (idempotent)")
    p_submit.add_argument(
        "kind",
        choices=["table1", "table2", "certificate", "sweep", "scenario", "noop"],
    )
    p_submit.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "extra integer job parameter (repeatable; noop jobs use these "
            "as their identity — e.g. --param i=3 --param rep=1)"
        ),
    )
    p_submit.add_argument("--n", type=int, default=None, help="network size")
    p_submit.add_argument("--seed", type=int, default=0, help="random-graph seed")
    p_submit.add_argument(
        "--spec",
        action="append",
        default=[],
        metavar="N,D,SEED,ROUNDS",
        help="one sweep configuration (repeatable; sweep jobs only)",
    )
    p_submit.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help=(
            "scenario config file to submit (scenario jobs only; the "
            "validated config is copied into the job record, so later "
            "edits to the file do not change the queued job)"
        ),
    )
    p_submit.add_argument(
        "--max-attempts", type=int, default=3, help="retry budget before parking as failed"
    )
    p_submit.add_argument(
        "--quotient",
        action="store_true",
        help=(
            "run the job's cells quotient-accelerated (table jobs only; "
            "cell payloads are identical either way, so the store keys "
            "do not change)"
        ),
    )
    p_submit.add_argument(
        "--vector",
        action="store_true",
        help=(
            "run the job's cells on the vectorized numpy backend (table "
            "jobs only; payloads — and hence store keys — are identical "
            "either way)"
        ),
    )

    p_run = sub.add_parser("run", help="worker loop: claim and run jobs")
    p_run.add_argument(
        "--max-jobs", type=int, default=None, help="stop after this many jobs"
    )
    p_run.add_argument(
        "--wait",
        action="store_true",
        help="keep polling for new jobs instead of exiting when the queue drains",
    )
    p_run.add_argument(
        "--pools",
        type=int,
        default=None,
        metavar="N",
        help=(
            "dispatch through the asyncio orchestrator into N local "
            "process pools instead of the sequential worker loop"
        ),
    )
    p_run.add_argument(
        "--pool-workers",
        type=int,
        default=1,
        metavar="W",
        help="processes per pool under --pools (default 1)",
    )
    p_run.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="J",
        help=(
            "bound on claimed-but-unfinished jobs under --pools "
            "(default: pools × pool-workers × 4)"
        ),
    )

    p_status = sub.add_parser("status", help="queue counts, job list, cache stats")
    p_status.add_argument(
        "--brief",
        action="store_true",
        help="omit the per-job listing (counts and stats only)",
    )
    p_status.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit exactly the service's GET /v1/store/stats payload "
            "(machine-readable; one schema for shell scripts and HTTP clients)"
        ),
    )

    p_result = sub.add_parser("result", help="print a finished job's document")
    p_result.add_argument("job_id")
    p_result.add_argument(
        "--raw",
        action="store_true",
        help=(
            "dump the canonical store entry bytes (digest-checked, no "
            "re-encode) instead of the document payload — byte-identical "
            "to GET /v1/results/{key}"
        ),
    )

    p_gc = sub.add_parser(
        "gc", help="break stale leases, sweep temp files, heal the cache"
    )
    p_gc.add_argument(
        "--jobs",
        action="store_true",
        help="also prune terminal (done/failed) job records past --retention",
    )
    p_gc.add_argument(
        "--retention",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="retention window for --jobs: keep terminal records younger than this",
    )

    args = parser.parse_args(argv)

    from repro.store.jobs import open_queue, open_store, run_worker
    from repro.store.shard import ShardLayoutError

    store = open_store(args.root)
    try:
        queue = open_queue(args.root, shards=args.shards)
    except ShardLayoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "submit":
        if args.kind == "scenario":
            if not args.config:
                parser.error("scenario jobs need --config FILE")
            from repro.scenarios import ScenarioError, load_scenario

            try:
                scenario = load_scenario(args.config)
            except ScenarioError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            params = {"config": scenario.normalized()}
        elif args.kind == "sweep":
            if not args.spec:
                parser.error("sweep jobs need at least one --spec N,D,SEED,ROUNDS")
            specs = [[int(x) for x in spec.split(",")] for spec in args.spec]
            params = {"specs": specs}
        elif args.kind == "noop":
            params = {"seed": args.seed}
            if args.n is not None:
                params["n"] = args.n
            for pair in args.param:
                key, _, value = pair.partition("=")
                if not key or not value:
                    parser.error(f"--param needs KEY=VALUE, got {pair!r}")
                params[key] = int(value)
        else:
            default_n = 5 if args.kind == "table2" else 6
            params = {"n": args.n if args.n is not None else default_n, "seed": args.seed}
        if args.quotient:
            params["quotient"] = True
        if args.vector:
            params["vector"] = True
        record = queue.submit(args.kind, params, max_attempts=args.max_attempts)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.command == "run":
        if args.pools is not None:
            from repro.store.orchestrator import orchestrate

            stats = orchestrate(
                args.root,
                queue=queue,
                store=store,
                pools=args.pools,
                pool_workers=args.pool_workers,
                window=args.window,
                max_jobs=args.max_jobs,
                idle_exit=not args.wait,
            )
            counts = queue.counts()
            print(json.dumps({"orchestrator": stats, "queue": counts}, sort_keys=True))
            return 0 if counts["failed"] == 0 else 1
        processed = run_worker(
            args.root,
            max_jobs=args.max_jobs,
            idle_exit=not args.wait,
            queue=queue,
            store=store,
        )
        counts = queue.counts()
        print(f"processed {processed} job(s); queue now {counts}")
        return 0 if counts["failed"] == 0 else 1

    if args.command == "status":
        if args.json:
            from repro.store.jobs import store_status_payload

            print(json.dumps(store_status_payload(queue, store), indent=2, sort_keys=True))
            return 0
        status = {
            "queue": queue.counts(),
            "store": store.stats(),
            "scheduler": queue.stats(),
        }
        if hasattr(queue, "shard_stats"):
            status["shards"] = queue.shard_stats()
        if not args.brief:
            status["jobs"] = [r.to_dict() for r in queue.jobs()]
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0

    if args.command == "result":
        record = queue.get(args.job_id)
        if record is None:
            print(f"no such job: {args.job_id}", file=sys.stderr)
            return 1
        if record.status != "done" or not record.result_key:
            print(
                f"job {args.job_id} is {record.status}, no result document yet",
                file=sys.stderr,
            )
            return 1
        if args.raw:
            raw = store.get_bytes(record.result_key)
            if raw is None:
                print(
                    f"result entry {record.result_key} is missing or corrupt; "
                    "resubmit the job to recompute it",
                    file=sys.stderr,
                )
                return 1
            sys.stdout.buffer.write(raw)
            sys.stdout.buffer.flush()
            return 0
        payload = store.get(record.result_key)
        if payload is None:
            print(
                f"result entry {record.result_key} is missing or corrupt; "
                "resubmit the job to recompute it",
                file=sys.stderr,
            )
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    # gc
    keep_terminal = args.retention if args.jobs else None
    print(
        json.dumps(
            {"queue": queue.gc(keep_terminal=keep_terminal), "store": store.gc()},
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def serve_main(argv=None) -> int:
    """``python -m repro serve`` — the experiment service.

    Binds the asyncio HTTP API (submissions, status, SSE live traces,
    cached results) over a scheduler root and — unless ``--pools 0`` —
    embeds an orchestrator in the same event loop, so one process both
    accepts runs and executes them.  The first stdout line is a JSON
    announce record carrying the bound address; with ``--port 0``
    (ephemeral bind) that is how scripts discover the real port.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve the experiment HTTP API over a scheduler root: submit "
            "runs, watch live SSE progress and round-level traces, fetch "
            "canonical result documents (ETag/304 conditional serving).  "
            "By default an embedded orchestrator executes submissions in "
            "the same process."
        ),
    )
    parser.add_argument(
        "--root",
        required=True,
        help="store root directory (results live here, the queue under queue/)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "listen port (0 binds ephemerally; default: "
            "$REPRO_SERVICE_PORT when set, else 8765)"
        ),
    )
    parser.add_argument(
        "--backlog",
        type=int,
        default=None,
        help="accept backlog (default: $REPRO_SERVICE_BACKLOG when set, else 128)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="shard a brand-new queue K ways (existing layouts are rediscovered)",
    )
    parser.add_argument(
        "--pools",
        type=int,
        default=1,
        metavar="N",
        help=(
            "embedded orchestrator process pools (default 1; 0 serves the "
            "API only and leaves execution to external workers)"
        ),
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=1,
        metavar="W",
        help="processes per embedded pool (default 1)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="J",
        help="orchestrator in-flight window (default: pools × workers × 4)",
    )
    args = parser.parse_args(argv)

    from repro.service import serve

    def announce(record):
        print(json.dumps(record, sort_keys=True), flush=True)

    return serve(
        args.root,
        host=args.host,
        port=args.port,
        backlog=args.backlog,
        shards=args.shards,
        pools=args.pools,
        pool_workers=args.pool_workers,
        window=args.window,
        announce=announce,
    )


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "run":
        return run_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce Tables 1 and 2 of 'Know your audience' "
            "(Charron-Bost & Lambein-Monette, PODC 2024) by running the "
            "paper's algorithms and impossibility certificates.  The "
            "'run' subcommand executes a declarative scenario config, "
            "the 'trace' subcommand emits a round-level JSONL trace of "
            "one execution, and 'store' drives durable experiment runs."
        ),
    )
    parser.add_argument("--table", choices=["1", "2", "both"], default="both")
    parser.add_argument("--n", type=int, default=6, help="network size for the probes")
    parser.add_argument("--seed", type=int, default=0, help="random-graph seed")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan the table cells across a process pool",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for --parallel (default: one per CPU)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable reproduction certificate instead of tables",
    )
    parser.add_argument(
        "--quotient",
        action="store_true",
        help=(
            "quotient-accelerated cells: simulate each network's minimum "
            "base and lift the trajectory (results are identical; cells "
            "where the Lifting lemma does not apply fall back to direct "
            "execution)"
        ),
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help=(
            "vectorized cells: run kernel-backed probes as whole-network "
            "numpy rounds (results are identical; algorithms without a "
            "kernel fall back to the object stepper)"
        ),
    )
    args = parser.parse_args(argv)

    if args.json:
        from repro.analysis.certificate import reproduction_certificate

        doc = reproduction_certificate(
            n=args.n,
            seed=args.seed,
            parallel=True if args.parallel else None,
            workers=args.workers,
            quotient=True if args.quotient else None,
            vector=True if args.vector else None,
        )
        print(json.dumps(doc, indent=2))
        return 0 if doc["summary"]["verdict"] == "PASS" else 1

    parallel = True if args.parallel else None  # None keeps the env default
    quotient = True if args.quotient else None  # None keeps the env default
    vector = True if args.vector else None  # None keeps the env default
    failures = 0
    if args.table in ("1", "both"):
        results = reproduce_table1(
            n=args.n,
            seed=args.seed,
            parallel=parallel,
            workers=args.workers,
            quotient=quotient,
            vector=vector,
        )
        print(format_results(results, "Table 1 — static strongly connected networks"))
        failures += sum(not r.consistent for r in results)
        print()
    if args.table in ("2", "both"):
        results = reproduce_table2(
            n=min(args.n, 6),
            seed=args.seed,
            parallel=parallel,
            workers=args.workers,
            quotient=quotient,
            vector=vector,
        )
        print(format_results(results, "Table 2 — dynamic networks with finite dynamic diameter"))
        failures += sum(not r.consistent for r in results)
        print()

    if failures:
        print(f"{failures} cell(s) disagree with the paper", file=sys.stderr)
        return 1
    print("every cell agrees with the paper ✓")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # ``python -m repro ... | head`` closes stdout before we finish
        # printing; exit like a SIGPIPE'd process instead of tracebacking.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
