"""``python -m repro`` — reproduce the paper's tables from the command line.

Usage::

    python -m repro                 # both tables, default sizes
    python -m repro --table 1       # just Table 1
    python -m repro --n 8 --seed 3  # different network size / randomness
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.tables import format_results, reproduce_table1, reproduce_table2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce Tables 1 and 2 of 'Know your audience' "
            "(Charron-Bost & Lambein-Monette, PODC 2024) by running the "
            "paper's algorithms and impossibility certificates."
        ),
    )
    parser.add_argument("--table", choices=["1", "2", "both"], default="both")
    parser.add_argument("--n", type=int, default=6, help="network size for the probes")
    parser.add_argument("--seed", type=int, default=0, help="random-graph seed")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan the table cells across a process pool",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for --parallel (default: one per CPU)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable reproduction certificate instead of tables",
    )
    args = parser.parse_args(argv)

    if args.json:
        from repro.analysis.certificate import reproduction_certificate

        doc = reproduction_certificate(n=args.n, seed=args.seed)
        print(json.dumps(doc, indent=2))
        return 0 if doc["summary"]["verdict"] == "PASS" else 1

    parallel = True if args.parallel else None  # None keeps the env default
    failures = 0
    if args.table in ("1", "both"):
        results = reproduce_table1(
            n=args.n, seed=args.seed, parallel=parallel, workers=args.workers
        )
        print(format_results(results, "Table 1 — static strongly connected networks"))
        failures += sum(not r.consistent for r in results)
        print()
    if args.table in ("2", "both"):
        results = reproduce_table2(
            n=min(args.n, 6), seed=args.seed, parallel=parallel, workers=args.workers
        )
        print(format_results(results, "Table 2 — dynamic networks with finite dynamic diameter"))
        failures += sum(not r.consistent for r in results)
        print()

    if failures:
        print(f"{failures} cell(s) disagree with the paper", file=sys.stderr)
        return 1
    print("every cell agrees with the paper ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
