"""The paper's algorithms.

Static pipeline (Section 4): :mod:`.gossip` (set flooding, simple
broadcast), :mod:`.minimum_base_alg` (distributed Boldi–Vigna view/base
construction), :mod:`.fibre_solver` (eqs. (1), (3), (4)),
:mod:`.frequency_static` and :mod:`.multiset_static` (Theorem 4.1 and
Corollaries 4.2–4.4).

Dynamic pipeline (Section 5): :mod:`.push_sum` (Theorem 5.2),
:mod:`.push_sum_frequency` (Algorithm 1, Corollaries 5.3–5.5),
:mod:`.metropolis` (Metropolis / Lazy Metropolis averaging),
:mod:`.rational` (nearest rational in ℚ_N), :mod:`.history_tree`
(Di Luna–Viglietta-style exact counting for symmetric dynamic networks).

Beyond the paper: :mod:`.onebit` — the one-bit broadcast scenario pack
(OR-flooding and indegree census) for the fifth communication model.
"""

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm, VectorPushSumAlgorithm
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.constant_weight import ConstantWeightAveraging, ConstantWeightFrequency
from repro.algorithms.rational import nearest_rational
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.algorithms.minimum_base_alg import (
    DistributedMinimumBase,
    OutdegreeViewAlgorithm,
    PortViewAlgorithm,
    SymmetricViewAlgorithm,
    extract_base,
)
from repro.algorithms.fibre_solver import (
    fibre_ratios_outdegree,
    fibre_ratios_ports,
    fibre_ratios_symmetric,
)
from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.multiset_static import (
    known_size_algorithm,
    leader_algorithm,
)
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.onebit import OneBitCensusAlgorithm, OneBitFloodingAlgorithm

__all__ = [
    "ConstantWeightAveraging",
    "ConstantWeightFrequency",
    "DistributedMinimumBase",
    "GossipAlgorithm",
    "HistoryTreeAlgorithm",
    "MetropolisAlgorithm",
    "OneBitCensusAlgorithm",
    "OneBitFloodingAlgorithm",
    "OutdegreeViewAlgorithm",
    "PortViewAlgorithm",
    "PushSumAlgorithm",
    "PushSumFrequencyAlgorithm",
    "StaticFunctionAlgorithm",
    "SymmetricViewAlgorithm",
    "VectorPushSumAlgorithm",
    "extract_base",
    "fibre_ratios_outdegree",
    "fibre_ratios_ports",
    "fibre_ratios_symmetric",
    "known_size_algorithm",
    "leader_algorithm",
    "nearest_rational",
]
