"""Average consensus in the *pure* symmetric model (no outdegree awareness).

Table 2 credits CB & LM [11] with frequency-based computation under
symmetric communications when a bound on ``n`` is known, *without*
outdegree awareness — in a dynamic network an agent cannot know its
current degree at send time, so Metropolis weights are unavailable.

The classic constant-weight scheme sidesteps degrees entirely: with a
known bound ``N > max degree``, every agent moves toward each received
estimate with the same weight ``1/N``:

    ``x_i(t) = x_i(t-1) + (1/N) Σ_{j ∈ neighbors} (x_j(t-1) - x_i(t-1))``.

The update matrix ``I - L(t)/N`` (``L`` the graph Laplacian) is symmetric
and doubly stochastic whenever ``N`` exceeds the degrees, so the average
is conserved and, with recurrent connectivity (Moreau's condition —
satisfied in particular by a finite dynamic diameter), all estimates
converge to it.  The price of degree-blindness is slower mixing: the
uniform ``1/N`` weight is pessimistic exactly where Metropolis adapts —
the paper's remark that the no-outdegree variant pays a higher
``O(n⁴)``-type temporal complexity.

The sending function depends on the state alone (a true broadcast
algorithm run in the symmetric network class), and the own-message copy
arriving through the self-loop contributes ``(x_i - x_i) = 0``, so no
self-identification is needed at all.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.core.agent import BroadcastAlgorithm
from repro.core.models import CommunicationModel

State = Tuple[float]


class ConstantWeightAveraging(BroadcastAlgorithm):
    """Degree-blind average consensus for symmetric networks.

    ``n_bound`` must exceed every degree the dynamic graph can exhibit;
    a bound on the network size always qualifies (degrees are < n).
    """

    model = CommunicationModel.SYMMETRIC

    def __init__(self, n_bound: int):
        if n_bound < 2:
            raise ValueError("n_bound must be >= 2")
        self.n_bound = n_bound

    def initial_state(self, input_value: Union[float, int]) -> State:
        return (float(input_value),)

    def message(self, state: State) -> float:
        return state[0]

    def transition(self, state: State, received: Tuple[float, ...]) -> State:
        x = state[0]
        # Every received estimate (own copy included — its term vanishes)
        # pulls with the same weight 1/N.
        new_x = x + sum(xj - x for xj in received) / self.n_bound
        return (new_x,)

    def output(self, state: State) -> float:
        return state[0]


class ConstantWeightFrequency(BroadcastAlgorithm):
    """Frequencies (or the multiset) in the pure symmetric model — CB & LM [11].

    One constant-weight averaging instance runs per value ω over the
    indicator vector ``1[v_i = ω]``, whose average is exactly the
    frequency ``ν_v(ω)``.  An agent that has never heard of ω implicitly
    holds estimate 0 — correct from the start, so unlike Push-Sum there
    is no joining bookkeeping at all, and the per-value mass
    ``Σ_i x_i[ω]`` is conserved exactly by the doubly stochastic updates.

    * ``mode="exact"`` (needs ``n_bound``): estimates rounded to the
      nearest rational of ``ℚ_N`` — exact frequencies in finite time,
      Table 2's (symmetric, bound known) cell;
    * ``mode="multiset"`` (needs ``n``): multiplicities ``round(n·x)`` —
      Table 2's (symmetric, n known) cell.
    """

    model = CommunicationModel.SYMMETRIC

    def __init__(
        self,
        mode: str = "exact",
        n_bound: "int | None" = None,
        n: "int | None" = None,
        f=None,
    ):
        if mode not in ("exact", "multiset", "frequencies"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "exact" and n_bound is None:
            raise ValueError("exact mode needs n_bound")
        if mode == "multiset" and n is None:
            raise ValueError("multiset mode needs n")
        self.mode = mode
        self.n_bound = n_bound if n_bound is not None else (n if n is not None else 2)
        self.n = n
        self.f = f

    def initial_state(self, input_value):
        return {input_value: 1.0}

    def message(self, state):
        return state

    def transition(self, state, received):
        support = set(state)
        for table in received:
            support.update(table)
        new = {}
        for w in support:
            x = state.get(w, 0.0)
            new[w] = x + sum(table.get(w, 0.0) - x for table in received) / self.n_bound
        return new

    def output(self, state):
        from fractions import Fraction

        from repro.algorithms.rational import nearest_frequency
        from repro.functions.frequency import FrequencyFunction

        if self.mode == "frequencies":
            total = sum(state.values())
            if total <= 0:
                return None
            normalized = {
                w: x / total for w, x in sorted(state.items(), key=lambda kv: repr(kv[0]))
            }
            return self.f(normalized) if self.f else normalized
        if self.mode == "exact":
            rounded = {
                w: nearest_frequency(x, self.n_bound) for w, x in state.items()
            }
            if sum(rounded.values(), Fraction(0)) != 1:
                return None
            nu = FrequencyFunction(rounded)
            return self.f(nu.canonical_vector()) if self.f else nu
        mults = {}
        for w, x in sorted(state.items(), key=lambda kv: repr(kv[0])):
            m = round(self.n * x)
            if m < 0:
                return None
            if m > 0:
                mults[w] = m
        if not mults:
            return None
        if self.f:
            return self.f([w for w, m in mults.items() for _ in range(m)])
        return mults
