"""Fibre-cardinality ratios from a (candidate) minimum base (§4.2–4.3).

Given the extracted base, each agent solves for the vector ``z`` of fibre
cardinalities *up to a common factor* — the content of eq. (2).  The three
communication models admit three solvers:

* outdegree awareness — eq. (1): build ``M`` (``M[i][j] = d_{i,j}`` off
  the diagonal, ``M[i][i] = d_{i,i} - b_i``) and return the primitive
  positive integer vector spanning ``ker M`` ("Gaussian elimination over
  the Euclidean ring ℤ"); the kernel is one-dimensional by the paper's
  Perron–Frobenius argument;
* output port awareness — eq. (3): every fibration is a covering, all
  fibres have equal cardinality, so ``z = (1, ..., 1)``;
* symmetric communications — eq. (4): ``d_{i,j} z_j = d_{j,i} z_i``, so
  ratios propagate along any spanning tree of the base's support and the
  system needs no elimination at all.

All solvers return ``None`` instead of raising while the input base is an
unstabilized candidate (inconsistent annotations, violated equations) —
the distributed algorithm simply outputs nothing until the views settle.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import List, Optional

from repro.graphs.digraph import DiGraph
from repro.linalg.exact import integer_kernel_vector, primitive_integer_vector


def _edge_counts(base: DiGraph) -> List[List[int]]:
    """``d[i][j]`` = number of base edges ``i -> j`` (colors ignored)."""
    d = [[0] * base.n for _ in range(base.n)]
    for e in base.edges:
        d[e.source][e.target] += 1
    return d


def fibre_ratios_outdegree(base: DiGraph) -> Optional[List[int]]:
    """Solve eq. (1) on a base of the double-valued graph ``G_{v,d⁻}``.

    Vertex values must be ``(value, outdegree)`` pairs — §4.2's footnote 5:
    ``b_i`` is the fibre's outdegree *in G*, generally different from the
    base vertex's outdegree in ``B``, so it must be carried as data.
    """
    m = base.n
    b: List[int] = []
    for i in base.vertices():
        label = base.value(i)
        if not (isinstance(label, tuple) and len(label) == 2 and isinstance(label[1], int)):
            return None
        b.append(label[1])
    d = _edge_counts(base)
    matrix = [[d[i][j] if i != j else d[i][i] - b[i] for j in range(m)] for i in range(m)]
    z = integer_kernel_vector(matrix)
    if z is None or any(zi <= 0 for zi in z):
        return None
    return z


def fibre_ratios_ports(base: DiGraph) -> Optional[List[int]]:
    """Eq. (3): with output ports every fibration is a covering — all equal.

    Sanity-checks that each base vertex's out-edges carry distinct port
    colors (the covering's local isomorphism); candidates failing it are
    rejected as unstabilized.
    """
    for v in base.vertices():
        ports = [e.color for e in base.out_edges(v)]
        if len(set(ports)) != len(ports) or not all(isinstance(p, int) for p in ports):
            return None
    return [1] * base.n


def fibre_ratios_symmetric(base: DiGraph) -> Optional[List[int]]:
    """Eq. (4): propagate ``z_j = z_i · d_{j,i}/d_{i,j}`` along a spanning tree.

    The ratios must be globally consistent (every non-tree pair must also
    satisfy eq. (4)); a violated pair marks an unstabilized candidate.
    """
    m = base.n
    d = _edge_counts(base)
    # Support must be symmetric for a base of a bidirectional network.
    for i in range(m):
        for j in range(m):
            if (d[i][j] > 0) != (d[j][i] > 0):
                return None
    z: List[Optional[Fraction]] = [None] * m
    z[0] = Fraction(1)
    queue = deque([0])
    while queue:
        i = queue.popleft()
        for j in range(m):
            if j == i or d[i][j] == 0 or z[j] is not None:
                continue
            z[j] = z[i] * Fraction(d[j][i], d[i][j])
            queue.append(j)
    if any(zj is None for zj in z):
        return None  # base support not connected: not a real base
    for i in range(m):
        for j in range(m):
            if d[i][j] and z[j] * d[i][j] != z[i] * d[j][i]:
                return None
    ints = primitive_integer_vector([zj for zj in z if zj is not None])
    if any(x <= 0 for x in ints):
        return None
    return ints
