"""The static computation algorithm (Theorem 4.1, Corollaries 4.2–4.4).

The full pipeline run by every agent, entirely locally, every round:

1. grow the in-view by one level (:mod:`.minimum_base_alg`);
2. extract the candidate base ``B(T_i^t)``;
3. solve for the fibre-cardinality ratios ``z`` (:mod:`.fibre_solver`);
4. reconstruct a representative input vector and apply ``f``:

   * no help / bound on ``n`` — the vector with each base value repeated
     ``z_i`` times is equivalent in frequency to the true input, so any
     *frequency-based* ``f`` lands on ``f(v)`` (Theorem 4.1);
   * ``n`` known — ``k = n / Σ z_i`` turns ratios into exact
     multiplicities, recovering the multiset: any *multiset-based* ``f``
     (Corollary 4.3);
   * ℓ leaders — eq. (5): ``|φ⁻¹(i)| = ℓ·z_i / Σ_{j ∈ leaders} z_j``,
     again the exact multiset (Corollary 4.4).

Before stabilization the extraction/solvers return ``None`` and so does
the output; afterwards the output is exact and constant — finite-time,
δ0 computation, hence δ-computation for every metric.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge
from repro.graphs.digraph import DiGraph
from repro.graphs.views import ViewBuilder
from repro.algorithms.minimum_base_alg import (
    OutdegreeViewAlgorithm,
    PortViewAlgorithm,
    SymmetricViewAlgorithm,
    extract_base,
)
from repro.algorithms.fibre_solver import (
    fibre_ratios_outdegree,
    fibre_ratios_ports,
    fibre_ratios_symmetric,
)

_SOLVERS = {
    CommunicationModel.OUTDEGREE_AWARE: fibre_ratios_outdegree,
    CommunicationModel.SYMMETRIC: fibre_ratios_symmetric,
    CommunicationModel.OUTPUT_PORT_AWARE: fibre_ratios_ports,
}


class _FunctionOutput:
    """Output stage shared by the three model-specific subclasses."""

    #: Maps a base label to the agent's input value.  In the outdegree
    #: model the base is that of the double-valued graph ``G_{v,d⁻}``, so
    #: labels are ``(value, outdegree)`` pairs and the value is the first
    #: component; the other models label with the value directly.
    _unwrap = staticmethod(lambda label: label)

    def _configure(
        self,
        f: Callable[[List[Any]], Any],
        solver: Callable[[DiGraph], Optional[List[int]]],
        knowledge: Knowledge,
        n: Optional[int],
        leader_count: int,
    ) -> None:
        self._f = f
        self._solver = solver
        self._knowledge = knowledge
        self._n = n
        self._leader_count = leader_count

    def _multiplicities(self, base: DiGraph, z: List[int]) -> Optional[List[int]]:
        if self._knowledge in (Knowledge.NONE, Knowledge.BOUND_N):
            # Ratios suffice: the reconstructed vector is ν-equivalent to
            # the input, which is all a frequency-based f needs.
            return z
        if self._knowledge is Knowledge.EXACT_N:
            total = sum(z)
            if self._n is None or self._n % total != 0:
                return None
            k = self._n // total
            return [k * zi for zi in z]
        if self._knowledge is Knowledge.LEADER:
            # Inputs are (value, is_leader); eq. (5).
            leader_sum = 0
            for i in base.vertices():
                label = self._unwrap(base.value(i))
                if isinstance(label, tuple) and len(label) == 2 and label[1]:
                    leader_sum += z[i]
            if leader_sum == 0:
                return None
            mults = []
            for zi in z:
                numerator = self._leader_count * zi
                if numerator % leader_sum != 0:
                    return None
                mults.append(numerator // leader_sum)
            return mults
        raise AssertionError(f"unhandled knowledge {self._knowledge}")

    def output(self, state: Any) -> Any:
        _input, view = state
        base = extract_base(view, self.builder, skip_root=self._skip_root)
        if base is None:
            return None
        z = self._solver(base)
        if z is None:
            return None
        mults = self._multiplicities(base, z)
        if mults is None:
            return None
        vector: List[Any] = []
        for i in base.vertices():
            label = self._unwrap(base.value(i))
            if self._knowledge is Knowledge.LEADER and isinstance(label, tuple):
                label = label[0]
            vector.extend([label] * mults[i])
        if not vector:
            return None
        return self._f(vector)


class _OutdegreeFunction(_FunctionOutput, OutdegreeViewAlgorithm):
    _unwrap = staticmethod(lambda label: label[0])


class _SymmetricFunction(_FunctionOutput, SymmetricViewAlgorithm):
    pass


class _PortFunction(_FunctionOutput, PortViewAlgorithm):
    pass


def StaticFunctionAlgorithm(
    f: Callable[[List[Any]], Any],
    model: CommunicationModel,
    knowledge: Knowledge = Knowledge.NONE,
    n: Optional[int] = None,
    leader_count: int = 1,
    builder: Optional[ViewBuilder] = None,
    max_view_depth: Optional[int] = None,
):
    """The paper's static algorithm, assembled for one model and help level.

    ``f`` receives a reconstructed input vector: ν-equivalent to the true
    input below ``EXACT_N``, the exact multiset at ``EXACT_N``/``LEADER``.
    With ``LEADER``, feed inputs as ``(value, is_leader)`` pairs and pass
    ``leader_count``.  Agents output ``None`` until their view stabilizes,
    then the exact value forever.

    ``max_view_depth`` selects the finite-state variant (§3.2): with any
    bound ``>= 2(n + D) + 2`` — e.g. ``4·N`` from a known bound ``N`` on
    the network size — memory is bounded and the algorithm becomes
    self-stabilizing against arbitrarily corrupted initial views.
    """
    if knowledge is Knowledge.EXACT_N and n is None:
        raise ValueError("EXACT_N needs the network size n")
    classes = {
        CommunicationModel.OUTDEGREE_AWARE: _OutdegreeFunction,
        CommunicationModel.SYMMETRIC: _SymmetricFunction,
        CommunicationModel.OUTPUT_PORT_AWARE: _PortFunction,
    }
    if model not in classes:
        raise ValueError(
            f"{model} cannot compute frequency-based functions (Theorem 4.1); "
            "use GossipAlgorithm for set-based functions"
        )
    algorithm = classes[model](builder, max_view_depth)
    algorithm._configure(f, _SOLVERS[model], knowledge, n, leader_count)
    return algorithm
