"""Set flooding — "the simple gossip algorithm" (Section 1).

Under simple broadcast, each agent repeatedly casts out every input value
it has heard of; the known sets grow monotonically and, once the dynamic
diameter has elapsed, every agent holds exactly the support of the input
vector.  Composing with any function of the set computes every set-based
function — the positive half of the broadcast column of Tables 1 and 2.

The algorithm is finite-state (states are subsets of the finite value
domain actually present), tolerates asynchronous starts (late agents just
join the flood), and works unchanged on static and dynamic networks.  It
is *not* self-stabilizing: a corrupted state containing a value absent
from the input can never be flushed — tests exhibit exactly this.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Optional, Tuple

from repro.core.agent import BroadcastAlgorithm


class GossipAlgorithm(BroadcastAlgorithm):
    """Flood input values; output a function of the known set.

    Parameters
    ----------
    on_set:
        Function from the known ``frozenset`` of values to the output; the
        default outputs the set itself (so the execution computes the
        support, from which any set-based function follows).
    """

    def __init__(self, on_set: Optional[Callable[[FrozenSet[Any]], Any]] = None):
        self._on_set = on_set if on_set is not None else (lambda s: s)

    def initial_state(self, input_value: Any) -> FrozenSet[Any]:
        return frozenset([input_value])

    def message(self, state: FrozenSet[Any]) -> FrozenSet[Any]:
        return state

    def transition(self, state: FrozenSet[Any], received: Tuple[Any, ...]) -> FrozenSet[Any]:
        out = state
        for msg in received:
            out = out | msg
        return out

    def output(self, state: FrozenSet[Any]) -> Any:
        return self._on_set(state)
