"""Exact frequencies in *dynamic symmetric* networks via history classes.

This module reproduces (in spirit) the Di Luna–Viglietta result the paper
cites for Table 2's symmetric column: in anonymous dynamic networks with
bidirectional links and finite dynamic diameter, every frequency-based
function is computable *exactly*, with no knowledge of the network — at
the price of unbounded state and bandwidth (which the paper points out,
and which is equally true here).

The mechanism is the *history tree*: after ``t`` rounds, partition agents
into classes by their interaction history —

* at round 0, two agents are equivalent iff they hold the same input;
* at round ``t``, iff they were equivalent at ``t-1`` *and* received the
  same multiset of round-``t-1`` classes.

Because an agent's outgoing message can be its entire current class
description (a hash-consed DAG), every agent can maintain its own class
and, by transitivity of flooding, eventually learns every class that ever
existed.  Two facts then pin down the class cardinalities up to a global
factor:

* **refinement** — a class is the disjoint union of its child classes:
  ``|a| = Σ_{x : prev(x) = a} |x|``;
* **symmetry counting** — in a bidirectional round, the number of edges
  between classes ``a`` and ``b`` can be counted from either side:
  ``Σ_{x : prev(x)=a} |x| · recv_x[b] = Σ_{y : prev(y)=b} |y| · recv_y[a]``,
  where ``recv_x[b]`` is the (class-identical) number of messages each
  ``x``-member received from ``b``-members.

The resulting homogeneous integer system eventually has a one-dimensional
positive kernel; its level-0 coordinates are the input multiplicities, so
the *frequencies* are exact rationals.  Per the paper's discussion, the
algorithm is linear-time in spirit but uses unbounded state, is not
self-stabilizing, and does not tolerate asynchronous starts.

Like the view-based static algorithm, an agent only trusts history levels
``≤ t/2``: old enough that every class of those levels (and every child of
such a class) has had time to flood to everyone, so the equations above
are complete.  Until then the system is underdetermined or wrong and the
agent outputs ``None``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.core.agent import BroadcastAlgorithm
from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge
from repro.graphs.views import View, ViewBuilder
from repro.linalg.exact import kernel_basis, primitive_integer_vector

State = Tuple[Any, View]

_PREV = "prev"
_RECV = "recv"


class HistoryTreeAlgorithm(BroadcastAlgorithm):
    """History-class tracking and exact frequency recovery.

    Parameters
    ----------
    knowledge:
        ``NONE`` — output the exact :class:`FrequencyFunction`-like dict
        ``{value: Fraction}``;
        ``EXACT_N`` — output integer multiplicities (needs ``n``);
        ``LEADER`` — inputs are ``(value, is_leader)`` pairs; the leader
        classes anchor the scale and multiplicities are output.
    f:
        Optional function applied to the reconstructed vector (canonical
        ν-vector for ``NONE``, exact multiset otherwise).
    """

    model = CommunicationModel.SYMMETRIC

    def __init__(
        self,
        knowledge: Knowledge = Knowledge.NONE,
        n: Optional[int] = None,
        leader_count: int = 1,
        f=None,
        builder: Optional[ViewBuilder] = None,
    ):
        if knowledge is Knowledge.EXACT_N and n is None:
            raise ValueError("EXACT_N needs n")
        if knowledge is Knowledge.BOUND_N:
            # A bound adds nothing here: frequencies are already exact.
            knowledge = Knowledge.NONE
        self.knowledge = knowledge
        self.n = n
        self.leader_count = leader_count
        self.f = f
        self.builder = builder if builder is not None else ViewBuilder()
        # Solutions are a function of the class DAG alone, so they are
        # shared by all agents in a class; memoize per (uid, cutoff).
        self._solve_cache: Dict[Tuple[int, int], Any] = {}

    # ------------------------------------------------------------------ #
    # automaton
    # ------------------------------------------------------------------ #

    def initial_state(self, input_value: Any) -> State:
        root = self.builder.node(("input", input_value), ())
        return (input_value, root)

    def message(self, state: State) -> View:
        return state[1]

    def transition(self, state: State, received: Tuple[View, ...]) -> State:
        input_value, current = state
        children = [(_PREV, current)] + [(_RECV, cls) for cls in received]
        return (input_value, self.builder.node(None, children))

    # ------------------------------------------------------------------ #
    # counting
    # ------------------------------------------------------------------ #

    @staticmethod
    def _prev_of(node: View) -> Optional[View]:
        for color, child in node.children:
            if color == _PREV:
                return child
        return None

    @staticmethod
    def _recv_of(node: View) -> Counter:
        return Counter(child.uid for color, child in node.children if color == _RECV)

    def _collect(self, root: View) -> Dict[int, List[View]]:
        """All reachable class nodes grouped by level (0 = inputs)."""
        levels: Dict[int, int] = {}
        order: Dict[int, View] = {}

        def level(node: View) -> int:
            got = levels.get(node.uid)
            if got is not None:
                return got
            prev = self._prev_of(node)
            lv = 0 if prev is None else level(prev) + 1
            levels[node.uid] = lv
            order[node.uid] = node
            for _color, child in node.children:
                level(child)
            return lv

        level(root)
        grouped: Dict[int, List[View]] = defaultdict(list)
        for uid, node in order.items():
            grouped[levels[uid]].append(node)
        for lst in grouped.values():
            lst.sort(key=lambda nd: nd.uid)
        return dict(grouped)

    def _solve(self, root: View) -> Optional[Dict[Any, int]]:
        """Input multiplicities up to a global factor, or ``None``."""
        t = root.depth  # levels present: 0 .. t
        cutoff = t // 2
        cache_key = (root.uid, cutoff)
        if cache_key in self._solve_cache:
            return self._solve_cache[cache_key]
        result = self._solve_uncached(root, cutoff)
        self._solve_cache[cache_key] = result
        return result

    def _solve_uncached(self, root: View, cutoff: int) -> Optional[Dict[Any, int]]:
        grouped = self._collect(root)
        nodes: List[View] = []
        for lv in range(cutoff + 1):
            nodes.extend(grouped.get(lv, []))
        if not nodes:
            return None
        index = {node.uid: i for i, node in enumerate(nodes)}
        rows: List[List[int]] = []

        # Refinement: |a| = Σ |children of a| for a at levels < cutoff.
        children_of: Dict[int, List[View]] = defaultdict(list)
        for lv in range(1, cutoff + 1):
            for x in grouped.get(lv, []):
                prev = self._prev_of(x)
                assert prev is not None
                children_of[prev.uid].append(x)
        for lv in range(cutoff):
            for a in grouped.get(lv, []):
                row = [0] * len(nodes)
                row[index[a.uid]] = 1
                for x in children_of.get(a.uid, []):
                    row[index[x.uid]] -= 1
                if any(row):
                    rows.append(row)

        # Symmetry counting at each level 1 .. cutoff.
        for lv in range(1, cutoff + 1):
            parents = grouped.get(lv - 1, [])
            level_nodes = grouped.get(lv, [])
            by_prev: Dict[int, List[View]] = defaultdict(list)
            for x in level_nodes:
                prev = self._prev_of(x)
                assert prev is not None
                by_prev[prev.uid].append(x)
            for ai in range(len(parents)):
                for bi in range(ai + 1, len(parents)):
                    a, b = parents[ai], parents[bi]
                    row = [0] * len(nodes)
                    for x in by_prev.get(a.uid, []):
                        count = self._recv_of(x).get(b.uid, 0)
                        if count:
                            row[index[x.uid]] += count
                    for y in by_prev.get(b.uid, []):
                        count = self._recv_of(y).get(a.uid, 0)
                        if count:
                            row[index[y.uid]] -= count
                    if any(row):
                        rows.append(row)

        if not rows:
            # No constraints at all: determined only in the trivial
            # single-class case.
            if len(nodes) == 1:
                basis = [[Fraction(1)]]
            else:
                return None
        else:
            basis = kernel_basis(rows)
        if len(basis) != 1:
            return None
        z = primitive_integer_vector(basis[0])
        if any(x <= 0 for x in z):
            return None
        mults: Dict[Any, int] = {}
        for node in grouped.get(0, []):
            if node.uid not in index:
                continue
            label = node.label
            assert isinstance(label, tuple) and label[0] == "input"
            mults[label[1]] = z[index[node.uid]]
        return mults

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #

    def output(self, state: State) -> Any:
        _input, root = state
        mults = self._solve(root)
        if mults is None:
            return None
        if self.knowledge is Knowledge.NONE:
            total = sum(mults.values())
            freqs = {
                (w[0] if isinstance(w, tuple) and len(w) == 2 else w): Fraction(m, total)
                for w, m in sorted(mults.items(), key=lambda kv: repr(kv[0]))
            }
            if self.f:
                vector = [w for w, m in sorted(mults.items(), key=lambda kv: repr(kv[0])) for _ in range(m)]
                return self.f(vector)
            return freqs
        if self.knowledge is Knowledge.EXACT_N:
            total = sum(mults.values())
            if self.n % total != 0:
                return None
            k = self.n // total
            exact = {w: k * m for w, m in sorted(mults.items(), key=lambda kv: repr(kv[0]))}
        else:  # LEADER: inputs are (value, is_leader)
            leader_sum = sum(m for w, m in mults.items() if isinstance(w, tuple) and w[1])
            if leader_sum == 0 or any(
                (self.leader_count * m) % leader_sum for m in mults.values()
            ):
                return None
            exact = {}
            for w, m in sorted(mults.items(), key=lambda kv: repr(kv[0])):
                # A value can appear both on leaders and non-leaders: the
                # (value, flag) classes are distinct but the census entry
                # is shared, so multiplicities accumulate.
                value = w[0]
                exact[value] = exact.get(value, 0) + self.leader_count * m // leader_sum
        if self.f:
            vector = [w for w, m in exact.items() for _ in range(m)]
            return self.f(vector)
        return exact
