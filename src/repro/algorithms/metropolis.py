"""Metropolis averaging in symmetric dynamic networks (Section 5 intro).

Each round, every agent broadcasts ``(x, deg)`` — its current estimate and
its number of neighbors this round (available ahead of sending thanks to
outdegree awareness; in a symmetric network outdegree = indegree = degree).
On receipt it moves toward each neighbor with the Metropolis weight
``1 / (1 + max(deg_i, deg_j))``; the resulting update matrix is doubly
stochastic and symmetric, so the average is invariant and, with a finite
dynamic diameter, all estimates converge to it.  Quadratic convergence
holds when every round's graph is connected [10]; the Lazy variant
(halved off-diagonal weights) extends the guarantee to networks that are
only connected over windows [30, 31].

Asynchronous starts are tolerated (a sleeping agent is an isolated vertex
whose estimate stays put); arbitrary initialization is not (the invariant
is the running average).
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.core.agent import OutdegreeAlgorithm

State = Tuple[float]
Message = Tuple[float, int]


class MetropolisAlgorithm(OutdegreeAlgorithm):
    """Metropolis (or Lazy Metropolis) average consensus.

    Must be run on *symmetric* networks — the weight rule is only doubly
    stochastic there.  The executor cannot check this for the outdegree-
    aware model, so harnesses are responsible for the network class (tests
    cover the guarantee on symmetric graphs only).
    """

    def __init__(self, lazy: bool = False):
        self.lazy = lazy

    def initial_state(self, input_value: Union[float, int]) -> State:
        return (float(input_value),)

    def message(self, state: State, outdegree: int) -> Message:
        # outdegree counts the self-loop; neighbors = outdegree - 1.
        return (state[0], outdegree - 1)

    def transition(self, state: State, received: Tuple[Message, ...]) -> State:
        x = state[0]
        # In a symmetric network the indegree equals the outdegree, so the
        # inbox size (self-loop included) reveals this round's degree.
        my_deg = len(received) - 1
        inbox: List[Message] = list(received)
        # Our own message arrived through the self-loop and reads exactly
        # (x, my_deg); remove one copy.  If a neighbor sent an identical
        # pair, removing theirs instead is harmless — its contribution to
        # the update would be weight · (x - x) = 0.
        try:
            inbox.remove((x, my_deg))
        except ValueError:
            pass  # arbitrary initialization; treat everything as neighbors
        scale = 2.0 if self.lazy else 1.0
        new_x = x
        for (xj, degj) in inbox:
            weight = 1.0 / (scale * (1.0 + max(my_deg, degj)))
            new_x += weight * (xj - x)
        return (new_x,)

    def output(self, state: State) -> float:
        return state[0]
