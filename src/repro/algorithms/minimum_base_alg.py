"""Distributed minimum-base construction à la Boldi–Vigna (§3.2, §4.2).

Each agent maintains its in-view ``T_i^t``, growing by one level per round:
the round-``t`` view is a fresh root labelled with the agent's input whose
children are the views received from in-neighbors (self included, through
the self-loop).  Depending on the model, child edges carry extra
decoration:

* outdegree awareness — the sender's current outdegree (σ may depend on
  ``d⁻``, so senders ship it alongside their view);
* output port awareness — the sender's port number for that edge;
* symmetric communications — nothing (plain broadcast).

From its view the agent extracts the candidate base ``B(T_i^t)``: with
``k = ⌊t/2⌋``, two view nodes within the top ``k - 1`` levels are
identified when their depth-``k`` truncations coincide; the identified
classes with the witnesses' child links form a quotient multigraph.  Once
``t`` is large enough (``t ≥ 2(n + D)`` suffices; empirically much less —
the stabilization benchmark measures it) the extraction *is* the minimum
base of the (decorated) network, and stays so forever.

Self-stabilization comes from the *finite-state variant* (pass
``max_view_depth``; see :class:`_ViewStateMixin`): bounding the stored
depth flushes any garbage — corrupted initial views, an asynchronous
start-up transient — out of memory within ``max_view_depth`` rounds,
mirroring the paper's bounded version with its O(D log D) overhead.  The
unbounded version keeps the whole history and is only correct from clean
synchronous starts.  Views are hash-consed (:mod:`repro.graphs.views`),
so each round costs O(n·t) pointer work rather than the exponential
unfolded size.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.agent import BroadcastAlgorithm, OutdegreeAlgorithm, OutputPortAlgorithm
from repro.core.models import CommunicationModel
from repro.graphs.digraph import DiGraph
from repro.graphs.views import View, ViewBuilder, nodes_within_levels

State = Tuple[Any, View]


def extract_base(
    view: View, builder: ViewBuilder, skip_root: bool = False
) -> Optional[DiGraph]:
    """The candidate base ``B(T^t)`` from a depth-``t`` view.

    Returns ``None`` while the view is too shallow or still inconsistent
    (a child class escaping the collected set); both resolve with more
    rounds.  The result is a vertex-valued, edge-colored multigraph whose
    values are the view labels and whose colors are the edge decorations
    (ports / None).

    ``skip_root`` collects witnesses from level 1 on — used by the
    outdegree model, whose *stored* root is unlabeled (the full
    ``(value, outdegree)`` label is only attached when sending, since σ
    learns ``d⁻`` at send time); every vertex still appears at level ≥ 1
    through its self-loop.
    """
    t = view.depth
    k = t // 2
    if k < 1 or (skip_root and k < 2):
        return None
    witnesses = nodes_within_levels(view, max_level=k - 1)
    if skip_root:
        witnesses = [(lv, node) for (lv, node) in witnesses if lv >= 1]
    class_ids = {}
    class_witness: List[View] = []
    for _level, node in witnesses:
        key = builder.truncate(node, k).uid
        if key not in class_ids:
            class_ids[key] = len(class_witness)
            class_witness.append(node)
    specs = []
    for ci, witness in enumerate(class_witness):
        for (color, child) in witness.children:
            child_key = builder.truncate(child, k).uid
            cj = class_ids.get(child_key)
            if cj is None:
                return None
            specs.append((cj, ci, color))
    values = [w.label for w in class_witness]
    return DiGraph(len(class_witness), specs, values=values)


class _ViewStateMixin:
    """Shared init/output for the three view-exchange variants.

    ``max_view_depth`` enables the paper's *finite-state variant* (§3.2):
    stored and sent views are truncated to that many levels.  Any bound
    ``>= 2(n + D) + 2`` preserves correctness, and it buys genuine
    self-stabilization — arbitrarily deep garbage planted in the initial
    views is pushed below the truncation horizon within ``max_view_depth``
    rounds, after which every stored level is authentic.  Without a bound
    the views grow forever (exact semantics, correct from clean or
    asynchronous starts, but garbage of depth ``g`` keeps perturbing the
    depth-based cutoff at every other round).
    """

    def __init__(
        self,
        builder: Optional[ViewBuilder] = None,
        max_view_depth: Optional[int] = None,
    ):
        self.builder = builder if builder is not None else ViewBuilder()
        if max_view_depth is not None and max_view_depth < 2:
            raise ValueError("max_view_depth must be >= 2")
        self.max_view_depth = max_view_depth

    #: Whether base extraction must skip the (unlabeled) root level.
    _skip_root = False

    def initial_state(self, input_value: Any) -> State:
        return (input_value, self.builder.leaf(input_value))

    def _clip(self, view: View) -> View:
        if self.max_view_depth is None:
            return view
        return self.builder.truncate(view, self.max_view_depth)

    def output(self, state: Any) -> Optional[DiGraph]:
        _input, view = state
        return extract_base(view, self.builder, skip_root=self._skip_root)


class OutdegreeViewAlgorithm(_ViewStateMixin, OutdegreeAlgorithm):
    """View exchange under outdegree awareness.

    The paper's §4.2 works on the *double-valued* graph ``G_{v,d⁻}``: the
    outdegree is part of the vertex label, not merely ambient data.  That
    matters — sender-outdegree annotations on view *edges* are too weak:
    two vertices with different outdegrees can have identical annotated
    in-views forever (each sees both annotations, one via its self-loop
    and one from the other), merging fibres that ``G_od`` separates and
    leaving eq. (1) without a well-defined ``b``.

    Since the sending function σ(q, d⁻) learns the outdegree exactly when
    sending, the sender *relabels its root* to ``(value, d⁻)`` in the
    outgoing message; the stored root stays unlabeled (plain value) until
    the next send.  Base extraction therefore skips level 0 — every class
    appears from level 1 on anyway, through the self-loops.
    """

    _skip_root = True

    def message(self, state: State, outdegree: int) -> View:
        input_value, view = state
        return self.builder.node((input_value, outdegree), view.children)

    def transition(self, state: State, received: Tuple[View, ...]) -> State:
        input_value, _old = state
        children = [(None, v) for v in received]
        return (input_value, self._clip(self.builder.node(input_value, children)))


class SymmetricViewAlgorithm(_ViewStateMixin, BroadcastAlgorithm):
    """View exchange by plain broadcast, for symmetric networks."""

    model = CommunicationModel.SYMMETRIC

    def message(self, state: State) -> View:
        return state[1]

    def transition(self, state: State, received: Tuple[View, ...]) -> State:
        input_value, _old = state
        children = [(None, v) for v in received]
        return (input_value, self._clip(self.builder.node(input_value, children)))


class PortViewAlgorithm(_ViewStateMixin, OutputPortAlgorithm):
    """View exchange with output ports: port ℓ ships ``(ℓ, view)``."""

    def messages(self, state: State, outdegree: int) -> Sequence[Tuple[int, View]]:
        return [(port, state[1]) for port in range(outdegree)]

    def transition(self, state: State, received: Tuple[Tuple[int, View], ...]) -> State:
        input_value, _old = state
        children = [(port, v) for (port, v) in received]
        return (input_value, self._clip(self.builder.node(input_value, children)))


def DistributedMinimumBase(
    model: CommunicationModel,
    builder: Optional[ViewBuilder] = None,
    max_view_depth: Optional[int] = None,
):
    """Factory: the view-exchange algorithm for a communication model."""
    if model is CommunicationModel.OUTDEGREE_AWARE:
        return OutdegreeViewAlgorithm(builder, max_view_depth)
    if model is CommunicationModel.SYMMETRIC:
        return SymmetricViewAlgorithm(builder, max_view_depth)
    if model is CommunicationModel.OUTPUT_PORT_AWARE:
        return PortViewAlgorithm(builder, max_view_depth)
    raise ValueError(
        f"no distributed base construction for {model} "
        "(simple broadcast cannot compute the base — Theorem 4.1)"
    )
