"""Multiset recovery in static networks (Corollaries 4.3 and 4.4).

Thin, intention-revealing wrappers over
:func:`~repro.algorithms.frequency_static.StaticFunctionAlgorithm`: when
the network size is known, or when leaders break the symmetry, the fibre
ratios of Theorem 4.1 upgrade to exact multiplicities and every
multiset-based (i.e. symmetric) function becomes computable.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge
from repro.graphs.views import ViewBuilder
from repro.algorithms.frequency_static import StaticFunctionAlgorithm


def known_size_algorithm(
    f: Callable[[List[Any]], Any],
    model: CommunicationModel,
    n: int,
    builder: Optional[ViewBuilder] = None,
):
    """Corollary 4.3: with ``n`` known, compute any multiset-based ``f``."""
    return StaticFunctionAlgorithm(
        f, model, knowledge=Knowledge.EXACT_N, n=n, builder=builder
    )


def leader_algorithm(
    f: Callable[[List[Any]], Any],
    model: CommunicationModel,
    leader_count: int = 1,
    builder: Optional[ViewBuilder] = None,
):
    """Corollary 4.4 / eq. (5): with ℓ known leaders, compute any
    multiset-based ``f``.  Inputs must be ``(value, is_leader)`` pairs with
    exactly ``leader_count`` leaders."""
    return StaticFunctionAlgorithm(
        f,
        model,
        knowledge=Knowledge.LEADER,
        leader_count=leader_count,
        builder=builder,
    )
