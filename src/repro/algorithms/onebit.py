"""The one-bit broadcast scenario pack (Blanc/Di Luna/Viglietta).

Two deliberately simple probes for the fifth communication model — one
bit per round, cast identically to every recipient:

* :class:`OneBitFloodingAlgorithm` — OR-flooding.  Each agent broadcasts
  the disjunction of every bit it has heard (starting from its input
  bit); states grow monotonically, so after at most the diameter every
  agent holds the OR of the input vector.  Succeeds on *every* strongly
  connected network: the positive probe of the scenario grid.
* :class:`OneBitCensusAlgorithm` — indegree census.  Each agent
  broadcasts its input bit every round and records, from the delivered
  multiset, ``(how many bits arrived, how many were 1)``.  On a complete
  graph with self-loops the indegree is ``n``, so the census *is* the
  exact count of ones — anonymous counting over one-bit channels.  On
  anything sparser the census is local and the probe deterministically
  fails: the negative probe, showing that one bit per round does not
  carry a global multiset through a bottleneck.

Both are finite-state, order-invariant in the received tuple (anonymity's
demand), and run unchanged on static and dynamic networks.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.core.agent import OneBitAlgorithm


class OneBitFloodingAlgorithm(OneBitAlgorithm):
    """OR-flooding: broadcast the known disjunction, absorb what arrives.

    State is the known bit; the output is that bit.  Computes the OR —
    and by relabeling, any predicate of the input support reachable
    through monotone one-bit flooding — within diameter-many rounds on
    any strongly connected network.
    """

    def initial_state(self, input_value: Any) -> int:
        return 1 if input_value else 0

    def bit(self, state: int, outdegree: int) -> int:
        return state

    def transition(self, state: int, received: Tuple[int, ...]) -> int:
        if state:
            return 1
        for b in received:
            if b:
                return 1
        return 0

    def output(self, state: int) -> int:
        return state


class OneBitCensusAlgorithm(OneBitAlgorithm):
    """Indegree census: broadcast the input bit, tally what arrives.

    State is ``(input_bit, total_received, ones_received)``; the output is
    ``(total_received, ones_received)`` — the multiset of in-neighbour
    input bits as a count pair.  Exact anonymous counting of the ones
    precisely when every agent hears everyone, i.e. on complete graphs
    with self-loops; elsewhere the tally is the local in-neighbourhood's
    and the scenario harness records the (expected) failure.
    """

    def initial_state(self, input_value: Any) -> Tuple[int, int, int]:
        return (1 if input_value else 0, 0, 0)

    def bit(self, state: Tuple[int, int, int], outdegree: int) -> int:
        return state[0]

    def transition(
        self, state: Tuple[int, int, int], received: Tuple[int, ...]
    ) -> Tuple[int, int, int]:
        ones = 0
        for b in received:
            if b:
                ones += 1
        return (state[0], len(received), ones)

    def output(self, state: Tuple[int, int, int]) -> Tuple[int, int]:
        return (state[1], state[2])
