"""The Push-Sum algorithm (Section 5.1–5.3, Theorem 5.2).

Each agent maintains ``y`` and ``z``, initialized to its input pair
``(v, w)`` with ``w > 0``; every round it splits both equally over its
out-edges (self-loop included — no mass is ever lost, which is what makes
the update matrix column-stochastic), sums what it receives, and outputs
``x = y / z``.  In any dynamic network with finite dynamic diameter ``D``
all outputs converge to the quot-sum ``(Σ v_k)/(Σ w_k)``, within ε in
``O(n² D log(1/ε))`` rounds; with ``w ≡ 1`` this is the average.

Push-Sum needs outdegree awareness (the sender divides by ``d⁻``), uses no
persistent memory beyond ``(y, z)``, tolerates asynchronous starts, but is
not self-stabilizing (the invariant ``Σ y`` = ``Σ v`` lives in the
initialization).
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.core.agent import OutdegreeAlgorithm

State = Tuple[float, float]
Message = Tuple[float, float]


class PushSumAlgorithm(OutdegreeAlgorithm):
    """Push-Sum for the quot-sum; inputs are ``v`` or ``(v, w)`` pairs.

    A bare numeric input ``v`` is treated as ``(v, 1)``, so the default
    instance computes the average of the inputs.
    """

    def initial_state(self, input_value: Union[float, Tuple[float, float]]) -> State:
        if isinstance(input_value, tuple):
            v, w = input_value
        else:
            v, w = float(input_value), 1.0
        if w <= 0:
            raise ValueError(f"push-sum weight must be positive, got {w}")
        return (float(v), float(w))

    def message(self, state: State, outdegree: int) -> Message:
        y, z = state
        return (y / outdegree, z / outdegree)

    def transition(self, state: State, received: Tuple[Message, ...]) -> State:
        # The agent's own share arrives through its self-loop, so the new
        # state is exactly the sum of the received shares (eqs. (6)-(7)).
        y = sum(m[0] for m in received)
        z = sum(m[1] for m in received)
        return (y, z)

    def output(self, state: State) -> float:
        y, z = state
        return y / z


VectorState = Tuple[Tuple[float, ...], float]


class VectorPushSumAlgorithm(OutdegreeAlgorithm):
    """Push-Sum over ``X = ℝᵏ`` (§2.3's Euclidean-metric setting).

    Inputs are length-``k`` sequences; each agent's estimate converges in
    ``δ2`` to the componentwise average — e.g. positions of a swarm
    converging on their barycenter.  The scalar analysis of Theorem 5.2
    applies per coordinate (the same matrices act on every component).
    """

    def initial_state(self, input_value) -> VectorState:
        return (tuple(float(x) for x in input_value), 1.0)

    def message(self, state: VectorState, outdegree: int) -> VectorState:
        y, z = state
        return (tuple(x / outdegree for x in y), z / outdegree)

    def transition(self, state: VectorState, received: Tuple[VectorState, ...]) -> VectorState:
        if not received:
            return state
        k = len(received[0][0])
        y = tuple(sum(m[0][i] for m in received) for i in range(k))
        z = sum(m[1] for m in received)
        return (y, z)

    def output(self, state: VectorState) -> Tuple[float, ...]:
        y, z = state
        return tuple(x / z for x in y)
