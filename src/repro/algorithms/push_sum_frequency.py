"""Push-Sum for frequency / multiset computation (Algorithm 1, §5.4–5.5).

One Push-Sum instance runs per input value ω, started by the agents whose
input is ω; everyone else joins the instance upon first hearing of ω.  The
paper argues correctness by reduction to Push-Sum under *asynchronous
starts*: a not-yet-aware agent is a sleeping, isolated vertex.  We
implement exactly that semantics:

* shares from a sender that does not yet know ω are ignored (in the masked
  dynamic graph of §5.3 the edge from a sleeping vertex does not exist);
* when an agent first hears of ω it *joins*: its new ``z[ω]`` is its
  retained unit (1 — or, in the ℓ-leader variant of §5.5, 1 for leaders
  and 0 otherwise) plus the shares received from aware senders.

(The pseudocode of Algorithm 1 instead patches a missing entry with
``z = 1`` on the receiver side every round; on directed topologies that
re-injects a sleeping agent's unit once per round per aware receiver and
the totals drift.  The join semantics above is the one that matches the
asynchronous-start execution invoked by the paper's correctness argument;
both coincide on the first contact round.)

With this accounting, for every value ω, ``Σ_i y_i[ω]`` is the
multiplicity of ω and ``Σ_i z_i[ω]`` converges to ``n`` (or ℓ, with
leaders), so each ``x_i[ω] = y_i[ω]/z_i[ω]`` converges to the frequency
``ν_v(ω)`` (resp. multiplicity/ℓ).  When a bound ``N ≥ n`` is known,
rounding to the nearest rational in ``ℚ_N`` makes the computation exact in
finite time (Corollary 5.3); with ``n`` known or ℓ leaders the multiset is
recovered (Corollary 5.4, §5.5); with no knowledge the normalized
estimates compute any function continuous in frequency (Corollary 5.5).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.agent import OutdegreeAlgorithm
from repro.algorithms.rational import nearest_frequency
from repro.functions.frequency import FrequencyFunction

Shares = Dict[Any, Tuple[float, float]]
State = Tuple[float, Dict[Any, Tuple[float, float]]]


class PushSumFrequencyAlgorithm(OutdegreeAlgorithm):
    """Per-value Push-Sum computing frequencies, exact frequencies, or multiplicities.

    Parameters
    ----------
    mode:
        ``"frequencies"`` — output the normalized estimate ``x̂`` as a
        sorted-key dict of floats (Corollary 5.5 regime; no knowledge).
        ``"exact"`` — round each estimate to the nearest rational in
        ``ℚ_N`` (requires ``n_bound``); output a
        :class:`~repro.functions.frequency.FrequencyFunction` once the
        rounded values form one, else ``None`` (Corollary 5.3).
        ``"multiset"`` — output the integer multiplicity dict (requires
        ``n`` or ``leader_count``; Corollary 5.4 / §5.5).
    f:
        Optional post-processing: in ``frequencies`` mode called on the
        float dict; in ``exact`` mode on the canonical vector ``⟨ν⟩``; in
        ``multiset`` mode on the realized input vector.
    leader_count:
        Enables the ℓ-leader variant; inputs must then be
        ``(value, is_leader)`` pairs.
    """

    def __init__(
        self,
        mode: str = "frequencies",
        f: Optional[Callable[..., Any]] = None,
        n_bound: Optional[int] = None,
        n: Optional[int] = None,
        leader_count: Optional[int] = None,
    ):
        if mode not in ("frequencies", "exact", "multiset"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "exact" and n_bound is None:
            raise ValueError("exact mode needs n_bound (Corollary 5.3)")
        if mode == "multiset" and n is None and leader_count is None:
            raise ValueError("multiset mode needs n or leader_count")
        self.mode = mode
        self.f = f
        self.n_bound = n_bound
        self.n = n
        self.leader_count = leader_count

    # ------------------------------------------------------------------ #

    def initial_state(self, input_value: Any) -> State:
        if self.leader_count is not None:
            value, is_leader = input_value
            unit = 1.0 if is_leader else 0.0
        else:
            value, unit = input_value, 1.0
        return (unit, {value: (1.0, unit)})

    def message(self, state: State, outdegree: int) -> Shares:
        _unit, table = state
        return {w: (y / outdegree, z / outdegree) for w, (y, z) in table.items()}

    def transition(self, state: State, received: Tuple[Shares, ...]) -> State:
        unit, table = state
        support = set(table)
        for shares in received:
            support.update(shares)
        new_table: Dict[Any, Tuple[float, float]] = {}
        for w in support:
            y = sum(shares[w][0] for shares in received if w in shares)
            z = sum(shares[w][1] for shares in received if w in shares)
            if w not in table:
                # Joining the ω-instance: the retained unit enters
                # circulation exactly once (asynchronous start).
                z += unit
            new_table[w] = (y, z)
        return (unit, new_table)

    # ------------------------------------------------------------------ #

    def estimates(self, state: State) -> Dict[Any, float]:
        """Raw ``x_i[ω] = y/z`` (``inf`` when ``z`` is still zero)."""
        _unit, table = state
        out = {}
        for w, (y, z) in sorted(table.items(), key=lambda kv: repr(kv[0])):
            out[w] = (y / z) if z > 0 else float("inf")
        return out

    def output(self, state: State) -> Any:
        x = self.estimates(state)
        if self.mode == "frequencies":
            finite = all(v != float("inf") for v in x.values())
            total = sum(x.values()) if finite else 0.0
            if not finite or total <= 0:
                return None
            normalized = {w: v / total for w, v in x.items()}
            return self.f(normalized) if self.f else normalized
        if self.mode == "exact":
            rounded: Dict[Any, Fraction] = {}
            for w, v in x.items():
                if v == float("inf"):
                    return None
                rounded[w] = nearest_frequency(v, self.n_bound)
            if sum(rounded.values(), Fraction(0)) != 1:
                return None
            nu = FrequencyFunction(rounded)
            return self.f(nu.canonical_vector()) if self.f else nu
        # multiset mode
        scale = self.leader_count if self.leader_count is not None else self.n
        mults: Dict[Any, int] = {}
        for w, v in x.items():
            if v == float("inf"):
                return None
            m = round(scale * v)
            if m < 0:
                return None
            if m > 0:
                mults[w] = m
        if not mults:
            return None
        mults = dict(sorted(mults.items(), key=lambda kv: repr(kv[0])))
        if self.f:
            vector = [w for w, m in mults.items() for _ in range(m)]
            return self.f(vector)
        return mults
