"""Best rational approximation with bounded denominator (Corollary 5.3).

Exact frequencies live in ``ℚ_N = {p/q : 0 <= p <= q <= N}``; two distinct
members are at least ``1/N²`` apart, so once Push-Sum's estimate is within
``1/(2N²)`` of the truth, rounding to the nearest member of ``ℚ_N``
recovers the frequency exactly.  The rounding is the classic continued-
fraction / Stern–Brocot best-approximation algorithm, implemented here
from scratch (exactly, on ``Fraction`` inputs derived from the float).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union


def nearest_rational(x: Union[float, Fraction], max_denominator: int) -> Fraction:
    """The fraction with denominator ≤ ``max_denominator`` closest to ``x``.

    Ties are broken toward the approximant produced by the continued-
    fraction recursion (the semiconvergent), matching the standard
    best-approximation construction.
    """
    if max_denominator < 1:
        raise ValueError("max_denominator must be >= 1")
    target = Fraction(x) if not isinstance(x, Fraction) else x
    if target.denominator <= max_denominator:
        return target

    # Continued-fraction expansion with convergents p/q; stop before the
    # denominator bound is exceeded, then consider the best semiconvergent.
    p0, q0 = 0, 1
    p1, q1 = 1, 0
    n, d = target.numerator, target.denominator
    while True:
        a = n // d
        p2 = a * p1 + p0
        q2 = a * q1 + q0
        if q2 > max_denominator:
            break
        p0, q0, p1, q1 = p1, q1, p2, q2
        n, d = d, n - a * d
        if d == 0:
            return Fraction(p1, q1)

    # Largest k with q0 + k·q1 <= bound gives the best semiconvergent.
    k = (max_denominator - q0) // q1
    semi = Fraction(p0 + k * p1, q0 + k * q1)
    conv = Fraction(p1, q1)
    if abs(semi - target) < abs(conv - target):
        return semi
    return conv


def nearest_frequency(x: float, n_bound: int) -> Fraction:
    """Nearest member of ``ℚ_N`` (clamped to [0, 1]) — Corollary 5.3's rounding."""
    clamped = min(1.0, max(0.0, x))
    return nearest_rational(clamped, n_bound)
