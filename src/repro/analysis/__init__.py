"""Experiment harnesses: the lifting-lemma machinery run as experiments
(:mod:`.impossibility`), cell-by-cell reproduction of Tables 1 and 2
(:mod:`.tables`), and plain-text table rendering (:mod:`.reporting`)."""

from repro.analysis.bandwidth import bandwidth_curve, bandwidth_sweep
from repro.analysis.impossibility import (
    CollapseOutcome,
    demonstrate_collapse,
    frequency_counterexample,
    outputs_match,
    verify_lifting_on_outputs,
)
from repro.analysis.certificate import certificate_json, reproduction_certificate
from repro.analysis.rates import ProofCheck, sweep_proof_invariants
from repro.analysis.reporting import render_table
from repro.analysis.tables import (
    CellResult,
    run_dynamic_cell,
    run_static_cell,
    reproduce_table1,
    reproduce_table2,
)

__all__ = [
    "CellResult",
    "CollapseOutcome",
    "ProofCheck",
    "bandwidth_curve",
    "bandwidth_sweep",
    "certificate_json",
    "reproduction_certificate",
    "demonstrate_collapse",
    "frequency_counterexample",
    "outputs_match",
    "render_table",
    "reproduce_table1",
    "reproduce_table2",
    "run_dynamic_cell",
    "run_static_cell",
    "sweep_proof_invariants",
    "verify_lifting_on_outputs",
]
