"""Experiment harnesses: the lifting-lemma machinery run as experiments
(:mod:`.impossibility`), cell-by-cell reproduction of Tables 1 and 2
(:mod:`.tables`), and plain-text table rendering (:mod:`.reporting`)."""

from repro.analysis.bandwidth import bandwidth_curve, bandwidth_sweep, traced_bytes_curve
from repro.analysis.impossibility import (
    CollapseOutcome,
    demonstrate_collapse,
    frequency_counterexample,
    outputs_match,
    verify_counterexample,
    verify_lifting_on_outputs,
)
from repro.analysis.certificate import (
    certificate_json,
    parse_certificate,
    reproduction_certificate,
    verify_certificate,
)
from repro.analysis.profiling import Profiler, profile_batch, profile_report
from repro.analysis.provenance import (
    Manifest,
    current_backend,
    graph_fingerprint,
    network_fingerprint,
)
from repro.analysis.rates import ProofCheck, sweep_proof_invariants
from repro.analysis.reporting import metrics_table, render_table
from repro.analysis.tables import (
    CellResult,
    run_dynamic_cell,
    run_static_cell,
    reproduce_table1,
    reproduce_table2,
)

__all__ = [
    "CellResult",
    "CollapseOutcome",
    "Manifest",
    "Profiler",
    "ProofCheck",
    "bandwidth_curve",
    "bandwidth_sweep",
    "certificate_json",
    "current_backend",
    "demonstrate_collapse",
    "frequency_counterexample",
    "graph_fingerprint",
    "metrics_table",
    "network_fingerprint",
    "outputs_match",
    "parse_certificate",
    "profile_batch",
    "profile_report",
    "render_table",
    "reproduce_table1",
    "reproduce_table2",
    "reproduction_certificate",
    "run_dynamic_cell",
    "run_static_cell",
    "sweep_proof_invariants",
    "traced_bytes_curve",
    "verify_certificate",
    "verify_counterexample",
    "verify_lifting_on_outputs",
]
