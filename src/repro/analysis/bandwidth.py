"""Bandwidth accounting: how big are the messages, really?

The paper repeatedly trades *what* is computable against *what it costs*:
Push-Sum uses a constant number of reals per known value; the
Boldi–Vigna views grow linearly (as DAGs) per round; Di Luna–Viglietta's
history trees use "an infinite number of states and an infinite
bandwidth in each of its executions".  This module measures message
sizes of actual executions so those statements become curves.

Sizes are in abstract *units*: every atomic payload (number, string,
boolean, ``None``) costs 1, containers cost the sum of their parts, and
hash-consed :class:`~repro.graphs.views.View` DAGs cost their number of
*distinct* nodes plus edges — the honest wire size under structure
sharing (each interned node transmitted once).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.agent import (
    BroadcastAlgorithm,
    OneBitAlgorithm,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
)
from repro.core.execution import Execution
from repro.graphs.views import View


#: Exact types whose payloads are atomic by definition — the overwhelming
#: majority of real messages (Push-Sum reals, gossip scalars).  Subclasses
#: fall through to the structural walk, which prices them identically.
_ATOMIC_TYPES = frozenset({int, float, bool, str, bytes, type(None)})


def payload_units(message: Any) -> int:
    """Abstract size of one message."""
    if type(message) in _ATOMIC_TYPES:
        return 1
    seen_views: set = set()

    def measure(obj: Any) -> int:
        if isinstance(obj, View):
            return _view_units(obj, seen_views)
        if isinstance(obj, dict):
            return sum(measure(k) + measure(v) for k, v in obj.items())
        if isinstance(obj, (list, tuple, set, frozenset)):
            return sum(measure(x) for x in obj)
        return 1

    return measure(message)


def _view_units(view: View, seen: set) -> int:
    """Distinct nodes + edges reachable from ``view`` (shared across one
    message: a node referenced twice is shipped once)."""
    units = 0
    stack = [view]
    while stack:
        node = stack.pop()
        if node.uid in seen:
            continue
        seen.add(node.uid)
        units += 1 + len(node.children)  # the node + its child references
        for (_color, child) in node.children:
            stack.append(child)
    return units


def max_message_units(execution: Execution) -> int:
    """The largest message any agent would send from the current states."""
    algorithm = execution.algorithm
    g = execution.network.graph_at(max(execution.round_number, 1))
    worst = 0
    for v in range(execution.n):
        state = execution.states[v]
        if isinstance(algorithm, OutputPortAlgorithm):
            msgs = algorithm.messages(state, g.outdegree(v))
            worst = max(worst, max(payload_units(m) for m in msgs))
        elif isinstance(algorithm, OneBitAlgorithm):
            worst = max(worst, 1)  # one bit per round, by the model
        elif isinstance(algorithm, OutdegreeAlgorithm):
            worst = max(worst, payload_units(algorithm.message(state, g.outdegree(v))))
        elif isinstance(algorithm, BroadcastAlgorithm):
            worst = max(worst, payload_units(algorithm.message(state)))
    return worst


class _WouldSendObserver:
    """Round hook computing, after each round, the largest message any
    agent *would* send from its new state (legacy ``bandwidth_curve``
    semantics: post-round states, the just-delivered round's outdegrees)."""

    def __init__(self) -> None:
        self.curve: List[int] = []

    def on_round(self, record) -> None:
        algorithm = record.algorithm
        degrees = record.plan.outdegrees
        worst = 0
        if isinstance(algorithm, OutputPortAlgorithm):
            for state, d in zip(record.states, degrees):
                msgs = algorithm.messages(state, d)
                worst = max(worst, max(payload_units(m) for m in msgs))
        elif isinstance(algorithm, OneBitAlgorithm):
            worst = max(worst, 1)  # one bit per round, by the model
        elif isinstance(algorithm, OutdegreeAlgorithm):
            for state, d in zip(record.states, degrees):
                worst = max(worst, payload_units(algorithm.message(state, d)))
        elif isinstance(algorithm, BroadcastAlgorithm):
            for state in record.states:
                worst = max(worst, payload_units(algorithm.message(state)))
        self.curve.append(worst)


def bandwidth_curve(execution: Execution, rounds: int) -> List[int]:
    """Per-round worst-case message size while running ``execution``.

    Implemented as a round-level observer on the engine's
    instrumentation layer: the hook rides along the execution instead of
    re-deriving the topology after every step.
    """
    observer = _WouldSendObserver()
    execution.attach(observer)
    try:
        execution.run(rounds)
    finally:
        execution.detach(observer)
    return observer.curve


def traced_bytes_curve(execution: Execution, rounds: int) -> List[Tuple[int, int]]:
    """Per-round ``(bytes_delivered, bytes_peak)`` while running ``execution``.

    Rides the engine's :class:`~repro.core.engine.trace.Tracer`, whose
    byte accounting is :func:`payload_units` applied to every *delivered*
    message — the property suite pins this curve to the independent
    observer-side accounting of :func:`bandwidth_curve`/:class:`BandwidthObserver`,
    so the two code paths cannot drift apart silently.
    """
    from repro.core.engine.trace import Tracer

    tracer = Tracer(residuals=False)
    execution.attach(tracer)
    try:
        execution.run(rounds)
    finally:
        execution.detach(tracer)
    return [
        (e.fields["bytes_delivered"], e.fields["bytes_peak"])
        for e in tracer.round_events()
    ]


def _bandwidth_task(spec) -> List[int]:
    from repro.core.engine.quotient import quotient_enabled_by_env

    algorithm_factory, network_factory, inputs, rounds = spec[:4]
    quotient = spec[4] if len(spec) > 4 else None
    if quotient is None:
        quotient = quotient_enabled_by_env()
    execution = Execution(
        algorithm_factory(),
        network_factory(),
        inputs=list(inputs),
        quotient=quotient,
    )
    return bandwidth_curve(execution, rounds)


def bandwidth_sweep(
    specs, parallel: bool = False, workers=None, quotient=None
) -> List[List[int]]:
    """Bandwidth curves for a grid of executions, in spec order.

    ``specs`` is a sequence of
    ``(algorithm_factory, network_factory, inputs, rounds)`` tuples —
    factories, so every run gets fresh algorithm state and the specs
    stay cheap to ship to pool workers.  The runs are independent, so
    ``parallel=True`` fans them across a process pool
    (:func:`repro.core.engine.parallel.parallel_map`).

    ``quotient=True`` runs each execution quotient-accelerated
    (:class:`~repro.core.engine.quotient.QuotientExecution`); ``None``
    defers to ``REPRO_QUOTIENT``.  Worst-case message size is a per-round
    maximum over states, and the fibres cover every base class, so
    base-run curves equal full-run curves exactly.
    """
    specs = [tuple(s) + (quotient,) for s in specs]
    if parallel:
        from repro.core.engine.parallel import parallel_map

        return parallel_map(_bandwidth_task, specs, workers=workers)
    return [_bandwidth_task(s) for s in specs]
