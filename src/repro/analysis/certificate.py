"""Machine-readable reproduction certificates, with provenance.

``python -m repro --json`` (or :func:`reproduction_certificate` directly)
emits a JSON document recording, for every cell of Tables 1 and 2, the
measured function class, the paper's claim, the probe details, the cell's
provenance manifest (seed, network fingerprint, model, help level, engine
generation), and the overall verdict — the artifact a CI pipeline
archives to prove the reproduction still holds.

The document is *round-trippable and re-verifiable*: :func:`parse_certificate`
reads the JSON back (validating its shape), and :func:`verify_certificate`
independently re-derives every cell's expected class from
:mod:`repro.core.computability`, recomputes each consistency flag and the
summary, and checks the manifests — so an archived certificate can be
audited without trusting the process that wrote it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.analysis.provenance import ENGINE_VERSION, Manifest
from repro.analysis.tables import (
    CellResult,
    cell_to_payload,
    reproduce_table1,
    reproduce_table2,
)
from repro.core.computability import computable_class
from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge

_REQUIRED_KEYS = ("paper", "parameters", "manifest", "table1", "table2", "summary")
_REQUIRED_CELL_KEYS = (
    "model", "knowledge", "dynamic", "measured_class", "paper_class",
    "open_question", "consistent", "details", "manifest",
)

#: Cell records in certificates are exactly the store's cell payloads, so
#: a certificate assembled from a warm store is byte-identical to one
#: computed from scratch.
_cell_record = cell_to_payload


def reproduction_certificate(
    n: int = 6,
    seed: int = 0,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> Dict[str, Any]:
    """Run both tables and assemble the certificate document.

    ``parallel``/``workers`` follow the :func:`~repro.analysis.tables.reproduce_table1`
    contract (``None`` defers to ``REPRO_PARALLEL=1``); the backend that
    actually drove the run is recorded on the document-level manifest,
    while the per-cell manifests stay backend-free (and therefore
    bit-identical across backends).  ``store`` follows the same contract
    as the table functions: individual cells are served from the durable
    result store when warm and persisted when cold.  ``quotient`` follows
    the tables' contract too (``None`` defers to ``REPRO_QUOTIENT``);
    quotient and direct cells are byte-identical, so it never appears in
    the document itself.  ``vector`` works the same way for the
    vectorized numpy backend (``None`` defers to ``REPRO_VECTOR``).
    """
    from repro.core.engine.batch import parallel_enabled_by_env

    resolved_parallel = parallel_enabled_by_env() if parallel is None else parallel
    table1 = [
        _cell_record(r)
        for r in reproduce_table1(
            n=n,
            seed=seed,
            parallel=parallel,
            workers=workers,
            store=store,
            quotient=quotient,
            vector=vector,
        )
    ]
    table2 = [
        _cell_record(r)
        for r in reproduce_table2(
            n=min(n, 6),
            seed=seed,
            parallel=parallel,
            workers=workers,
            store=store,
            quotient=quotient,
            vector=vector,
        )
    ]
    all_cells = table1 + table2
    manifest = Manifest(
        kind="certificate",
        seed=seed,
        n=n,
        backend="parallel" if resolved_parallel else "sequential",
        extra={} if workers is None else {"workers": workers},
    )
    return {
        "paper": (
            "Know your audience: Communication model and computability in "
            "anonymous networks (Charron-Bost & Lambein-Monette, PODC 2024)"
        ),
        "parameters": {"n": n, "seed": seed},
        "manifest": manifest.to_dict(),
        "table1": table1,
        "table2": table2,
        "summary": {
            "cells": len(all_cells),
            "consistent": sum(c["consistent"] for c in all_cells),
            "open_cells_demonstrated": sum(
                1 for c in all_cells if c["open_question"] and c["measured_class"]
            ),
            "verdict": "PASS" if all(c["consistent"] for c in all_cells) else "FAIL",
        },
    }


def certificate_json(
    n: int = 6,
    seed: int = 0,
    indent: int = 2,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    store=None,
) -> str:
    return json.dumps(
        reproduction_certificate(
            n=n, seed=seed, parallel=parallel, workers=workers, store=store
        ),
        indent=indent,
    )


def write_certificate(path, doc: Dict[str, Any], indent: int = 2) -> None:
    """Write a certificate document to ``path`` atomically.

    A crash mid-write leaves either the previous document or the new one,
    never a torn file — CI archives these, so a half-written artifact must
    be impossible.
    """
    from repro.store.atomic import atomic_write_text

    atomic_write_text(path, json.dumps(doc, indent=indent) + "\n")


# ---------------------------------------------------------------------- #
# round trip: parse and re-verify
# ---------------------------------------------------------------------- #

def parse_certificate(text: str) -> Dict[str, Any]:
    """Parse certificate JSON, validating the document's shape.

    Raises ``ValueError`` on a document that is not a certificate (missing
    sections or malformed cells); returns the parsed dict otherwise.
    """
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError("certificate must be a JSON object")
    missing = [k for k in _REQUIRED_KEYS if k not in doc]
    if missing:
        raise ValueError(f"certificate is missing sections: {missing}")
    for table in ("table1", "table2"):
        for i, cell in enumerate(doc[table]):
            absent = [k for k in _REQUIRED_CELL_KEYS if k not in cell]
            if absent:
                raise ValueError(f"{table}[{i}] is missing keys: {absent}")
    return doc


def verify_certificate(doc: Dict[str, Any]) -> List[str]:
    """Independently re-verify a parsed certificate; returns problems.

    An empty list means the document is internally sound: every cell's
    paper-side claim matches :func:`repro.core.computability.computable_class`,
    every consistency flag re-derives from the recorded measurement, the
    summary recounts, and every cell carries a manifest whose parameters
    match the document's.  (This checks the *document*, not the world —
    rerunning the manifests' parameters and comparing is the second half
    of an audit, exercised by the round-trip tests.)
    """
    problems: List[str] = []
    params = doc["parameters"]
    for table, dynamic in (("table1", False), ("table2", True)):
        for cell in doc[table]:
            where = f"{table}[{cell['model']}/{cell['knowledge']}]"
            try:
                model = CommunicationModel(cell["model"])
                knowledge = Knowledge(cell["knowledge"])
            except ValueError as exc:
                problems.append(f"{where}: unknown enum value ({exc})")
                continue
            if cell["dynamic"] is not dynamic:
                problems.append(f"{where}: dynamic flag contradicts its table")
            expected = computable_class(model, knowledge, dynamic=dynamic)
            if cell["paper_class"] != expected.label():
                problems.append(
                    f"{where}: paper_class {cell['paper_class']!r} != "
                    f"{expected.label()!r} from computability tables"
                )
            if cell["open_question"] is not expected.open_question:
                problems.append(f"{where}: open_question flag is wrong")
            if expected.open_question:
                rederived = cell["measured_class"] is not None
            else:
                rederived = cell["measured_class"] == expected.function_class.label
            if cell["consistent"] is not rederived:
                problems.append(
                    f"{where}: consistent={cell['consistent']} does not re-derive "
                    f"from measured_class={cell['measured_class']!r}"
                )
            manifest = cell.get("manifest")
            if manifest is None:
                problems.append(f"{where}: cell carries no provenance manifest")
            else:
                if manifest.get("engine_version") != ENGINE_VERSION:
                    problems.append(f"{where}: manifest engine_version mismatch")
                if manifest.get("seed") != params["seed"]:
                    problems.append(f"{where}: manifest seed != parameters.seed")
                if not manifest.get("graph_hash"):
                    problems.append(f"{where}: manifest has no network fingerprint")
                if manifest.get("model") != cell["model"] or (
                    manifest.get("knowledge") != cell["knowledge"]
                ):
                    problems.append(f"{where}: manifest model/knowledge mismatch")

    cells = doc["table1"] + doc["table2"]
    summary = doc["summary"]
    recount = {
        "cells": len(cells),
        "consistent": sum(c["consistent"] for c in cells),
        "open_cells_demonstrated": sum(
            1 for c in cells if c["open_question"] and c["measured_class"]
        ),
        "verdict": "PASS" if all(c["consistent"] for c in cells) else "FAIL",
    }
    for key, value in recount.items():
        if summary.get(key) != value:
            problems.append(f"summary.{key} = {summary.get(key)!r}, recount says {value!r}")
    top = doc.get("manifest") or {}
    if top.get("kind") != "certificate":
        problems.append("document manifest missing or not kind='certificate'")
    elif top.get("backend") not in ("sequential", "parallel"):
        problems.append("document manifest does not record its backend")
    return problems
