"""Machine-readable reproduction certificates.

``python -m repro --json`` (or :func:`reproduction_certificate` directly)
emits a JSON document recording, for every cell of Tables 1 and 2, the
measured function class, the paper's claim, the probe details, and the
overall verdict — the artifact a CI pipeline archives to prove the
reproduction still holds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.tables import CellResult, reproduce_table1, reproduce_table2


def _cell_record(result: CellResult) -> Dict[str, Any]:
    return {
        "model": result.model.value,
        "knowledge": result.knowledge.value,
        "dynamic": result.dynamic,
        "measured_class": None if result.measured is None else result.measured.label,
        "paper_class": result.expected.label(),
        "paper_note": result.expected.note,
        "open_question": result.expected.open_question,
        "consistent": result.consistent,
        "details": list(result.details),
    }


def reproduction_certificate(n: int = 6, seed: int = 0) -> Dict[str, Any]:
    """Run both tables and assemble the certificate document."""
    table1 = [_cell_record(r) for r in reproduce_table1(n=n, seed=seed)]
    table2 = [_cell_record(r) for r in reproduce_table2(n=min(n, 6), seed=seed)]
    all_cells = table1 + table2
    return {
        "paper": (
            "Know your audience: Communication model and computability in "
            "anonymous networks (Charron-Bost & Lambein-Monette, PODC 2024)"
        ),
        "parameters": {"n": n, "seed": seed},
        "table1": table1,
        "table2": table2,
        "summary": {
            "cells": len(all_cells),
            "consistent": sum(c["consistent"] for c in all_cells),
            "open_cells_demonstrated": sum(
                1 for c in all_cells if c["open_question"] and c["measured_class"]
            ),
            "verdict": "PASS" if all(c["consistent"] for c in all_cells) else "FAIL",
        },
    }


def certificate_json(n: int = 6, seed: int = 0, indent: int = 2) -> str:
    return json.dumps(reproduction_certificate(n=n, seed=seed), indent=indent)
