"""Impossibility experiments — the §4.1 argument, executed.

The proof that a computable function must be frequency-based runs any
candidate algorithm on two rings ``R_n`` and ``R_m`` whose input vectors
are equivalent in frequency, and observes that both executions are lifts
of the *same* execution on the quotient ring ``R_p`` (Lemma 3.1), so the
outputs — hence the limits — coincide.  This module makes each step of
that argument an executable, checkable experiment:

* :func:`verify_lifting_on_outputs` — empirical Lemma 3.1/3.2: outputs of
  the lifted execution are the fibrewise copies of the base execution's;
* :func:`demonstrate_collapse` — the full ``R_n ← R_p → R_m`` diagram for
  one algorithm and one frequency class;
* :func:`frequency_counterexample` — a certificate that a *non*-frequency-
  based function (e.g. the sum) defeats a claimed algorithm: the forced
  common output cannot equal both ``f(v)`` and ``f(w)``.

The same collapse preserves output-port colorings and outdegree
valuations (§4.1), so one harness serves all three enriched models as
well as simple broadcast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.core.agent import Algorithm
from repro.core.execution import Execution
from repro.core.models import CommunicationModel
from repro.graphs.digraph import DiGraph
from repro.fibrations.fibration import ring_collapse
from repro.fibrations.lifting import lift_valuation
from repro.fibrations.morphism import GraphMorphism
from repro.functions.frequency import frequencies_of


def _is_elementwise(x: Any) -> bool:
    """Containers compared element by element (tuples, lists, ndarrays)."""
    if isinstance(x, (list, tuple)):
        return True
    # Duck-typed ndarray (no hard numpy dependency in this layer): sized,
    # indexable, and not one of the atomic/unordered payload types.
    return (
        hasattr(x, "__len__")
        and hasattr(x, "__getitem__")
        and not isinstance(x, (str, bytes, dict, set, frozenset))
    )


#: How deep :func:`outputs_match` descends into nested containers before
#: demanding exact ``repr`` equality.  Deep enough for every output shape
#: the harnesses produce (per-round lists of per-agent dicts of float
#: pairs is depth 3); the cap keeps pathological self-referential inputs
#: from recursing unboundedly.
OUTPUTS_MATCH_MAX_DEPTH = 8


def outputs_match(
    x: Any,
    y: Any,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
    _depth: int = OUTPUTS_MATCH_MAX_DEPTH,
) -> bool:
    """Equality by ``repr``, with a float tolerance.

    Lifted and vectorized executions are mathematically identical but may
    sum floats in a different order, so numeric outputs are compared up
    to rounding: scalars via ``math.isclose``, and container outputs
    elementwise with the same tolerance.  The descent is recursive to
    :data:`OUTPUTS_MATCH_MAX_DEPTH` levels — tuples, lists, and ndarrays
    compare positionally, dicts key-by-key (per-value frequency tables
    are dict outputs) — so nested float structures like the vector
    backend's per-round output sequences compare correctly; only beyond
    the depth cap does the comparison fall back to exact ``repr``
    equality.  (The pre-PR-7 version descended a single level, so a list
    of per-agent float vectors — e.g. nested averages — spuriously
    mismatched on last-ulp differences.)"""
    if repr(x) == repr(y):
        return True
    if _depth > 0:
        if isinstance(x, dict) and isinstance(y, dict):
            if set(x.keys()) != set(y.keys()):
                return False
            return all(
                outputs_match(x[k], y[k], rel_tol=rel_tol, abs_tol=abs_tol, _depth=_depth - 1)
                for k in x
            )
        if _is_elementwise(x) and _is_elementwise(y):
            if len(x) != len(y):
                return False
            return all(
                outputs_match(a, b, rel_tol=rel_tol, abs_tol=abs_tol, _depth=_depth - 1)
                for a, b in zip(x, y)
            )
    try:
        return math.isclose(float(x), float(y), rel_tol=rel_tol, abs_tol=abs_tol)
    except (TypeError, ValueError):
        return False


#: Backwards-compatible private alias (pre-1.1 name).
_outputs_match = outputs_match


def verify_lifting_on_outputs(
    phi: GraphMorphism,
    algorithm_factory: Callable[[], Algorithm],
    base_inputs: Sequence[Any],
    rounds: int,
) -> bool:
    """Empirical Lifting lemma: for ``rounds`` rounds, the execution on the
    total graph with fibrewise-copied inputs produces, at every round, the
    fibrewise copy of the base execution's outputs.

    Fresh algorithm instances are used for both executions (they must be
    the *same* algorithm, i.e. the same factory).
    """
    base_exec = Execution(algorithm_factory(), phi.target_graph, inputs=list(base_inputs))
    total_exec = Execution(
        algorithm_factory(), phi.source_graph, inputs=lift_valuation(phi, base_inputs)
    )
    for _ in range(rounds):
        base_exec.step()
        total_exec.step()
        expected = lift_valuation(phi, base_exec.outputs())
        got = total_exec.outputs()
        if not all(outputs_match(x, y) for x, y in zip(expected, got)):
            return False
    return True


@dataclass
class CollapseOutcome:
    """Result of running one algorithm across a collapse diagram.

    ``outputs_*`` are the final per-agent outputs on each ring; ``lifted``
    records whether both big executions tracked the base fibrewise at
    every round (the Lifting lemma's prediction — always true for a real
    anonymous algorithm).
    """

    base_values: List[Any]
    outputs_base: List[Any]
    outputs_big: List[Any]
    outputs_other: List[Any]
    lifted: bool


def demonstrate_collapse(
    algorithm_factory: Callable[[], Algorithm],
    n: int,
    m: int,
    base_values: Sequence[Any],
    rounds: int,
    model: CommunicationModel = CommunicationModel.SIMPLE_BROADCAST,
) -> CollapseOutcome:
    """Run one algorithm on ``R_n``, ``R_m``, and their common base ``R_p``.

    ``base_values`` (length ``p``, with ``p | n`` and ``p | m``) define the
    inputs; both big rings receive the lifted vectors, which are equivalent
    in frequency by construction.  The collapse carries the decoration the
    model needs (ports / outdegrees), so the experiment is valid in any of
    the four communication models.
    """
    p = len(base_values)
    if n % p or m % p:
        raise ValueError(f"need p | n and p | m, got p={p}, n={n}, m={m}")
    with_ports = model is CommunicationModel.OUTPUT_PORT_AWARE
    phi_n = ring_collapse(n, p, with_ports=with_ports)
    phi_m = ring_collapse(m, p, with_ports=with_ports)
    ok_n = verify_lifting_on_outputs(phi_n, algorithm_factory, base_values, rounds)
    ok_m = verify_lifting_on_outputs(phi_m, algorithm_factory, base_values, rounds)

    base_exec = Execution(
        algorithm_factory(), phi_n.target_graph, inputs=list(base_values)
    ).run(rounds)
    big_exec = Execution(
        algorithm_factory(), phi_n.source_graph, inputs=lift_valuation(phi_n, base_values)
    ).run(rounds)
    other_exec = Execution(
        algorithm_factory(), phi_m.source_graph, inputs=lift_valuation(phi_m, base_values)
    ).run(rounds)
    return CollapseOutcome(
        base_values=list(base_values),
        outputs_base=base_exec.outputs(),
        outputs_big=big_exec.outputs(),
        outputs_other=other_exec.outputs(),
        lifted=ok_n and ok_m,
    )


def two_fibre_cover(z_a: int, z_c: int, value_a: Any = "alpha", value_c: Any = "gamma"):
    """A strongly connected graph with two fibres of chosen cardinalities.

    All graphs from this family share one minimum base (two classes ``A``
    and ``C``: ``A`` hears one ``C``; ``C`` hears one ``A`` and one ``C``),
    so *under simple broadcast* an algorithm behaves identically on all of
    them — yet the value frequencies are ``(z_a, z_c)/(z_a + z_c)``.
    Picking non-proportional cardinality pairs yields the impossibility
    certificates for the broadcast column of Tables 1 and 2:

    * ``(1, 2)`` vs ``(1, 3)`` — frequency-based functions (e.g. the
      average) are not computable, even with a bound on ``n``
      (Hendrickx et al. [20] / Boldi & Vigna [6]);
    * ``(1, 3)`` vs ``(2, 2)`` — not even when ``n`` itself is known
      (footnote a: needs ``n ≥ 4``);
    * ``(1, 2)`` vs ``(1, 3)`` with ``value_a`` marked as the leader —
      not even with one leader (footnote b).

    Construction (``z_c ≥ z_a ≥ 1``): ``C``-vertices form a directed
    cycle; each ``C``-vertex hears one ``A``-vertex (round-robin); the
    first ``z_a`` ``C``-vertices feed back one ``A``-vertex each.
    """
    if not (1 <= z_a <= z_c):
        raise ValueError("need 1 <= z_a <= z_c")
    n = z_a + z_c
    a = list(range(z_a))
    c = list(range(z_a, n))
    specs = []
    for k in range(z_c):
        specs.append((c[k], c[(k + 1) % z_c]))  # C-cycle
        specs.append((a[k % z_a], c[k]))  # each C hears one A
    for k in range(z_a):
        specs.append((c[k], a[k]))  # each A hears one C
    values = [value_a] * z_a + [value_c] * z_c
    return DiGraph(n, sorted(set(specs)), values=values, ensure_self_loops=True)


def frequency_counterexample(
    f: Callable[[Sequence[Any]], Any],
    base_values: Sequence[Any],
    reps_v: int = 1,
    reps_w: int = 2,
) -> Optional[dict]:
    """A certificate that ``f`` cannot be computed (if not frequency-based).

    Builds ``v`` = ``base_values`` repeated ``reps_v`` times and ``w``
    repeated ``reps_w`` times — equivalent in frequency by construction —
    and checks ``f(v) != f(w)``.  Returns the certificate dict (vectors,
    values, ring sizes for the collapse) or ``None`` when ``f`` takes equal
    values (no counterexample from this base).

    The comparison goes through :func:`outputs_match`, not exact ``repr``
    equality: a genuinely frequency-based ``f`` evaluated in floating
    point (e.g. a naive ``sum(v)/len(v)`` average) can differ between
    ``v`` and ``w`` in the last bit purely from summation order, and that
    rounding noise must not be certified as a counterexample."""
    p = len(base_values)
    v = list(base_values) * reps_v
    w = list(base_values) * reps_w
    assert frequencies_of(v) == frequencies_of(w)
    fv, fw = f(v), f(w)
    if outputs_match(fv, fw):
        return None
    from repro.analysis.provenance import Manifest

    return {
        "base_values": list(base_values),
        "v": v,
        "w": w,
        "f(v)": fv,
        "f(w)": fw,
        "n": p * reps_v,
        "m": p * reps_w,
        "manifest": Manifest(
            kind="impossibility",
            n=p * reps_v,
            extra={"m": p * reps_w, "p": p},
        ).to_dict(),
    }


def verify_counterexample(cert: dict) -> List[str]:
    """Re-verify a :func:`frequency_counterexample` certificate; returns
    the list of problems (empty = the certificate is sound).

    The check is independent of how the certificate was produced — and
    deliberately goes through the tolerance-aware :func:`outputs_match`,
    so a certificate whose recorded values differ only by float rounding
    (summation-order noise) is *rejected*, mirroring the emission path.
    """
    problems: List[str] = []
    v, w = cert.get("v"), cert.get("w")
    if not v or not w:
        return ["certificate has no input vectors"]
    if frequencies_of(v) != frequencies_of(w):
        problems.append("v and w are not equivalent in frequency")
    if outputs_match(cert.get("f(v)"), cert.get("f(w)")):
        problems.append("recorded f(v) and f(w) agree up to tolerance — no counterexample")
    if cert.get("n") != len(v) or cert.get("m") != len(w):
        problems.append("recorded ring sizes do not match the vectors")
    manifest = cert.get("manifest")
    if not manifest or manifest.get("kind") != "impossibility":
        problems.append("certificate carries no impossibility manifest")
    return problems
