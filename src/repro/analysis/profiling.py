"""Wall-clock profiling over the engine's trace layer.

Where :mod:`repro.core.engine.trace` answers *what happened* (messages,
bytes, residuals, digests), this module answers *where the time went*:
named spans around plan compilation, stepping, and whole batches, folded
into the same :class:`~repro.core.engine.trace.MetricsRegistry` the
tracer uses.  All wall-clock metrics follow the ``*_seconds`` naming
convention, so they are automatically excluded from every deterministic
identity comparison.

The main entry point is :func:`profile_batch`, a drop-in wrapper around
:func:`repro.core.engine.batch.run_batch` that gives every job a tracer,
times the batch end to end, and returns the merged job-order metrics —
worker-side aggregates included, since the parallel backend ships
tracer recordings back exactly like any other observer state.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.engine.batch import BatchResult, run_batch
from repro.core.engine.trace import (
    MetricsRegistry,
    Tracer,
    attach_tracers,
    merged_metrics,
)


class Profiler:
    """Named wall-clock spans recorded into a metrics registry.

    Each ``span(name)`` observation lands in the histogram
    ``span_seconds.<name>`` (count / total / min / max), so repeated
    spans aggregate instead of accumulating events.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    @contextmanager
    def span(self, name: str):
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.registry.histogram(f"span_seconds.{name}").observe(
                time.perf_counter() - started
            )

    def time_call(self, name: str, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` inside a span; returns its result."""
        with self.span(name):
            return fn(*args, **kwargs)


def profile_batch(
    jobs: Sequence[Any],
    profiler: Optional[Profiler] = None,
    **run_batch_kwargs: Any,
) -> Tuple[List[BatchResult], MetricsRegistry]:
    """Run a batch with every job traced; returns ``(results, metrics)``.

    Each job gets its own :class:`Tracer` (existing observers are kept);
    the whole ``run_batch`` call is wrapped in a ``run_batch`` span, and
    the returned registry is the deterministic job-order merge of every
    job's metrics plus the batch-level spans.  Accepts all
    :func:`~repro.core.engine.batch.run_batch` keyword arguments,
    ``parallel=True`` included — worker-side tracer aggregates come back
    through the snapshot machinery and merge identically.
    """
    profiler = profiler if profiler is not None else Profiler()
    jobs = list(jobs)
    fresh = [job for job in jobs if not any(isinstance(o, Tracer) for o in job.observers)]
    attach_tracers(fresh)
    with profiler.span("run_batch"):
        results = run_batch(jobs, **run_batch_kwargs)
    metrics = merged_metrics(results)
    metrics.merge(profiler.registry)
    metrics.gauge("jobs").set(len(jobs))
    return results, metrics


def profile_report(metrics: MetricsRegistry, title: str = "profile") -> str:
    """Render a registry as the repo's boxed plain-text table."""
    from repro.analysis.reporting import metrics_table

    return metrics_table(metrics, title=title)
