"""Provenance manifests: what produced this number, exactly?

Every regenerated artifact — a Table 1/2 cell, a reproduction
certificate, a rate-sweep check, an impossibility counterexample, a
JSONL trace — carries a :class:`Manifest` recording the seed, the
network's content fingerprint, the communication model and help level,
the engine generation, and (for whole documents) the sequential/parallel
backend that drove it.  A result without its manifest is an assertion; a
result with one is auditable: rerun the manifest's parameters and you
must land on the same bits.

Cell- and sweep-level manifests deliberately contain **only
deterministic fields** (no backend, no wall-clock): the parallel
backend's bit-identity contract extends to them, so a cell regenerated
in a pool worker carries the same manifest as its sequential twin.  The
backend and worker count are recorded once, on the enclosing document's
manifest, where sequential/parallel runs legitimately differ.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.core.engine import ENGINE_VERSION

# The fingerprint algorithm now lives in the memo layer (which caches it
# on the graph and keys its content-addressed caches with it); manifests
# and memo entries are keyed by the same bits.  Re-exported here so every
# historical importer keeps working.
from repro.core.memo import graph_fingerprint  # noqa: F401  (re-export)
from repro.graphs.digraph import DiGraph


def network_fingerprint(network: Any, rounds: int = 6) -> str:
    """A content hash for a static or dynamic network.

    A :class:`DiGraph` hashes directly; a dynamic graph hashes the
    fingerprints of its first ``rounds`` round graphs (deterministic
    generators make this a faithful identity for seeded networks).
    """
    if isinstance(network, DiGraph):
        return graph_fingerprint(network)
    parts = [type(network).__name__, str(network.n)]
    for t in range(1, rounds + 1):
        parts.append(graph_fingerprint(network.graph_at(t)))
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()[:16]


def current_backend() -> str:
    """``"parallel"`` when this code runs in (or defaults to) the
    process-parallel backend, else ``"sequential"``."""
    from repro.core.engine.batch import parallel_enabled_by_env
    from repro.core.engine.parallel import in_worker

    return "parallel" if (in_worker() or parallel_enabled_by_env()) else "sequential"


@dataclass(frozen=True)
class Manifest:
    """The provenance record attached to a regenerated artifact.

    ``kind`` names the artifact (``table1-cell``, ``table2-cell``,
    ``certificate``, ``rate-sweep``, ``impossibility``, ``trace``);
    ``graph_hash`` is a :func:`graph_fingerprint`/:func:`network_fingerprint`;
    ``backend`` is only set on document-level manifests (see the module
    docstring); anything artifact-specific rides in ``extra``.
    """

    kind: str
    engine_version: str = ENGINE_VERSION
    seed: Optional[int] = None
    n: Optional[int] = None
    rounds: Optional[int] = None
    graph_hash: Optional[str] = None
    model: Optional[str] = None
    knowledge: Optional[str] = None
    backend: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Manifest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py39-safe
        kwargs = {k: v for k, v in d.items() if k in known}
        unknown = {k: v for k, v in d.items() if k not in known}
        if unknown:
            extra = dict(kwargs.get("extra") or {})
            extra.update(unknown)
            kwargs["extra"] = extra
        return cls(**kwargs)
