"""The proof of Theorem 5.2, step by step, on concrete executions.

The convergence proof factors Push-Sum's estimate dynamics through the
row-stochastic matrices

    ``B(t) = diag(z(t))⁻¹ · A(t) · diag(z(t-1))``,

shows every window product ``B(t+D-1 : t)`` is ``n^{-2D}``-safe with a
fully-connected associated graph, and contracts the estimate spread with
Dobrushin's coefficient:  ``δ(B(t:1)) ≤ (1 - n^{-2D})^{⌊t/D⌋}``.

This module computes those objects for an actual dynamic graph, so tests
and benchmarks can check each inequality of the proof numerically — a
reproduction of the *argument*, not just the statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dynamics.dynamic_graph import DynamicGraph
from repro.linalg.stochastic import (
    backward_product,
    dobrushin_coefficient,
    is_row_stochastic,
    push_sum_matrix,
    seminorm_spread,
)


@dataclass
class PushSumTrace:
    """Matrix-level trace of a Push-Sum execution.

    ``a_matrices[t-1]`` is ``A(t)``; ``b_matrices[t-1]`` is ``B(t)``;
    ``z_history[t]`` is the weight vector after ``t`` rounds
    (``z_history[0]`` is the initial weights); ``x_history`` likewise for
    the estimates ``x = y / z``.
    """

    a_matrices: List[np.ndarray]
    b_matrices: List[np.ndarray]
    z_history: List[np.ndarray]
    x_history: List[np.ndarray]


def trace_push_sum(
    dg: DynamicGraph,
    values: List[float],
    weights: List[float] = None,
    rounds: int = 50,
) -> PushSumTrace:
    """Run Push-Sum at the matrix level and record the proof's objects."""
    n = dg.n
    y = np.asarray(values, dtype=float)
    z = np.asarray(weights if weights is not None else [1.0] * n, dtype=float)
    if len(y) != n or len(z) != n:
        raise ValueError("need one value and one weight per agent")
    if (z <= 0).any():
        raise ValueError("weights must be positive")
    a_matrices, b_matrices = [], []
    z_history, x_history = [z.copy()], [y / z]
    for t in range(1, rounds + 1):
        a = push_sum_matrix(dg.graph_at(t))
        z_prev = z
        y = a @ y
        z = a @ z
        b = np.diag(1.0 / z) @ a @ np.diag(z_prev)
        a_matrices.append(a)
        b_matrices.append(b)
        z_history.append(z.copy())
        x_history.append(y / z)
    return PushSumTrace(a_matrices, b_matrices, z_history, x_history)


def verify_proof_invariants(trace: PushSumTrace, d: int, n: int) -> List[str]:
    """Check every inequality of Theorem 5.2's proof on a trace.

    Returns a list of violations (empty = the proof's claims all hold on
    this execution):

    1. each ``B(t)`` is row-stochastic with positive diagonal, and its
       associated graph equals ``A(t)``'s;
    2. ``z`` stays within Lemma 5.1's envelope
       ``[n^{-D}·Σw, Σw]`` from round ``D`` on;
    3. every window product ``B(t+D-1 : t)`` is ``n^{-2D}``-safe and has
       positive entries (fully connected);
    4. ``δ(B(t:1)) ≤ (1 - n^{-2D})^{⌊t/D⌋}``;
    5. the estimate spread is non-increasing and bounded by
       ``δ(B(t:1)) · spread(x(0))``.
    """
    problems: List[str] = []
    total_w = float(trace.z_history[0].sum())

    for t, (a, b) in enumerate(zip(trace.a_matrices, trace.b_matrices), start=1):
        if not is_row_stochastic(b):
            problems.append(f"B({t}) is not row-stochastic")
        if (np.diagonal(b) <= 0).any():
            problems.append(f"B({t}) has a non-positive diagonal entry")
        if ((a > 0) != (b > 0)).any():
            problems.append(f"B({t})'s associated graph differs from A({t})'s")

    floor = n ** (-float(d)) * total_w
    for t, z in enumerate(trace.z_history):
        if t < d:
            continue
        if (z > total_w + 1e-9).any():
            problems.append(f"z({t}) exceeds the total weight")
        if (z < floor - 1e-12).any():
            problems.append(f"z({t}) below Lemma 5.1's floor n^-D · Σw")

    safety = n ** (-2.0 * d)
    for start in range(0, len(trace.b_matrices) - d + 1):
        window = backward_product(trace.b_matrices[start : start + d])
        if (window <= 0).any():
            problems.append(f"window B({start+d}:{start+1}) not fully connected")
        elif window[window > 0].min() < safety - 1e-15:
            problems.append(f"window B({start+d}:{start+1}) not n^-2D-safe")

    spread0 = seminorm_spread(trace.x_history[0])
    prev_spread = spread0
    for t in range(1, len(trace.b_matrices) + 1):
        product = backward_product(trace.b_matrices[:t])
        delta = dobrushin_coefficient(product)
        bound = (1.0 - safety) ** (t // d)
        if delta > bound + 1e-9:
            problems.append(f"δ(B({t}:1)) = {delta:.3g} exceeds the proof bound {bound:.3g}")
        spread = seminorm_spread(trace.x_history[t])
        if spread > prev_spread + 1e-9:
            problems.append(f"estimate spread increased at round {t}")
        if spread > delta * spread0 + 1e-9:
            problems.append(f"spread at round {t} exceeds δ(B(t:1)) · spread(x(0))")
        prev_spread = spread
    return problems


# ---------------------------------------------------------------------- #
# grid sweeps
# ---------------------------------------------------------------------- #

@dataclass
class ProofCheck:
    """Outcome of verifying the proof invariants for one configuration."""

    n: int
    d: int
    seed: int
    rounds: int
    problems: List[str]
    #: Provenance of the checked execution (network fingerprint, engine
    #: generation) — deterministic fields only, identical across backends.
    manifest: object = None

    @property
    def ok(self) -> bool:
        return not self.problems


def proof_check_to_payload(check: ProofCheck) -> dict:
    """JSON-safe record of one proof check — what the durable store keeps."""
    manifest = check.manifest
    return {
        "n": check.n,
        "d": check.d,
        "seed": check.seed,
        "rounds": check.rounds,
        "problems": list(check.problems),
        "manifest": None if manifest is None else manifest.to_dict(),
    }


def proof_check_from_payload(payload: dict) -> ProofCheck:
    """Rebuild a :class:`ProofCheck` from :func:`proof_check_to_payload`."""
    from repro.analysis.provenance import Manifest

    manifest = payload.get("manifest")
    return ProofCheck(
        int(payload["n"]),
        int(payload["d"]),
        int(payload["seed"]),
        int(payload["rounds"]),
        list(payload["problems"]),
        None if manifest is None else Manifest.from_dict(manifest),
    )


def _compute_proof_check(n: int, d: int, seed: int, rounds: int) -> ProofCheck:
    from repro.analysis.provenance import Manifest, network_fingerprint
    from repro.dynamics.generators import random_dynamic_strongly_connected

    dg = random_dynamic_strongly_connected(n, seed=seed)
    values = [float(v + 1) for v in range(n)]
    trace = trace_push_sum(dg, values, rounds=rounds)
    manifest = Manifest(
        kind="rate-sweep",
        seed=seed,
        n=n,
        rounds=rounds,
        graph_hash=network_fingerprint(dg),
        extra={"d": d},
    )
    return ProofCheck(n, d, seed, rounds, verify_proof_invariants(trace, d=d, n=n), manifest)


def check_proof_invariants(n: int, d: int, seed: int, rounds: int, store=None) -> ProofCheck:
    """One proof-invariant check, served from the result store when warm."""
    if store is None:
        return _compute_proof_check(n, d, seed, rounds)
    from repro.store.cache import fetch_or_compute

    return fetch_or_compute(
        store,
        "rate-sweep-check",
        {"n": n, "d": d, "seed": seed, "rounds": rounds},
        lambda: _compute_proof_check(n, d, seed, rounds),
        proof_check_to_payload,
        proof_check_from_payload,
    )


def _proof_check_task(spec) -> ProofCheck:
    """One check from a picklable spec; an optional fifth element names a
    store root so pool workers share the parent's on-disk cache."""
    n, d, seed, rounds = spec[:4]
    store = None
    if len(spec) > 4 and spec[4]:
        from repro.store.cache import ResultStore

        store = ResultStore(spec[4])
    return check_proof_invariants(n, d, seed, rounds, store=store)


def sweep_proof_invariants(
    specs, parallel: bool = False, workers=None, store=None
) -> List[ProofCheck]:
    """Check Theorem 5.2's proof inequalities across a grid of runs.

    ``specs`` is a sequence of ``(n, d, seed, rounds)`` tuples; each one
    builds a seeded random dynamic strongly connected network, traces
    Push-Sum on it, and verifies every inequality of the proof (``d`` is
    the dynamic-diameter bound to verify against; ``n - 1`` is always
    sound for per-round strongly connected graphs).  Configurations are
    independent, so ``parallel=True`` fans them across a process pool
    (:func:`repro.core.engine.parallel.parallel_map`); results come back
    in spec order either way.  ``store`` short-circuits already-checked
    configurations from the durable result store (``None`` defers to the
    ``REPRO_STORE`` environment variable), which is what lets a killed
    sweep resume from its last finished configuration.
    """
    from repro.store.cache import resolve_store

    store = resolve_store(store)
    specs = [tuple(s) for s in specs]
    if parallel:
        from repro.core.engine.parallel import parallel_map

        root = getattr(store, "root", None)
        return parallel_map(
            _proof_check_task, [s + (root,) for s in specs], workers=workers
        )
    return [check_proof_invariants(*s, store=store) for s in specs]
