"""Plain-text table rendering and CSV export for the benchmark harnesses."""

from __future__ import annotations

import csv
import io
from typing import Any, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """A boxed, aligned, monospace table (all cells stringified)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    n_cols = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (n_cols - len(r)))
    widths = [max(len(r[c]) for r in cells) for c in range(n_cols)]

    def hline(sep: str = "-") -> str:
        return "+" + "+".join(sep * (w + 2) for w in widths) + "+"

    def fmt(row: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    out = []
    if title:
        out.append(title)
    out.append(hline("="))
    out.append(fmt(cells[0]))
    out.append(hline("="))
    for row in cells[1:]:
        out.append(fmt(row))
    out.append(hline())
    return "\n".join(out)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """The same tabular data as CSV text (for plotting pipelines)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def metrics_table(registry, title: str = "metrics") -> str:
    """A :class:`~repro.core.engine.trace.MetricsRegistry` as a boxed table.

    Counters and gauges render their value; histograms render
    count / mean / min / max.  Rows come out name-sorted, so the same
    registry always renders the same text.
    """

    def _num(x):
        if isinstance(x, float):
            return f"{x:.6g}"
        return "" if x is None else str(x)

    rows = []
    for name, payload in registry.as_dict().items():
        if payload["type"] == "histogram":
            detail = (
                f"count={payload['count']} mean={_num(payload['mean'])} "
                f"min={_num(payload['min'])} max={_num(payload['max'])}"
            )
        else:
            detail = _num(payload["value"])
        rows.append([name, payload["type"], detail])
    return render_table(["metric", "type", "value"], rows, title=title)


def trace_csv(report, series_name: str = "value") -> str:
    """A :class:`~repro.core.convergence.ConvergenceReport` trace as CSV.

    Exact-mode traces hold the per-round unanimous value (or blank);
    asymptotic-mode traces hold the per-round spread/error.
    """
    rows = [
        (t, "" if v is None else v) for t, v in enumerate(report.trace, start=1)
    ]
    return to_csv(("round", series_name), rows)
