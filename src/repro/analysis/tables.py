"""Cell-by-cell reproduction of Tables 1 and 2.

For every (communication model × help level) cell the harness runs:

* a **set-based probe** (the maximum) — must succeed everywhere;
* a **frequency-based probe** (the average) — must succeed exactly in the
  enriched models, and be refuted under simple broadcast by the
  shared-base cover pairs of :func:`~repro.analysis.impossibility.two_fibre_cover`;
* a **multiset-based probe** (the sum) — must succeed exactly with known
  ``n`` or a leader in the enriched models, and be refuted otherwise by
  the ring collapse of §4.1.

The *measured class* of a cell is the largest probe class that both
succeeded positively and whose next class up was experimentally refuted
(or is the top).  ``CellResult.consistent`` compares it against the
paper's Table 1/2 entry (:mod:`repro.core.computability`); open cells
("?" in Table 2) are consistent when the measurement is a sound lower
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.constant_weight import ConstantWeightFrequency
from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.analysis.impossibility import (
    demonstrate_collapse,
    outputs_match,
    two_fibre_cover,
    verify_lifting_on_outputs,
)
from repro.analysis.provenance import Manifest, network_fingerprint
from repro.analysis.reporting import render_table
from repro.core.computability import (
    CellCharacterization,
    ROW_ORDER,
    TABLE1_MODELS,
    TABLE2_MODELS,
    computable_class,
)
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.engine import BatchJob, PlanCache, run_batch
from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge
from repro.core.memo import memoized_minimum_base
from repro.dynamics.generators import random_dynamic_strongly_connected, random_dynamic_symmetric
from repro.functions.classes import FunctionClass
from repro.functions.library import AVERAGE, MAXIMUM, SUM
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.graphs.digraph import DiGraph


@dataclass
class CellResult:
    """Outcome of reproducing one table cell."""

    model: CommunicationModel
    knowledge: Knowledge
    dynamic: bool
    expected: CellCharacterization
    measured: Optional[FunctionClass]
    consistent: bool
    details: List[str] = field(default_factory=list)
    #: Provenance of the cell's probes (seed, network fingerprint, model,
    #: help level, engine generation) — deterministic fields only, so a
    #: cell regenerated in a pool worker carries the same manifest as its
    #: sequential twin.
    manifest: Optional[Manifest] = None

    def label(self) -> str:
        if self.measured is None:
            return "(none measured)"
        return self.measured.label


def cell_to_payload(result: CellResult) -> Dict[str, Any]:
    """The JSON-safe record of one cell — the shape certificates embed
    and the durable :mod:`repro.store` persists.  Everything in it is
    deterministic, so two processes that compute the same cell write the
    same bytes."""
    return {
        "model": result.model.value,
        "knowledge": result.knowledge.value,
        "dynamic": result.dynamic,
        "measured_class": None if result.measured is None else result.measured.label,
        "paper_class": result.expected.label(),
        "paper_note": result.expected.note,
        "open_question": result.expected.open_question,
        "consistent": result.consistent,
        "details": list(result.details),
        "manifest": None if result.manifest is None else result.manifest.to_dict(),
    }


def cell_from_payload(payload: Dict[str, Any]) -> CellResult:
    """Rebuild a :class:`CellResult` from :func:`cell_to_payload` output.

    The paper-side expectation is re-derived from the computability
    oracle (not trusted from disk), mirroring ``verify_certificate``;
    a payload with unknown enum values or a missing field raises, which
    the store layer treats as a corrupt entry and recomputes.
    """
    model = CommunicationModel(payload["model"])
    knowledge = Knowledge(payload["knowledge"])
    dynamic = bool(payload["dynamic"])
    expected = computable_class(model, knowledge, dynamic=dynamic)
    measured_label = payload["measured_class"]
    if measured_label is None:
        measured = None
    else:
        measured = next(fc for fc in FunctionClass if fc.label == measured_label)
    manifest = payload.get("manifest")
    return CellResult(
        model,
        knowledge,
        dynamic,
        expected,
        measured,
        bool(payload["consistent"]),
        list(payload["details"]),
        None if manifest is None else Manifest.from_dict(manifest),
    )


# ---------------------------------------------------------------------- #
# probes
# ---------------------------------------------------------------------- #

_INPUTS = [3, 1, 1, 4, 1, 4]  # multiplicities 1:3, 4:2, 3:1 — all classes distinct


def _probe_inputs(n: int) -> List[Any]:
    """A length-``n`` input vector with unequal value multiplicities."""
    return [_INPUTS[i % len(_INPUTS)] for i in range(n)]


_STATIC_ROUNDS = 60
_DYNAMIC_ROUNDS = 500
_PATIENCE = 5


def _with_leader(inputs: List[Any]) -> List[Any]:
    return [(v, i == 0) for i, v in enumerate(inputs)]


def _static_graph(model: CommunicationModel, n: int, seed: int) -> DiGraph:
    if model is CommunicationModel.SYMMETRIC:
        return random_symmetric_connected(n, seed=seed)
    return random_strongly_connected(n, seed=seed)


def _exact_job(algorithm, network, inputs, target, rounds, label="") -> BatchJob:
    """A δ0 probe as a batch job (the shape ``run_batch`` consumes)."""
    return BatchJob(
        algorithm,
        network,
        inputs=inputs,
        runner="stable",
        rounds=rounds,
        patience=_PATIENCE,
        target=target,
        label=label,
    )


def _run_exact(
    algorithm, network, inputs, target, rounds, plan_cache=None, quotient=None,
    vector=None,
) -> bool:
    (result,) = run_batch(
        [_exact_job(algorithm, network, inputs, target, rounds)],
        plan_cache=plan_cache,
        quotient=quotient,
        vector=vector,
    )
    return result.converged


def _broadcast_refutation(f: Callable, knowledge: Knowledge, rounds: int = 24) -> bool:
    """True iff the cover pair refutes computing ``f`` under broadcast.

    Picks cover cardinalities legal for the help level, checks ``f``
    differs across the pair, and verifies (Lifting lemma) that gossip-class
    executions on both covers track the shared base — hence any algorithm's
    outputs coincide while ``f``'s values differ.
    """
    if knowledge is Knowledge.EXACT_N:
        pair = ((1, 3), (2, 2))  # same n = 4
    else:
        pair = ((1, 2), (1, 3))
    leader = knowledge is Knowledge.LEADER

    def build(z):
        value_a = (9, True) if leader else 9
        value_c = (1, False) if leader else 1
        return two_fibre_cover(*z, value_a=value_a, value_c=value_c)

    g1, g2 = build(pair[0]), build(pair[1])
    raw = (lambda vec: f([v[0] if isinstance(v, tuple) else v for v in vec])) if leader else f
    v1 = list(g1.values)
    v2 = list(g2.values)
    # Tolerance comparison, not exact repr: float rounding noise between
    # the two covers must not masquerade as a refutation.
    if outputs_match(raw(v1), raw(v2)):
        return False
    # Content-memoized: many cells refute with the same cover pair, and
    # the whole document computes each distinct cover's base once.
    mb1, mb2 = memoized_minimum_base(g1), memoized_minimum_base(g2)
    ok1 = verify_lifting_on_outputs(mb1.fibration, GossipAlgorithm, list(mb1.base.values), rounds)
    ok2 = verify_lifting_on_outputs(mb2.fibration, GossipAlgorithm, list(mb2.base.values), rounds)
    return ok1 and ok2


def _cell_manifest(
    dynamic: bool,
    model: CommunicationModel,
    knowledge: Knowledge,
    network,
    n: int,
    seed: int,
    rounds: int,
) -> Manifest:
    """The provenance record for one table cell's probes.

    Static cells additionally record the quotient geometry — minimum-base
    size versus full size.  The sizes are pure content of the probe graph
    (computed via the memo layer whether or not the cell actually ran on
    the quotient), so the manifest — and hence the cell's stored payload —
    stays byte-identical across quotient-on and quotient-off runs.
    """
    extra: Dict[str, Any] = {}
    if isinstance(network, DiGraph):
        mb = memoized_minimum_base(network)
        extra["quotient"] = {"base_n": mb.base.n, "full_n": network.n}
    return Manifest(
        kind="table2-cell" if dynamic else "table1-cell",
        seed=seed,
        n=n,
        rounds=rounds,
        graph_hash=network_fingerprint(network),
        model=model.value,
        knowledge=knowledge.value,
        extra=extra,
    )


def _sum_refutation(model: CommunicationModel, rounds: int = 24) -> bool:
    """§4.1 ring collapse: the sum differs across ``R_4`` and ``R_8`` with
    frequency-equal inputs, while outputs are forced equal."""
    base_values = [1, 2]
    outcome = demonstrate_collapse(
        GossipAlgorithm, n=4, m=8, base_values=base_values, rounds=rounds, model=model
    )
    sums = (sum(base_values) * 2, sum(base_values) * 4)
    return outcome.lifted and sums[0] != sums[1]


# ---------------------------------------------------------------------- #
# static cells
# ---------------------------------------------------------------------- #

def run_static_cell(
    model: CommunicationModel,
    knowledge: Knowledge,
    n: int = 6,
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> CellResult:
    """Reproduce one Table 1 cell experimentally.

    All positive probes of the cell go through :func:`run_batch` on a
    shared ``plan_cache``, so the cell's graph is compiled into a
    delivery plan once for every probe that runs on it.  ``quotient``
    opts the probes into (or out of) quotient-accelerated execution;
    ``None`` defers to ``REPRO_QUOTIENT``.  ``vector`` does the same for
    the vectorized numpy backend (``REPRO_VECTOR``).  Cell results and
    manifests are identical in every mode.
    """
    expected = computable_class(model, knowledge, dynamic=False)
    details: List[str] = []
    inputs = _probe_inputs(n)
    leader = knowledge is Knowledge.LEADER
    run_inputs = _with_leader(inputs) if leader else inputs
    graph = _static_graph(model, n, seed)
    manifest = _cell_manifest(False, model, knowledge, graph, n, seed, _STATIC_ROUNDS)

    if model is CommunicationModel.SIMPLE_BROADCAST:
        got_max = _run_exact(
            GossipAlgorithm(max),
            graph,
            [v[0] if leader else v for v in run_inputs] if leader else run_inputs,
            MAXIMUM(inputs),
            _STATIC_ROUNDS,
            plan_cache=plan_cache,
            quotient=quotient,
            vector=vector,
        )
        details.append(f"max via gossip: {'ok' if got_max else 'FAILED'}")
        refuted_freq = _broadcast_refutation(AVERAGE, knowledge)
        details.append(
            "average refuted by shared-base covers" if refuted_freq else "average refutation FAILED"
        )
        measured = FunctionClass.SET_BASED if (got_max and refuted_freq) else None
        return CellResult(
            model, knowledge, False, expected, measured,
            measured is expected.function_class, details, manifest,
        )

    # Enriched models: the static pipeline, probes batched on one cache.
    def alg(f):
        if leader:
            return StaticFunctionAlgorithm(f, model, knowledge=knowledge, leader_count=1)
        return StaticFunctionAlgorithm(f, model, knowledge=knowledge, n=n)

    multiset_cell = knowledge in (Knowledge.EXACT_N, Knowledge.LEADER)
    probes = [(MAXIMUM, "max"), (AVERAGE, "average")]
    if multiset_cell:
        probes.append((SUM, "sum"))
    results = run_batch(
        [
            _exact_job(alg(f), graph, run_inputs, f(inputs), _STATIC_ROUNDS, label=name)
            for f, name in probes
        ],
        plan_cache=plan_cache,
        quotient=quotient,
        vector=vector,
    )
    verdicts = {r.label: r.converged for r in results}
    got_max, got_avg = verdicts["max"], verdicts["average"]
    details.append(f"max: {'ok' if got_max else 'FAILED'}; average: {'ok' if got_avg else 'FAILED'}")

    if multiset_cell:
        got_sum = verdicts["sum"]
        details.append(f"sum: {'ok' if got_sum else 'FAILED'}")
        measured = FunctionClass.MULTISET_BASED if (got_max and got_avg and got_sum) else None
    else:
        refuted_sum = _sum_refutation(model)
        details.append(
            "sum refuted by ring collapse" if refuted_sum else "sum refutation FAILED"
        )
        measured = (
            FunctionClass.FREQUENCY_BASED if (got_max and got_avg and refuted_sum) else None
        )
    return CellResult(
        model, knowledge, False, expected, measured,
        measured is expected.function_class, details, manifest,
    )


# ---------------------------------------------------------------------- #
# dynamic cells
# ---------------------------------------------------------------------- #

def run_dynamic_cell(
    model: CommunicationModel,
    knowledge: Knowledge,
    n: int = 5,
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> CellResult:
    """Reproduce one Table 2 cell experimentally.

    For the open cells ("?") the measurement is a demonstrated *lower
    bound* (Corollary 5.5 / §5.5) and consistency means not contradicting
    the impossibility side.  As in :func:`run_static_cell`, every
    positive probe goes through :func:`run_batch` on a shared plan cache.
    """
    expected = computable_class(model, knowledge, dynamic=True)
    details: List[str] = []
    inputs = _probe_inputs(n)
    leader = knowledge is Knowledge.LEADER
    run_inputs = _with_leader(inputs) if leader else inputs

    if model is CommunicationModel.SIMPLE_BROADCAST:
        dyn = random_dynamic_strongly_connected(n, seed=seed)
        got_max = _run_exact(GossipAlgorithm(max), dyn,
                             [v[0] for v in run_inputs] if leader else run_inputs,
                             MAXIMUM(inputs), _STATIC_ROUNDS, plan_cache=plan_cache,
                             quotient=quotient, vector=vector)
        refuted_freq = _broadcast_refutation(AVERAGE, knowledge)
        details.append(f"max via gossip: {'ok' if got_max else 'FAILED'}")
        details.append(
            "average refuted by shared-base covers (static ⊂ dynamic)"
            if refuted_freq else "average refutation FAILED"
        )
        measured = FunctionClass.SET_BASED if (got_max and refuted_freq) else None
        manifest = _cell_manifest(True, model, knowledge, dyn, n, seed, _STATIC_ROUNDS)
        return CellResult(
            model, knowledge, True, expected, measured,
            measured is expected.function_class, details, manifest,
        )

    if model is CommunicationModel.OUTDEGREE_AWARE and knowledge is Knowledge.NONE:
        # Open cell: demonstrate the Corollary 5.5 lower bound — set-based
        # exactly (gossip) plus continuous-in-frequency asymptotically
        # (Push-Sum average), with the sum refuted.
        dyn = random_dynamic_strongly_connected(n, seed=seed)
        max_result, avg_result = run_batch(
            [
                _exact_job(GossipAlgorithm(max), dyn, run_inputs, MAXIMUM(inputs),
                           _STATIC_ROUNDS, label="max"),
                BatchJob(
                    PushSumAlgorithm(),
                    dyn,
                    inputs=[float(v) for v in run_inputs],
                    runner="asymptotic",
                    rounds=_DYNAMIC_ROUNDS,
                    tolerance=1e-6,
                    target=float(AVERAGE(inputs)),
                    label="average",
                ),
            ],
            plan_cache=plan_cache,
            quotient=quotient,
            vector=vector,
        )
        got_max, avg_report = max_result.converged, avg_result.report
        refuted_sum = _sum_refutation(model)
        details.append(f"max via gossip: {'ok' if got_max else 'FAILED'}")
        details.append(
            "average asymptotically via Push-Sum (Corollary 5.5): "
            + ("ok" if avg_report.converged else "FAILED")
        )
        details.append("sum refuted by ring collapse" if refuted_sum else "sum refutation FAILED")
        details.append("paper leaves this cell open; measurement is a lower bound")
        measured = (
            FunctionClass.FREQUENCY_BASED
            if (got_max and avg_report.converged and refuted_sum)
            else None
        )
        manifest = _cell_manifest(True, model, knowledge, dyn, n, seed, _DYNAMIC_ROUNDS)
        return CellResult(
            model, knowledge, True, expected, measured, measured is not None,
            details, manifest,
        )

    if model is CommunicationModel.OUTDEGREE_AWARE:
        dyn = random_dynamic_strongly_connected(n, seed=seed)

        def make(f):
            if leader:
                return PushSumFrequencyAlgorithm(mode="multiset", f=f, leader_count=1)
            if knowledge is Knowledge.EXACT_N:
                return PushSumFrequencyAlgorithm(mode="multiset", f=f, n=n)
            return PushSumFrequencyAlgorithm(mode="exact", f=f, n_bound=n + 2)
    else:  # SYMMETRIC — algorithms matched to the paper's citations:
        # no help / leader -> history trees (Di Luna & Viglietta [26, 25]);
        # bound / exact n -> degree-blind constant-weight averaging of the
        # per-value indicators (CB & LM [11]).
        dyn = random_dynamic_symmetric(n, seed=seed)

        def make(f):
            if leader:
                return HistoryTreeAlgorithm(knowledge=Knowledge.LEADER, leader_count=1, f=f)
            if knowledge is Knowledge.EXACT_N:
                return ConstantWeightFrequency(mode="multiset", n=n, f=f)
            if knowledge is Knowledge.BOUND_N:
                return ConstantWeightFrequency(mode="exact", n_bound=n + 2, f=f)
            return HistoryTreeAlgorithm(knowledge=Knowledge.NONE, f=f)

    rounds = (
        _DYNAMIC_ROUNDS
        if model is CommunicationModel.OUTDEGREE_AWARE
        or knowledge in (Knowledge.BOUND_N, Knowledge.EXACT_N)
        else 30
    )
    multiset_cell = knowledge in (Knowledge.EXACT_N, Knowledge.LEADER)
    probes = [(MAXIMUM, "max"), (AVERAGE, "average")]
    if multiset_cell:
        probes.append((SUM, "sum"))
    results = run_batch(
        [
            _exact_job(make(f), dyn, run_inputs, f(inputs), rounds, label=name)
            for f, name in probes
        ],
        plan_cache=plan_cache,
        quotient=quotient,
        vector=vector,
    )
    verdicts = {r.label: r.converged for r in results}
    got_max, got_avg = verdicts["max"], verdicts["average"]
    details.append(f"max: {'ok' if got_max else 'FAILED'}; average: {'ok' if got_avg else 'FAILED'}")

    if multiset_cell:
        got_sum = verdicts["sum"]
        details.append(f"sum: {'ok' if got_sum else 'FAILED'}")
        measured = FunctionClass.MULTISET_BASED if (got_max and got_avg and got_sum) else None
    else:
        refuted_sum = _sum_refutation(
            CommunicationModel.SIMPLE_BROADCAST
            if model is CommunicationModel.SYMMETRIC
            else model
        )
        details.append("sum refuted by ring collapse" if refuted_sum else "sum refutation FAILED")
        measured = FunctionClass.FREQUENCY_BASED if (got_max and got_avg and refuted_sum) else None

    if expected.open_question:
        consistent = measured is not None  # sound lower bound demonstrated
        details.append("paper leaves this cell open; measurement is a lower bound")
    else:
        consistent = measured is expected.function_class
    manifest = _cell_manifest(True, model, knowledge, dyn, n, seed, rounds)
    return CellResult(model, knowledge, True, expected, measured, consistent, details, manifest)


# ---------------------------------------------------------------------- #
# whole tables
# ---------------------------------------------------------------------- #

def table_specs(dynamic: bool, n: int, seed: int) -> List[Tuple]:
    """The cell specs of one table, in document order — the unit list
    both the reproduce functions and the durable job runners iterate."""
    models = TABLE2_MODELS if dynamic else TABLE1_MODELS
    return [
        (dynamic, model, knowledge, n, seed)
        for knowledge in ROW_ORDER
        for model in models
    ]


def compute_cell(
    dynamic: bool,
    model: CommunicationModel,
    knowledge: Knowledge,
    n: int,
    seed: int,
    plan_cache: Optional[PlanCache] = None,
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> CellResult:
    """One table cell, served from the durable result store when warm.

    ``store`` is a :class:`repro.store.cache.ResultStore` (or ``None``
    for compute-always).  Store keys bind the cell parameters *and* the
    engine generation; a corrupted entry is quarantined and recomputed,
    never served.  ``quotient`` and ``vector`` are deliberately *not*
    part of the store key: accelerated and direct probes produce
    byte-identical payloads (the Lifting lemma's contract and the vector
    backend's faithfulness contract, both pinned by the property suite),
    so any mode may serve another's cache.
    """
    def compute() -> CellResult:
        runner = run_dynamic_cell if dynamic else run_static_cell
        return runner(
            model, knowledge, n=n, seed=seed, plan_cache=plan_cache,
            quotient=quotient, vector=vector,
        )

    if store is None:
        return compute()
    from repro.store.cache import fetch_or_compute

    return fetch_or_compute(
        store,
        "table2-cell" if dynamic else "table1-cell",
        {
            "dynamic": dynamic,
            "model": model.value,
            "knowledge": knowledge.value,
            "n": n,
            "seed": seed,
        },
        compute,
        cell_to_payload,
        cell_from_payload,
    )


def _cell_task(spec) -> CellResult:
    """One table cell from a picklable spec — the unit the pool fans out.

    The spec optionally carries a store root (sixth element) so pool
    workers consult and fill the same on-disk result store the parent
    uses (atomic writes make concurrent fills safe), the quotient
    override (seventh element), and the vector override (eighth)."""
    dynamic, model, knowledge, n, seed = spec[:5]
    store = None
    if len(spec) > 5 and spec[5]:
        from repro.store.cache import ResultStore

        store = ResultStore(spec[5])
    quotient = spec[6] if len(spec) > 6 else None
    vector = spec[7] if len(spec) > 7 else None
    return compute_cell(
        dynamic, model, knowledge, n, seed, store=store, quotient=quotient,
        vector=vector,
    )


def _run_cells(
    specs,
    parallel: Optional[bool],
    workers: Optional[int],
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> List[CellResult]:
    """Run table cells sequentially (one shared plan cache) or fanned
    across a process pool (each worker keeps its own cache); ``store``
    short-circuits already-computed cells from disk either way."""
    from repro.core.engine.batch import parallel_enabled_by_env
    from repro.core.engine.parallel import parallel_map

    if parallel is None:
        parallel = parallel_enabled_by_env()
    if parallel:
        root = getattr(store, "root", None)
        return parallel_map(
            _cell_task, [s + (root, quotient, vector) for s in specs], workers=workers
        )
    plan_cache = PlanCache()
    return [
        compute_cell(
            dynamic, model, knowledge, n, seed, plan_cache=plan_cache, store=store,
            quotient=quotient, vector=vector,
        )
        for dynamic, model, knowledge, n, seed in specs
    ]


def reproduce_table1(
    n: int = 6,
    seed: int = 0,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> List[CellResult]:
    """Run all 16 static cells.

    Sequentially (default) the cells share one plan cache, so cells
    probing the same graph reuse its compiled delivery schedule;
    ``parallel=True`` fans independent cells across a process pool
    instead (``workers`` defaults to one per CPU).  ``parallel=None``
    resolves to the ``REPRO_PARALLEL=1`` environment switch.

    ``store`` makes the table durable: pass a
    :class:`repro.store.cache.ResultStore` (or a path) and every cell is
    served from disk when already computed, persisted when not —
    ``store=None`` defers to the ``REPRO_STORE`` environment variable
    (no store when unset).

    ``quotient=True`` runs every probe quotient-accelerated (identical
    cells, faster rounds on symmetric probe graphs); ``None`` defers to
    ``REPRO_QUOTIENT``.  ``vector=True`` runs kernel-backed probes on the
    vectorized numpy engine instead (``None`` defers to
    ``REPRO_VECTOR``)."""
    from repro.store.cache import resolve_store

    return _run_cells(
        table_specs(False, n, seed), parallel, workers, store=resolve_store(store),
        quotient=quotient, vector=vector,
    )


def reproduce_table2(
    n: int = 5,
    seed: int = 0,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> List[CellResult]:
    """Run all 12 dynamic cells; same ``parallel``/``store``/``quotient``/
    ``vector`` contract as :func:`reproduce_table1` (quotient probes fall
    back to direct execution on dynamic graphs — the knobs are still
    honored for the static refutation probes and the kernel-backed
    dynamic probes)."""
    from repro.store.cache import resolve_store

    return _run_cells(
        table_specs(True, n, seed), parallel, workers, store=resolve_store(store),
        quotient=quotient, vector=vector,
    )


def paper_table_document(
    table: int,
    n: Optional[int] = None,
    seed: int = 0,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, Any]:
    """The deterministic document of one paper table — the generic,
    DSL-backed builder behind ``configs/table1.json`` / ``table2.json``
    and the durable scenario jobs.

    Assembles exactly the bytes the hard-coded reproduction paths and the
    PR-5 table jobs produce:
    :func:`repro.store.jobs.table_document` over the
    :func:`cell_to_payload` records, in :func:`table_specs` order — so a
    scenario config, a ``store submit table1`` job, and a direct
    ``reproduce_table1`` call all emit byte-identical documents (engine
    modes included: quotient/vector/parallel change how cells are
    computed, never their payloads).

    ``progress(done, total)`` — when given — forces the sequential
    cell-by-cell path and is invoked after every finished cell; the
    durable scenario job runner heartbeats its queue lease there.
    """
    from repro.store.cache import resolve_store
    from repro.store.jobs import table_document

    if table not in (1, 2):
        raise ValueError(f"table must be 1 or 2, got {table!r}")
    dynamic = table == 2
    if n is None:
        n = 5 if dynamic else 6
    store = resolve_store(store)
    specs = table_specs(dynamic, n, seed)
    if progress is None:
        results = _run_cells(
            specs, parallel, workers, store=store, quotient=quotient, vector=vector
        )
    else:
        plan_cache = PlanCache()
        results = []
        for done, (dyn, model, knowledge, cell_n, cell_seed) in enumerate(specs, start=1):
            results.append(
                compute_cell(
                    dyn, model, knowledge, cell_n, cell_seed,
                    plan_cache=plan_cache, store=store, quotient=quotient,
                    vector=vector,
                )
            )
            progress(done, len(specs))
    return table_document(
        f"table{table}", n, seed, [cell_to_payload(r) for r in results]
    )


def format_results(results: List[CellResult], title: str) -> str:
    models = TABLE2_MODELS if results[0].dynamic else TABLE1_MODELS
    headers = ["help \\ model"] + [m.value for m in models]
    rows = []
    for knowledge in ROW_ORDER:
        row = [knowledge.value]
        for model in models:
            cell = next(r for r in results if r.model is model and r.knowledge is knowledge)
            mark = "✓" if cell.consistent else "✗"
            row.append(f"{cell.label()} {mark} (paper: {cell.expected.label()})")
        rows.append(row)
    return render_table(headers, rows, title=title)
