"""The computing model of Section 2: agents, models, executions.

:mod:`.models` — the four communication models; :mod:`.agent` — algorithms
as automata (state set, sending function, transition function);
:mod:`.execution` — the synchronous round executor over static and dynamic
graphs (a façade over the layered engine of :mod:`.engine`: compiled
delivery plans, flavor-resolved transports, the batch runner, and
round-level instrumentation); :mod:`.metrics` and :mod:`.convergence` —
δ-computation in metric spaces; :mod:`.network_class` — network classes
and centralized-help levels; :mod:`.computability` — the machine-readable
form of Tables 1 & 2.
"""

from repro.core.models import CommunicationModel
from repro.core.agent import (
    Algorithm,
    BroadcastAlgorithm,
    OneBitAlgorithm,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
)
from repro.core.execution import Execution
from repro.core.engine import (
    ENGINE_VERSION,
    BatchJob,
    BatchResult,
    ExecutionSnapshot,
    MetricsRegistry,
    PlanCache,
    TraceEvent,
    Tracer,
    attach_tracers,
    events_from_jsonl,
    events_to_jsonl,
    merged_metrics,
    parallel_map,
    read_jsonl,
    run_batch,
    run_batch_parallel,
    trace_execution,
    write_jsonl,
)
from repro.core.memo import (
    MemoCache,
    clear_memos,
    intern_graph,
    memo_disabled,
    memo_enabled,
    memo_stats,
    memoized_equitable_partition,
    memoized_minimum_base,
    publish_memo_metrics,
)
from repro.core.metrics import canonical_repr, discrete_metric, euclidean_metric
from repro.core.convergence import (
    ConvergenceReport,
    run_until_asymptotic,
    run_until_stable,
)
from repro.core.network_class import Knowledge, NetworkClassSpec
from repro.core.computability import (
    CellCharacterization,
    computable_class,
    table1,
    table2,
)

__all__ = [
    "ENGINE_VERSION",
    "Algorithm",
    "BatchJob",
    "BatchResult",
    "BroadcastAlgorithm",
    "CellCharacterization",
    "CommunicationModel",
    "ConvergenceReport",
    "Execution",
    "ExecutionSnapshot",
    "Knowledge",
    "MemoCache",
    "MetricsRegistry",
    "NetworkClassSpec",
    "OneBitAlgorithm",
    "OutdegreeAlgorithm",
    "OutputPortAlgorithm",
    "PlanCache",
    "TraceEvent",
    "Tracer",
    "attach_tracers",
    "canonical_repr",
    "clear_memos",
    "computable_class",
    "discrete_metric",
    "euclidean_metric",
    "events_from_jsonl",
    "events_to_jsonl",
    "intern_graph",
    "memo_disabled",
    "memo_enabled",
    "memo_stats",
    "memoized_equitable_partition",
    "memoized_minimum_base",
    "merged_metrics",
    "parallel_map",
    "publish_memo_metrics",
    "read_jsonl",
    "run_batch",
    "run_batch_parallel",
    "run_until_asymptotic",
    "run_until_stable",
    "trace_execution",
    "table1",
    "table2",
    "write_jsonl",
]
