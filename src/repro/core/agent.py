"""Algorithms as anonymous automata (Section 2.2).

An algorithm is a set of local states with a *sending function* and a
*transition function*.  All agents run the same algorithm (the network is
anonymous and deterministic); nothing in the interface can reference an
agent identity — the executor never passes one.

Subclass the variant matching your communication model:

* :class:`BroadcastAlgorithm` — ``message(state)``;
* :class:`OutdegreeAlgorithm` — ``message(state, outdegree)``;
* :class:`OutputPortAlgorithm` — ``messages(state, outdegree)`` returning
  one message per port;
* :class:`OneBitAlgorithm` — ``bit(state, outdegree)`` returning the one
  bit cast to every recipient (the transport rejects anything outside
  ``{0, 1}``).

``transition(state, received)`` receives the *multiset* of messages as a
tuple in executor-scrambled order; a correct anonymous algorithm must not
depend on that order.  ``output(state)`` extracts the agent's current
output variable ``x_i``.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence, Tuple

from repro.core.models import CommunicationModel


class Algorithm(abc.ABC):
    """Common base: initialization, transition, and output extraction."""

    #: The communication model this algorithm is written for.
    model: CommunicationModel

    @abc.abstractmethod
    def initial_state(self, input_value: Any) -> Any:
        """``Q0`` as a function of the agent's private input."""

    @abc.abstractmethod
    def transition(self, state: Any, received: Tuple[Any, ...]) -> Any:
        """``δ(q, M)`` — the new state from the received message multiset."""

    @abc.abstractmethod
    def output(self, state: Any) -> Any:
        """The output variable ``x_i`` read off the local state."""

    def name(self) -> str:
        return type(self).__name__


class BroadcastAlgorithm(Algorithm):
    """Sending function ``σ : Q -> M`` — simple broadcast (graph-invariant).

    Also the base class for the *symmetric communications* model, which
    uses broadcast sending functions on bidirectional networks; set
    ``model = CommunicationModel.SYMMETRIC`` in the subclass to have the
    executor enforce network symmetry.
    """

    model = CommunicationModel.SIMPLE_BROADCAST

    @abc.abstractmethod
    def message(self, state: Any) -> Any:
        """The unique message cast out this round."""


class OutdegreeAlgorithm(Algorithm):
    """Sending function ``σ : Q × ℕ -> M`` — outdegree awareness (isotropic)."""

    model = CommunicationModel.OUTDEGREE_AWARE

    @abc.abstractmethod
    def message(self, state: Any, outdegree: int) -> Any:
        """The message broadcast to all ``outdegree`` recipients."""


class OutputPortAlgorithm(Algorithm):
    """Sending function ``σ : Q × ℕ -> ⋃ M^k`` — output port awareness."""

    model = CommunicationModel.OUTPUT_PORT_AWARE

    @abc.abstractmethod
    def messages(self, state: Any, outdegree: int) -> Sequence[Any]:
        """One message per output port ``0 .. outdegree-1``."""


class OneBitAlgorithm(Algorithm):
    """Sending function ``σ : Q × ℕ -> {0, 1}`` — one-bit broadcast.

    The single bit is cast identically to every recipient (isotropic, like
    outdegree awareness) but the message alphabet is just ``{0, 1}``: the
    transport validates every emitted bit and raises on anything else, so
    an algorithm cannot smuggle wider payloads through the model.
    ``transition`` receives the multiset of in-edge bits as a tuple of
    ints in executor-scrambled order.
    """

    model = CommunicationModel.ONE_BIT_BROADCAST

    @abc.abstractmethod
    def bit(self, state: Any, outdegree: int) -> int:
        """The one bit (``0`` or ``1``) broadcast this round."""
