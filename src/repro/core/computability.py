"""The computability characterization — Tables 1 and 2 in executable form.

Every cell of the paper's two summary tables is encoded as a
:class:`CellCharacterization`: the class of computable functions, whether
the positive direction is exact (δ0, finite time) or asymptotic only, and
the citation the paper gives.  The benchmark harness replays each cell
experimentally and checks the outcome against this oracle — the library's
equivalent of "reproducing the table".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge
from repro.functions.classes import FunctionClass


@dataclass(frozen=True)
class CellCharacterization:
    """One cell of Table 1 or Table 2.

    ``function_class`` — the exact class of computable functions, or
    ``None`` when the paper leaves the cell open ("?" in Table 2);
    ``exact`` — whether computation is exact for any metric (δ0) or only
    asymptotic; ``note`` — the paper's citation or remark for the cell.
    """

    function_class: Optional[FunctionClass]
    exact: bool
    note: str

    @property
    def open_question(self) -> bool:
        return self.function_class is None

    def label(self) -> str:
        if self.function_class is None:
            return "?"
        suffix = "" if self.exact else " (asymptotic)"
        return self.function_class.label + suffix


_SET = FunctionClass.SET_BASED
_FREQ = FunctionClass.FREQUENCY_BASED
_MULTI = FunctionClass.MULTISET_BASED

_B = CommunicationModel.SIMPLE_BROADCAST
_OD = CommunicationModel.OUTDEGREE_AWARE
_SYM = CommunicationModel.SYMMETRIC
_OP = CommunicationModel.OUTPUT_PORT_AWARE


def _static_table() -> Dict[Tuple[Knowledge, CommunicationModel], CellCharacterization]:
    table: Dict[Tuple[Knowledge, CommunicationModel], CellCharacterization] = {}
    for knowledge in Knowledge:
        cite = {
            Knowledge.NONE: "Hendrickx et al. [20]",
            Knowledge.BOUND_N: "Boldi & Vigna [6]",
            Knowledge.EXACT_N: "Boldi & Vigna [6] (n >= 4)",
            Knowledge.LEADER: "Boldi & Vigna [6], adapted",
        }[knowledge]
        table[(knowledge, _B)] = CellCharacterization(_SET, exact=True, note=cite)
    for model, eq in ((_OD, "eq. (1)"), (_SYM, "eq. (4)"), (_OP, "eq. (3)")):
        table[(Knowledge.NONE, model)] = CellCharacterization(
            _FREQ, exact=True, note=f"Theorem 4.1, {eq}"
        )
        table[(Knowledge.BOUND_N, model)] = CellCharacterization(
            _FREQ, exact=True, note=f"Corollary 4.2, {eq}"
        )
        table[(Knowledge.EXACT_N, model)] = CellCharacterization(
            _MULTI, exact=True, note=f"Corollary 4.3, {eq}"
        )
        table[(Knowledge.LEADER, model)] = CellCharacterization(
            _MULTI, exact=True, note=f"Corollary 4.4, {eq}"
        )
    return table


def _dynamic_table() -> Dict[Tuple[Knowledge, CommunicationModel], CellCharacterization]:
    table: Dict[Tuple[Knowledge, CommunicationModel], CellCharacterization] = {}
    for knowledge in Knowledge:
        table[(knowledge, _B)] = CellCharacterization(
            _SET, exact=True, note="Hendrickx et al. [20]"
        )
    table[(Knowledge.NONE, _OD)] = CellCharacterization(
        None,
        exact=False,
        note="open; Corollary 5.5: frequency-based ∩ continuous-in-frequency is computable",
    )
    table[(Knowledge.BOUND_N, _OD)] = CellCharacterization(
        _FREQ, exact=True, note="Corollary 5.3"
    )
    table[(Knowledge.EXACT_N, _OD)] = CellCharacterization(
        _MULTI, exact=True, note="Corollary 5.4"
    )
    table[(Knowledge.LEADER, _OD)] = CellCharacterization(
        None, exact=False, note="open; §5.5 computes multiset-based asymptotically"
    )
    table[(Knowledge.NONE, _SYM)] = CellCharacterization(
        _FREQ, exact=True, note="Di Luna & Viglietta [26]"
    )
    table[(Knowledge.BOUND_N, _SYM)] = CellCharacterization(
        _FREQ, exact=True, note="CB & LM [11]"
    )
    table[(Knowledge.EXACT_N, _SYM)] = CellCharacterization(
        _MULTI, exact=True, note="CB & LM [11]"
    )
    table[(Knowledge.LEADER, _SYM)] = CellCharacterization(
        _MULTI, exact=True, note="Di Luna & Viglietta [25]"
    )
    return table


_TABLE1 = _static_table()
_TABLE2 = _dynamic_table()

#: Column orders as printed in the paper.
TABLE1_MODELS: List[CommunicationModel] = [_B, _OD, _SYM, _OP]
TABLE2_MODELS: List[CommunicationModel] = [_B, _OD, _SYM]
ROW_ORDER: List[Knowledge] = [
    Knowledge.NONE,
    Knowledge.BOUND_N,
    Knowledge.EXACT_N,
    Knowledge.LEADER,
]


def computable_class(
    model: CommunicationModel, knowledge: Knowledge, dynamic: bool = False
) -> CellCharacterization:
    """The paper's answer for one (model, help, static/dynamic) cell."""
    table = _TABLE2 if dynamic else _TABLE1
    key = (knowledge, model)
    if key not in table:
        raise KeyError(f"no cell for {model} / {knowledge} in table {'2' if dynamic else '1'}")
    return table[key]


def table1() -> Dict[Tuple[Knowledge, CommunicationModel], CellCharacterization]:
    """Table 1 (static strongly connected networks), as a dict copy."""
    return dict(_TABLE1)


def table2() -> Dict[Tuple[Knowledge, CommunicationModel], CellCharacterization]:
    """Table 2 (dynamic networks with finite dynamic diameter), as a dict copy."""
    return dict(_TABLE2)
