"""Convergence detection: declaring that an execution δ-computes a value.

The paper's computability has no termination requirement, so a harness can
only certify convergence *empirically*: for the discrete metric we demand
unanimity that survives a patience window; for the Euclidean metric we
demand the outputs' spread (and, when a target is known, their error) below
a tolerance.  Both detectors report *when* the property first held, which
is what the stabilization-time benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.execution import Execution
from repro.core.metrics import discrete_metric, euclidean_metric, spread


@dataclass
class ConvergenceReport:
    """Outcome of driving an execution to (non-)convergence.

    ``converged`` — the detector's criterion held at the end;
    ``value`` — the common output (exact mode) or the output mean
    (asymptotic mode); ``stabilization_round`` — first round from which the
    criterion held continuously (exact mode: first round of the final
    unanimous streak); ``rounds_run`` — total rounds executed;
    ``outputs`` — final per-agent outputs; ``trace`` — per-round unanimous
    outputs (exact mode) or spreads (asymptotic mode), for plots/benches.
    """

    converged: bool
    value: Any
    stabilization_round: Optional[int]
    rounds_run: int
    outputs: List[Any]
    trace: List[Any] = field(default_factory=list)


def run_until_stable(
    execution: Execution,
    max_rounds: int,
    patience: int = 5,
    target: Any = None,
) -> ConvergenceReport:
    """Exact (δ0) detector: unanimity, unchanged for ``patience`` rounds.

    When ``target`` is given, unanimity on a *different* value does not
    count as convergence (it still counts as stabilization, which the
    report reflects via ``value``).
    """
    if patience < 1:
        raise ValueError("patience must be >= 1")
    streak_value: Any = None
    streak_start: Optional[int] = None
    streak_len = 0
    trace: List[Any] = []
    for _ in range(max_rounds):
        t = execution.step()
        current = execution.unanimous_output()
        trace.append(current)
        if (
            current is not None
            and streak_len > 0
            and discrete_metric(current, streak_value) == 0.0
        ):
            streak_len += 1
        elif current is not None:
            streak_value = current
            streak_start = t
            streak_len = 1
        else:
            streak_value = None
            streak_start = None
            streak_len = 0
        if streak_len >= patience and (
            target is None or discrete_metric(streak_value, target) == 0.0
        ):
            return ConvergenceReport(
                converged=True,
                value=streak_value,
                stabilization_round=streak_start,
                rounds_run=execution.round_number,
                outputs=execution.outputs(),
                trace=trace,
            )
    stabilized = streak_len >= patience
    return ConvergenceReport(
        converged=stabilized and target is None,
        value=streak_value if stabilized else None,
        stabilization_round=streak_start if stabilized else None,
        rounds_run=execution.round_number,
        outputs=execution.outputs(),
        trace=trace,
    )


def run_until_asymptotic(
    execution: Execution,
    max_rounds: int,
    tolerance: float = 1e-6,
    target: Any = None,
    metric: Callable[[Any, Any], float] = euclidean_metric,
    output_filter: Callable[[Any], bool] = None,
    patience: int = 3,
) -> ConvergenceReport:
    """Asymptotic (δ2) detector: spread (and error, if target known) ≤ tolerance.

    ``output_filter`` optionally discards not-yet-meaningful outputs (e.g.
    the transient ``∞`` of the leader Push-Sum variant); rounds where any
    output is filtered never converge.  Stops early once the criterion has
    held for ``patience`` consecutive rounds.
    """
    first_good: Optional[int] = None
    trace: List[float] = []
    for _ in range(max_rounds):
        t = execution.step()
        outs = execution.outputs()
        if output_filter is not None and not all(output_filter(o) for o in outs):
            trace.append(float("inf"))
            first_good = None
            continue
        sp = spread(outs, metric)
        err = max(metric(o, target) for o in outs) if target is not None else 0.0
        trace.append(max(sp, err))
        good = sp <= tolerance and err <= tolerance
        if good and first_good is None:
            first_good = t
        elif not good:
            first_good = None
        if first_good is not None and t - first_good + 1 >= patience:
            break
    outs = execution.outputs()
    converged = first_good is not None
    mean_value: Any = None
    if converged:
        try:
            mean_value = sum(float(o) for o in outs) / len(outs)
        except (TypeError, ValueError):
            mean_value = outs[0]
    return ConvergenceReport(
        converged=converged,
        value=mean_value,
        stabilization_round=first_good,
        rounds_run=execution.round_number,
        outputs=outs,
        trace=trace,
    )
