"""The batch runner: many executions, one plan cache.

Regenerating a table cell never runs *one* execution: it runs the max,
average, and sum probes — usually on the same graph — and the benchmarks
run whole grids of (algorithm, network, inputs) triples.  ``run_batch``
is that shape made first-class: every job in a batch shares one
:class:`PlanCache`, so a graph's delivery schedule is compiled once for
the whole batch instead of once per execution, and each job declares how
it wants to be driven:

* ``runner="rounds"`` — advance a fixed number of rounds;
* ``runner="stable"`` — the δ0 detector
  (:func:`repro.core.convergence.run_until_stable`);
* ``runner="asymptotic"`` — the δ2 detector
  (:func:`repro.core.convergence.run_until_asymptotic`).

Results come back in job order as :class:`BatchResult` records carrying
the finished execution (observers still attached) and, for the detector
runners, the :class:`~repro.core.convergence.ConvergenceReport`.

Since the jobs are independent, the whole batch can also fan out across
a process pool: ``run_batch(jobs, parallel=True)`` delegates to
:mod:`repro.core.engine.parallel` and returns results that are
bit-identical to the sequential path (outputs, reports, deterministic
observer aggregates), merged back in job order.  Setting the
environment variable ``REPRO_PARALLEL=1`` flips the default, which is
how CI forces every batch through the parallel backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.core.agent import Algorithm
from repro.envflags import env_flag
from repro.core.engine.instrumentation import RoundObserver
from repro.core.engine.plan import PlanCache

_RUNNERS = ("rounds", "stable", "asymptotic")


@dataclass
class BatchJob:
    """One (algorithm, network, inputs) triple plus how to drive it."""

    algorithm: Algorithm
    network: Any  # DiGraph or DynamicGraph
    inputs: Optional[Sequence[Any]] = None
    initial_states: Optional[Sequence[Any]] = None
    scramble_seed: Optional[int] = 0
    check_model: bool = True
    #: ``True``/``False`` forces quotient-accelerated execution on/off for
    #: this job; ``None`` defers to ``REPRO_QUOTIENT=1`` in the environment.
    #: Quotient runs fall back to direct execution whenever the Lifting
    #: lemma does not apply (see :mod:`repro.core.engine.quotient`), so
    #: results are identical either way — only the speed changes.
    quotient: Optional[bool] = None
    quotient_ratio: Optional[float] = None
    #: ``True``/``False`` forces the vectorized numpy backend on/off for
    #: this job; ``None`` defers to ``REPRO_VECTOR=1`` in the environment.
    #: Vector runs fall back to the object stepper whenever the algorithm
    #: has no registered kernel (see :mod:`repro.core.engine.vector`), and
    #: an active ``quotient`` wins when both are requested.
    vector: Optional[bool] = None
    runner: str = "rounds"
    rounds: int = 0
    patience: int = 5
    target: Any = None
    tolerance: float = 1e-6
    metric: Optional[Callable[[Any, Any], float]] = None
    output_filter: Optional[Callable[[Any], bool]] = None
    observers: List[RoundObserver] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        if self.runner not in _RUNNERS:
            raise ValueError(f"unknown runner {self.runner!r}; pick one of {_RUNNERS}")
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.runner != "rounds" and self.rounds <= 0:
            # A detector given zero rounds would trivially "converge"
            # without ever stepping the execution.
            raise ValueError(
                f"runner={self.runner!r} needs a positive round budget, got rounds={self.rounds}"
            )


@dataclass
class BatchResult:
    """One finished job: the execution, its outputs, and any report.

    ``execution`` is a live :class:`repro.core.execution.Execution` on
    the sequential path and an
    :class:`~repro.core.engine.parallel.ExecutionSnapshot` when the job
    ran in a pool worker.  ``worker_error`` is ``None`` unless the job's
    worker crashed or timed out and the job was recovered by the
    in-parent sequential fallback (the result itself is still valid).
    """

    job: BatchJob
    execution: Any  # repro.core.execution.Execution or ExecutionSnapshot
    report: Any = None  # ConvergenceReport for the detector runners
    worker_error: Optional[str] = None

    @property
    def outputs(self) -> List[Any]:
        return self.execution.outputs()

    @property
    def converged(self) -> bool:
        """The detector verdict (fixed-round jobs count as converged)."""
        return True if self.report is None else self.report.converged

    @property
    def label(self) -> str:
        return self.job.label


def _execute_job(job: BatchJob, cache: PlanCache) -> BatchResult:
    """Run one job to completion on the given plan cache.

    Observers that also speak the plan-cache tracing protocol (an
    ``on_plan_event`` method, i.e. :class:`repro.core.engine.trace.Tracer`)
    are hooked into the cache for exactly this job's duration — the
    previous hook is restored afterwards, so tracers on a shared
    sequential cache never see each other's compiles.
    """
    # Imported here: the execution façade sits on top of this package.
    from repro.core.convergence import run_until_asymptotic, run_until_stable
    from repro.core.execution import Execution
    from repro.core.metrics import euclidean_metric

    from repro.core.engine.quotient import quotient_enabled_by_env
    from repro.core.engine.vector import vector_enabled_by_env

    quotient = job.quotient
    if quotient is None:
        quotient = quotient_enabled_by_env()
    vector = job.vector
    if vector is None:
        vector = vector_enabled_by_env()
    execution = Execution(
        job.algorithm,
        job.network,
        inputs=job.inputs,
        initial_states=job.initial_states,
        scramble_seed=job.scramble_seed,
        check_model=job.check_model,
        quotient=quotient,
        quotient_ratio=job.quotient_ratio,
        vector=vector,
    )
    execution.share_plan_cache(cache)
    plan_hooks = []
    for observer in job.observers:
        execution.attach(observer)
        hook = getattr(observer, "on_plan_event", None)
        if hook is not None:
            plan_hooks.append(hook)
    previous_hook = cache.trace_hook
    if plan_hooks:
        if len(plan_hooks) == 1:
            cache.trace_hook = plan_hooks[0]
        else:
            def cache_hook(kind, plan, seconds):
                for h in plan_hooks:
                    h(kind, plan, seconds)

            cache.trace_hook = cache_hook
    try:
        if job.runner == "stable":
            report = run_until_stable(
                execution, job.rounds, patience=job.patience, target=job.target
            )
            return BatchResult(job, execution, report)
        if job.runner == "asymptotic":
            report = run_until_asymptotic(
                execution,
                job.rounds,
                tolerance=job.tolerance,
                target=job.target,
                metric=job.metric or euclidean_metric,
                output_filter=job.output_filter,
            )
            return BatchResult(job, execution, report)
        execution.run(job.rounds)
        return BatchResult(job, execution)
    finally:
        if plan_hooks:
            cache.trace_hook = previous_hook


def parallel_enabled_by_env() -> bool:
    """Whether ``REPRO_PARALLEL`` forces the parallel backend on (shared
    truthy/falsy spellings — see :mod:`repro.envflags`)."""
    return env_flag("REPRO_PARALLEL", default=False)


def run_batch(
    jobs: Sequence[BatchJob],
    plan_cache: Optional[PlanCache] = None,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    max_retries: int = 1,
    job_timeout: Optional[float] = None,
    chunk_size: Optional[int] = None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> List[BatchResult]:
    """Run every job, sharing compiled delivery plans across the batch.

    Pass an explicit ``plan_cache`` to share plans beyond one call — the
    table harness reuses a single cache across all cells of a table.

    ``parallel=True`` fans the jobs across a process pool
    (:mod:`repro.core.engine.parallel`): ``workers`` picks the pool size
    (default: one per CPU), ``max_retries`` and ``job_timeout`` set the
    crash/timeout recovery policy, and ``chunk_size`` overrides how many
    jobs ride in one worker task.  Results are bit-identical to the
    sequential path and come back in job order either way.  The default
    ``parallel=None`` resolves to the ``REPRO_PARALLEL=1`` environment
    switch (off otherwise).

    ``quotient`` (``True``/``False``) overrides the quotient-execution
    default for every job that did not set its own ``BatchJob.quotient``;
    ``None`` leaves the per-job settings (and thus the ``REPRO_QUOTIENT``
    environment default) in force.  ``vector`` does the same for the
    vectorized backend and ``BatchJob.vector`` / ``REPRO_VECTOR``.
    """
    if quotient is not None or vector is not None:
        from dataclasses import replace

        def _overridden(job: BatchJob) -> BatchJob:
            overrides = {}
            if quotient is not None and job.quotient is None:
                overrides["quotient"] = quotient
            if vector is not None and job.vector is None:
                overrides["vector"] = vector
            return replace(job, **overrides) if overrides else job

        jobs = [_overridden(job) for job in jobs]
    if parallel is None:
        parallel = parallel_enabled_by_env()
    if parallel:
        from repro.core.engine.parallel import run_batch_parallel

        return run_batch_parallel(
            jobs,
            plan_cache=plan_cache,
            workers=workers,
            max_retries=max_retries,
            job_timeout=job_timeout,
            chunk_size=chunk_size,
        )
    cache = plan_cache if plan_cache is not None else PlanCache()
    return [_execute_job(job, cache) for job in jobs]
