"""Round-level instrumentation: observer hooks on the engine stepper.

The stepper notifies attached observers once per round with a
:class:`RoundRecord` — the compiled plan, the raw payloads, the
post-transition states, and the wall-clock cost of the round.  When no
observer is attached the stepper builds no record at all, so the hot
path pays nothing.

Observers included here cover what the analysis layer actually charts:

* :class:`MessageCountObserver` — messages delivered per round (one per
  in-edge of the round's graph);
* :class:`BandwidthObserver` — the largest payload actually sent each
  round, in the abstract units of :mod:`repro.analysis.bandwidth`;
* :class:`StateDigestObserver` — a per-round digest of the global state
  vector (canonical, so equal-but-reordered sets digest equally), for
  cheap trajectory comparison and cycle detection;
* :class:`SpreadObserver` — the per-round output spread under a
  :mod:`repro.core.metrics` metric, the quantity the δ2 convergence
  detector thresholds;
* :class:`WallTimeObserver` — per-round wall-clock seconds.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, List, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.agent import Algorithm
from repro.core.engine.plan import DeliveryPlan
from repro.core.metrics import canonical_repr, euclidean_metric, spread


class RoundRecord:
    """Everything the engine knows about one completed round."""

    __slots__ = (
        "round_number",
        "plan",
        "algorithm",
        "outgoing",
        "inboxes",
        "states",
        "wall_seconds",
    )

    def __init__(
        self,
        round_number: int,
        plan: DeliveryPlan,
        algorithm: Algorithm,
        outgoing: List[Any],
        inboxes: List[List[Any]],
        states: Tuple[Any, ...],
        wall_seconds: float,
    ):
        self.round_number = round_number
        self.plan = plan
        self.algorithm = algorithm
        self.outgoing = outgoing
        self.inboxes = inboxes
        self.states = states
        self.wall_seconds = wall_seconds

    @property
    def messages_sent(self) -> int:
        """Messages delivered this round — one per in-edge, self-loops included."""
        return self.plan.num_messages

    def outputs(self) -> List[Any]:
        """The agents' output variables after this round."""
        output = self.algorithm.output
        return [output(s) for s in self.states]

    def __repr__(self) -> str:
        return f"RoundRecord(t={self.round_number}, messages={self.messages_sent})"


@runtime_checkable
class RoundObserver(Protocol):
    """Anything with an ``on_round(record)`` method."""

    def on_round(self, record: RoundRecord) -> None: ...


def state_digest(states: Sequence[Any]) -> int:
    """A 32-bit digest of a global state vector.

    Canonicalized first (:func:`repro.core.metrics.canonical_repr`), so two
    state vectors that differ only in set/dict iteration order digest
    identically; stable across processes (no reliance on ``hash``).
    """
    payload = "\x1f".join(canonical_repr(s) for s in states)
    return zlib.crc32(payload.encode("utf-8"))


class MessageCountObserver:
    """Per-round delivered-message counts (and their running total)."""

    def __init__(self) -> None:
        self.counts: List[int] = []

    def on_round(self, record: RoundRecord) -> None:
        self.counts.append(record.messages_sent)

    @property
    def total(self) -> int:
        return sum(self.counts)


class BandwidthObserver:
    """Largest payload actually sent per round, in abstract units.

    Unit accounting is :func:`repro.analysis.bandwidth.payload_units`
    (imported lazily — the analysis layer sits above the engine).
    """

    def __init__(self) -> None:
        self.peaks: List[int] = []
        self._payload_units = None

    def on_round(self, record: RoundRecord) -> None:
        if self._payload_units is None:
            from repro.analysis.bandwidth import payload_units

            self._payload_units = payload_units
        units = self._payload_units
        if record.plan.num_messages == 0:  # pragma: no cover - graphs have loops
            self.peaks.append(0)
            return
        if not record.outgoing:
            self.peaks.append(0)
            return
        if isinstance(record.outgoing[0], list):  # port model: one list per vertex
            self.peaks.append(
                max((max((units(m) for m in msgs), default=0)) for msgs in record.outgoing)
            )
        else:
            self.peaks.append(max(units(m) for m in record.outgoing))


class StateDigestObserver:
    """Per-round canonical digests of the global state vector."""

    def __init__(self) -> None:
        self.digests: List[int] = []

    def on_round(self, record: RoundRecord) -> None:
        self.digests.append(state_digest(record.states))


class SpreadObserver:
    """Per-round max pairwise output distance (0 means consensus)."""

    def __init__(self, metric: Callable[[Any, Any], float] = euclidean_metric) -> None:
        self.metric = metric
        self.spreads: List[float] = []

    def on_round(self, record: RoundRecord) -> None:
        self.spreads.append(spread(record.outputs(), self.metric))


class WallTimeObserver:
    """Per-round wall-clock seconds, as measured around the engine step."""

    def __init__(self) -> None:
        self.seconds: List[float] = []

    def on_round(self, record: RoundRecord) -> None:
        self.seconds.append(record.wall_seconds)

    @property
    def total(self) -> float:
        return sum(self.seconds)
