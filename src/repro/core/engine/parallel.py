"""Process-parallel batch execution: independent jobs fanned across workers.

Every :class:`~repro.core.engine.batch.BatchJob` is self-contained — its
own algorithm instance, its own network, its own scramble stream — so a
batch is embarrassingly parallel.  This module is the backend behind
``run_batch(jobs, parallel=True)`` and the generic :func:`parallel_map`
used by the table/sweep harnesses.  Design points:

* **Worker model.**  A ``concurrent.futures.ProcessPoolExecutor`` over
  contiguous chunks of job indices.  Under the ``fork`` start method the
  payload (jobs, or a function + items) is published in a module global
  immediately before the pool forks, so workers read it from inherited
  memory — closures and lambdas that standard pickling rejects still
  reach the workers.  On spawn-only platforms the payload is pickled
  instead (and an unpicklable payload degrades to the sequential path).
* **Per-worker plan cache.**  The pool initializer gives every worker
  process its own :class:`~repro.core.engine.plan.PlanCache`, reused
  across all chunks that worker executes — the batch-wide plan sharing
  of the sequential runner, minus cross-process coordination.
* **Determinism.**  Each job runs with its own scramble seed exactly as
  the sequential runner would, workers ship back a serialized snapshot
  (outputs, final states, round number, :class:`ConvergenceReport`,
  post-run observer state), and the parent merges snapshots **in job
  order** — so outputs, reports, and deterministic observer aggregates
  are bit-identical to ``parallel=False``.  (Wall-clock observers report
  worker-side timings; those are inherently non-deterministic either
  way.)
* **Robustness.**  A chunk whose worker crashes is resubmitted to a
  fresh pool up to ``max_retries`` times; a chunk that exhausts its
  retries, exceeds ``job_timeout`` seconds per job, or whose results
  fail to serialize is re-run sequentially **in the parent process**
  (so the batch always completes), and every job recovered that way
  carries the failure string in ``BatchResult.worker_error``.
* **No nesting.**  Pool workers never re-enter the parallel backend:
  ``run_batch``/``parallel_map`` calls made inside a worker (the table
  cells do this) run sequentially there.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine.plan import PlanCache

# Set by the pool initializer in worker processes only; guards against
# nested pools (daemonic workers cannot fork grandchildren).
_IN_WORKER = False

# Fork-inherited payload: published in the parent for the duration of one
# scatter so freshly forked workers see it without pickling.
_FORK_PAYLOAD: Any = None

# The worker-local plan cache, created once per worker process.
_WORKER_CACHE: Optional[PlanCache] = None


def in_worker() -> bool:
    """Whether this process is a pool worker of the parallel backend."""
    return _IN_WORKER


def default_workers() -> int:
    """Default pool size: one worker per available CPU."""
    return os.cpu_count() or 1


def _init_worker() -> None:
    global _IN_WORKER, _WORKER_CACHE
    _IN_WORKER = True
    _WORKER_CACHE = PlanCache()


class ExecutionSnapshot:
    """A finished worker-side execution, as seen from the parent.

    Stands in for :class:`repro.core.execution.Execution` on parallel
    :class:`~repro.core.engine.batch.BatchResult` records: it carries the
    final ``outputs()``, ``states`` (``None`` when the worker's states
    were not serializable), and ``round_number``, plus the parent's own
    ``algorithm`` reference.  It cannot be stepped further.
    """

    __slots__ = ("algorithm", "states", "round_number", "_outputs")

    def __init__(self, algorithm: Any, states: Optional[List[Any]], round_number: int, outputs: List[Any]):
        self.algorithm = algorithm
        self.states = states
        self.round_number = round_number
        self._outputs = list(outputs)

    def outputs(self) -> List[Any]:
        return list(self._outputs)

    def __repr__(self) -> str:
        return f"ExecutionSnapshot(round={self.round_number}, n={len(self._outputs)})"


def _worker_chunk(kind: str, indices: Sequence[int], blob: Optional[bytes]) -> List[Tuple[int, Any]]:
    """Run one chunk inside a pool worker; returns ``(index, outcome)`` pairs."""
    payload = _FORK_PAYLOAD if blob is None else pickle.loads(blob)
    if kind == "batch":
        from repro.core.engine.batch import _execute_job

        jobs = payload
        cache = _WORKER_CACHE if _WORKER_CACHE is not None else PlanCache()
        out: List[Tuple[int, Any]] = []
        for i in indices:
            job = jobs[i]
            result = _execute_job(job, cache)
            execution = result.execution
            try:  # states may hold unserializable payloads; outputs must not
                from repro.store.snapshot import copy_states

                states = copy_states(execution.states)
            except Exception:
                states = None
            out.append(
                (i, (result.outputs, states, execution.round_number, result.report, list(job.observers)))
            )
        return out
    fn, items = payload
    return [(i, fn(items[i])) for i in indices]


def _fresh_executor(workers: int, ctx) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx, initializer=_init_worker)


def _retire_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on stragglers (crashed or hung)."""
    try:
        for process in list(getattr(executor, "_processes", {}).values()):
            process.terminate()
    except Exception:  # pragma: no cover - best-effort cleanup
        pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - pre-3.9 signature
        executor.shutdown(wait=False)


def _chunk_indices(n: int, workers: int, chunk_size: Optional[int]) -> List[List[int]]:
    size = chunk_size if chunk_size else max(1, math.ceil(n / (workers * 2)))
    return [list(range(start, min(start + size, n))) for start in range(0, n, size)]


def _scatter(
    kind: str,
    payload: Any,
    n_items: int,
    workers: int,
    max_retries: int,
    timeout: Optional[float],
    chunk_size: Optional[int],
    run_inline: Callable[[Sequence[int]], List[Tuple[int, Any]]],
) -> Tuple[Dict[int, Any], Dict[int, str]]:
    """Fan chunks across a pool; returns ``(outcomes, errors)`` by index.

    ``run_inline`` is the in-parent sequential fallback for a chunk; any
    index recovered through it gets the triggering failure recorded in
    ``errors``.
    """
    outcomes: Dict[int, Any] = {}
    errors: Dict[int, str] = {}
    if n_items == 0:
        return outcomes, errors

    blob: Optional[bytes] = None
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - exercised only on spawn-only platforms
        ctx = multiprocessing.get_context("spawn")
        try:
            blob = pickle.dumps(payload)
        except Exception:
            for i, value in run_inline(list(range(n_items))):
                outcomes[i] = value
            return outcomes, errors

    global _FORK_PAYLOAD
    _FORK_PAYLOAD = payload if blob is None else None
    executor: Optional[ProcessPoolExecutor] = None
    try:
        pending: List[Tuple[List[int], int]] = [
            (chunk, 0) for chunk in _chunk_indices(n_items, workers, chunk_size)
        ]
        while pending:
            if executor is None:
                executor = _fresh_executor(workers, ctx)
            in_flight = [
                (executor.submit(_worker_chunk, kind, chunk, blob), chunk, attempts)
                for chunk, attempts in pending
            ]
            pending = []
            dirty = False
            for future, chunk, attempts in in_flight:
                chunk_timeout = timeout * len(chunk) if timeout is not None else None
                try:
                    for i, value in future.result(chunk_timeout):
                        outcomes[i] = value
                    continue
                except _FutureTimeout:
                    reason = (
                        f"job timeout: chunk of {len(chunk)} exceeded "
                        f"{chunk_timeout:.3g}s in the worker pool"
                    )
                    dirty = True
                    retryable = False
                except BrokenProcessPool as exc:
                    reason = f"worker crashed: {type(exc).__name__}: {exc}"
                    dirty = True
                    retryable = True
                except Exception as exc:  # task error or unserializable result
                    reason = f"{type(exc).__name__}: {exc}"
                    retryable = True
                if retryable and attempts < max_retries:
                    pending.append((chunk, attempts + 1))
                else:
                    for i, value in run_inline(chunk):
                        outcomes[i] = value
                    for i in chunk:
                        errors[i] = reason
            if dirty and executor is not None:
                _retire_executor(executor)
                executor = None
    finally:
        _FORK_PAYLOAD = None
        if executor is not None:
            executor.shutdown(wait=True)
    return outcomes, errors


def run_batch_parallel(
    jobs: Sequence[Any],
    plan_cache: Optional[PlanCache] = None,
    workers: Optional[int] = None,
    max_retries: int = 1,
    job_timeout: Optional[float] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Run a batch across a process pool; results in job order.

    Semantics match ``run_batch(jobs)`` exactly on outputs, reports, and
    deterministic observer aggregates (see the module docstring for the
    determinism and robustness guarantees).  ``plan_cache`` only backs
    the in-parent fallback path — pool workers keep their own caches.
    Collapses to the sequential runner inside pool workers, for batches
    of fewer than two jobs, and for pools of fewer than two workers.
    """
    from repro.core.engine.batch import BatchResult, _execute_job

    jobs = list(jobs)
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if job_timeout is not None and job_timeout <= 0:
        raise ValueError("job_timeout must be positive (or None)")
    workers = default_workers() if workers is None else workers
    fallback_cache = plan_cache if plan_cache is not None else PlanCache()

    def run_inline(indices: Sequence[int]) -> List[Tuple[int, Any]]:
        return [(i, _execute_job(jobs[i], fallback_cache)) for i in indices]

    if _IN_WORKER or workers < 2 or len(jobs) < 2:
        return [result for _i, result in run_inline(list(range(len(jobs))))]

    outcomes, errors = _scatter(
        "batch", jobs, len(jobs), workers, max_retries, job_timeout, chunk_size, run_inline
    )
    merged: List[Any] = []
    for i, job in enumerate(jobs):
        outcome = outcomes[i]
        if isinstance(outcome, BatchResult):  # recovered in-parent: already real
            outcome.worker_error = errors.get(i)
            merged.append(outcome)
            continue
        outputs, states, round_number, report, worker_observers = outcome
        for mine, theirs in zip(job.observers, worker_observers):
            try:  # adopt the worker-side recordings into the caller's objects
                mine.__dict__.clear()
                mine.__dict__.update(theirs.__dict__)
            except AttributeError:  # pragma: no cover - slotted observer
                pass
        snapshot = ExecutionSnapshot(job.algorithm, states, round_number, outputs)
        merged.append(BatchResult(job, snapshot, report, worker_error=errors.get(i)))
    return merged


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    max_retries: int = 1,
    task_timeout: Optional[float] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """``[fn(x) for x in items]`` across a process pool, in item order.

    The deterministic-merge/retry/fallback machinery of the batch
    backend, for arbitrary independent tasks — the table harness fans
    whole cells out through this, and the analysis sweeps fan their
    configurations.  ``fn`` and each item must be serializable on
    spawn-only platforms; under ``fork`` they only need to be
    serializable in the *return* direction.  Failed chunks fall back to
    running ``fn`` in the parent, so exceptions raised by ``fn``
    ultimately propagate exactly as in the list comprehension.
    """
    items = list(items)
    workers = default_workers() if workers is None else workers
    if _IN_WORKER or workers < 2 or len(items) < 2:
        return [fn(x) for x in items]

    def run_inline(indices: Sequence[int]) -> List[Tuple[int, Any]]:
        return [(i, fn(items[i])) for i in indices]

    outcomes, _errors = _scatter(
        "map", (fn, items), len(items), workers, max_retries, task_timeout, chunk_size, run_inline
    )
    return [outcomes[i] for i in range(len(items))]
