"""Topology plans: a round's graph compiled to a flat delivery schedule.

The naive executor re-walks ``in_edges`` — and re-checks the §2.1
self-loop assumption edge by edge — every round, even on a static network
where the answer never changes.  A :class:`DeliveryPlan` does that walk
once and records the result as flat tuples the transport layer can
consume with nothing but list indexing:

* ``sources[j]`` — the source vertex of each in-edge of receiver ``j``,
  in in-edge order (the pre-scramble delivery order);
* ``source_ports[j]`` — the output port each of those edges occupies at
  its source (only consulted by the port-aware transport);
* ``outdegrees[v]`` — ``d⁻(v)``, what outdegree-aware sending functions
  see;
* the model preconditions (``all_self_loops``, lazily ``symmetric``),
  hoisted out of the per-round loop.

Plans are immutable and graph-identity keyed: :class:`PlanCache` maps
``(id(graph), plan_epoch)`` to a compiled plan while holding a strong
reference to the graph (so the id cannot be recycled underneath the
cache) and evicts least-recently-used entries beyond its capacity —
which is exactly the invalidation a dynamic network that materializes a
fresh ``DiGraph`` per round needs.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional, Tuple

from repro.core import memo
from repro.graphs.digraph import DiGraph
from repro.graphs.properties import is_symmetric


class DeliveryPlan:
    """One communication graph, compiled for repeated delivery."""

    __slots__ = (
        "graph",
        "n",
        "num_messages",
        "outdegrees",
        "sources",
        "source_ports",
        "all_self_loops",
        "_symmetric",
        "_csr",
    )

    def __init__(self, graph: DiGraph):
        self.graph = graph
        n = graph.n
        self.n = n
        self.num_messages = graph.num_edges
        self.outdegrees: Tuple[int, ...] = tuple(graph.outdegree(v) for v in range(n))
        self.sources: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(e.source for e in graph.in_edges(j)) for j in range(n)
        )
        self.source_ports: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(graph.port_of(e) for e in graph.in_edges(j)) for j in range(n)
        )
        loops = [False] * n
        for e in graph.edges:
            if e.source == e.target:
                loops[e.source] = True
        self.all_self_loops: bool = all(loops)
        self._symmetric: Optional[bool] = None
        # Lazily attached by repro.core.engine.vector.csr_for: the same
        # delivery schedule as flat numpy index arrays.  Kept on the plan
        # so CSR compilation amortizes exactly like the plan itself does
        # (once per distinct graph, shared through the memo layer).
        self._csr = None

    @property
    def symmetric(self) -> bool:
        """Whether the compiled graph is symmetric (computed on first use:
        only the ``SYMMETRIC`` model ever asks)."""
        if self._symmetric is None:
            self._symmetric = is_symmetric(self.graph)
        return self._symmetric

    def __repr__(self) -> str:
        return f"DeliveryPlan(n={self.n}, messages={self.num_messages})"


def compile_plan(graph: DiGraph) -> DeliveryPlan:
    """Compile ``graph`` into a fresh :class:`DeliveryPlan`."""
    return DeliveryPlan(graph)


class PlanCache:
    """LRU cache of compiled plans, shared across executions.

    Keys are ``(id(graph), epoch)``: graphs are immutable, so object
    identity is a sound cache key as long as the graph stays alive — the
    cache guarantees that by keeping the graph referenced from its plan.
    The ``epoch`` component is the owning dynamic graph's
    ``plan_epoch`` (see :class:`repro.dynamics.dynamic_graph.DynamicGraph`);
    bumping it retires every plan compiled under the old epoch without
    the cache having to know why.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("a plan cache needs room for at least one plan")
        self.maxsize = maxsize
        # key -> (graph, plan).  The graph reference is load-bearing: the
        # key is id(graph), and entries adopted from the memo layer carry
        # a plan whose ``.graph`` is a content-equal *twin* — without the
        # explicit reference the keyed graph could be collected and its
        # id recycled by an unrelated graph, turning a stale entry into a
        # wrong answer.
        self._plans: "OrderedDict[Tuple[int, int], Tuple[DiGraph, DeliveryPlan]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Optional tracing callback ``hook(kind, plan, seconds)`` with
        #: ``kind`` in {"plan_hit", "plan_compile"} — see
        #: :meth:`repro.core.engine.trace.Tracer.on_plan_event`.  ``None``
        #: (the default) keeps the lookup path down to one attribute test.
        self.trace_hook = None

    def plan_for(self, graph: DiGraph, epoch: int = 0) -> DeliveryPlan:
        """The compiled plan for ``graph``, compiling on first sight.

        On an identity miss, graphs that already carry a content
        fingerprint (interned or manifested ones — anonymous graphs pay
        one attribute test and nothing more) are looked up in the
        process-wide memo layer, which can hand back a plan compiled from
        a content-equal twin; only if that also misses is a new plan
        compiled, and then published back to the memo.
        """
        key = (id(graph), epoch)
        plans = self._plans
        hook = self.trace_hook
        entry = plans.get(key)
        if entry is not None:
            self.hits += 1
            plans.move_to_end(key)
            plan = entry[1]
            if hook is not None:
                hook("plan_hit", plan, 0.0)
            return plan
        if graph._fingerprint is not None:
            plan = memo.cached_plan(graph)
            if plan is not None:
                # A content hit: adopt the memoized plan under this
                # graph's identity so the next round is a plain hit.
                self.hits += 1
                plans[key] = (graph, plan)
                if len(plans) > self.maxsize:
                    plans.popitem(last=False)
                if hook is not None:
                    hook("plan_hit", plan, 0.0)
                return plan
        self.misses += 1
        if hook is None:
            plan = DeliveryPlan(graph)
        else:
            started = time.perf_counter()
            plan = DeliveryPlan(graph)
            hook("plan_compile", plan, time.perf_counter() - started)
        plans[key] = (graph, plan)
        if len(plans) > self.maxsize:
            plans.popitem(last=False)
        memo.store_plan(graph, plan)
        return plan

    def invalidate(self, graph: DiGraph) -> None:
        """Drop every cached plan compiled from ``graph`` (any epoch)."""
        doomed = [key for key in self._plans if key[0] == id(graph)]
        for key in doomed:
            del self._plans[key]

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self._plans)}/{self.maxsize} plans, "
            f"{self.hits} hits, {self.misses} misses)"
        )
