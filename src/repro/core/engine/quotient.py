"""Quotient-accelerated execution: run the minimum base, lift on demand.

Lemma 3.1 (the Lifting lemma) says executions lift along fibrations: if
``φ : G -> B`` is a fibration and an algorithm runs on ``B`` from a base
configuration, then copying every base vertex's trajectory across its
fibre *is* an execution on ``G`` — round for round, bit for bit.  For a
symmetric graph with a small minimum base (a 2^16-vertex hypercube has a
one-vertex base) that collapses the per-round cost from ``O(n + m)`` to
the size of the base.

:class:`QuotientExecution` is that lemma made operational.  It exposes
the full :class:`~repro.core.execution.Execution` façade but, when the
*activation checks* pass, drives a private base-graph execution and lifts
the state vector lazily via
:func:`~repro.fibrations.lifting.lift_global_state` only when someone
actually reads ``states`` / ``outputs``.  The base comes from the PR-4
:func:`~repro.core.memo.memoized_minimum_base`, so repeated runs on
content-equal graphs share one refinement.

Activation falls back to plain direct execution (same trajectory, no
speedup, ``quotient_active == False``) whenever the lemma does not apply
or would not pay:

* the network is dynamic (bases would change per round);
* the model is ``OUTPUT_PORT_AWARE`` (port numberings do not commute
  with fibrations, so per-port sends on the base are not faithful);
* the model is not *outdegree-message-preserving*
  (:attr:`~repro.core.models.CommunicationModel.outdegree_message_preserving`
  is ``False`` — today exactly ``ONE_BIT_BROADCAST``): the bit-width
  restriction is a channel property the quotient layer does not assume
  to commute with fibrations, so one-bit runs always take this checked
  fallback instead of activating;
* the base is trivial — ``base.n / g.n`` above the ratio threshold
  (default ``0.5``, overridable per call or via ``REPRO_QUOTIENT_RATIO``);
* the model sees outdegrees but the fibration does not preserve them
  (``outdeg_G(v) != outdeg_B(φ(v))`` for some ``v``);
* ``check_model`` is requested and the *full* graph violates the model's
  preconditions (self-loops, symmetry for ``SYMMETRIC``) — the direct
  stepper then raises exactly as it always did.  Note the checks must run
  on ``G``: the base of a symmetric graph need not be symmetric (a star's
  base is an asymmetric two-vertex graph), so the base execution itself
  always runs with ``check_model=False``;
* the initial configuration is not fibrewise-constant
  (:func:`~repro.fibrations.lifting.pushdown_valuation` raises) — such a
  configuration is outside the image of the lift.

One behavioral caveat is inherent: the delivery-scramble stream of a base
run differs from a full-graph run's, so quotient and direct trajectories
are bit-identical exactly when transitions are invariant under inbox
order — which anonymity already demands of every algorithm in this
repository.  The property suite pins the bit-identity on order-invariant
algorithms across all four communication models.

Module-level counters (``quotient_stats`` / ``publish_quotient_metrics``)
mirror the memo layer's: activations, fallbacks by reason, and lazy
lifts, so ``python -m repro trace`` and the provenance manifests can
report how much of a workload actually rode the quotient.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

from repro.core.execution import Execution
from repro.envflags import env_flag
from repro.graphs.digraph import DiGraph

#: Default activation threshold: fall back when base.n/g.n exceeds this.
DEFAULT_QUOTIENT_RATIO = 0.5

#: Environment knobs: ``REPRO_QUOTIENT=1`` turns quotient execution on by
#: default for the batch/table/CLI entry points; ``REPRO_QUOTIENT_RATIO``
#: overrides the activation threshold.
QUOTIENT_ENV = "REPRO_QUOTIENT"
QUOTIENT_RATIO_ENV = "REPRO_QUOTIENT_RATIO"

_STATS: Dict[str, int] = {"activations": 0, "fallbacks": 0, "lifts": 0}
_FALLBACK_REASONS: Dict[str, int] = {}


def quotient_enabled_by_env() -> bool:
    """Whether ``REPRO_QUOTIENT`` turns quotient execution on by default
    (shared truthy/falsy spellings — see :mod:`repro.envflags`)."""
    return env_flag(QUOTIENT_ENV, default=False)


def default_quotient_ratio() -> float:
    """The activation threshold: ``REPRO_QUOTIENT_RATIO`` or 0.5."""
    raw = os.environ.get(QUOTIENT_RATIO_ENV, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_QUOTIENT_RATIO


def clear_quotient_stats() -> None:
    """Zero the counters (tests and benchmarks)."""
    for key in _STATS:
        _STATS[key] = 0
    _FALLBACK_REASONS.clear()


def quotient_stats() -> Dict[str, Any]:
    """Process-local counters: activations, fallbacks (by reason), lifts."""
    return {
        "activations": _STATS["activations"],
        "fallbacks": _STATS["fallbacks"],
        "lifts": _STATS["lifts"],
        "fallback_reasons": dict(sorted(_FALLBACK_REASONS.items())),
    }


def publish_quotient_metrics(registry, baseline: Optional[Dict[str, Any]] = None) -> None:
    """Fold quotient counters into a ``MetricsRegistry``
    (``quotient_activations`` / ``quotient_fallbacks`` / ``quotient_lifts``),
    scoped to the delta since ``baseline`` (a prior :func:`quotient_stats`)."""
    base = baseline or {}
    stats = quotient_stats()
    for name in ("activations", "fallbacks", "lifts"):
        registry.counter(f"quotient_{name}").inc(stats[name] - base.get(name, 0))


def _record_fallback(reason: str) -> str:
    _STATS["fallbacks"] += 1
    _FALLBACK_REASONS[reason] = _FALLBACK_REASONS.get(reason, 0) + 1
    return reason


class QuotientExecution(Execution):
    """An :class:`Execution` that transparently runs on the minimum base.

    Construct it directly, or — equivalently — via
    ``Execution(..., quotient=True)``.  The full façade behaves exactly
    like a direct execution; ``quotient_active`` reports whether the
    activation checks passed, ``quotient_fallback_reason`` names the
    first one that failed, ``base_execution`` and ``minimum_base`` expose
    the machinery for inspection.
    """

    def __init__(
        self,
        algorithm,
        network,
        inputs: Optional[Sequence[Any]] = None,
        initial_states: Optional[Sequence[Any]] = None,
        scramble_seed: Optional[int] = 0,
        check_model: bool = True,
        *,
        quotient: bool = True,
        quotient_ratio: Optional[float] = None,
        vector: bool = False,
    ):
        del vector  # quotient takes precedence when both are requested
        super().__init__(
            algorithm,
            network,
            inputs=inputs,
            initial_states=initial_states,
            scramble_seed=scramble_seed,
            check_model=check_model,
        )
        self.minimum_base = None
        self.base_execution: Optional[Execution] = None
        self.quotient_fallback_reason: Optional[str] = None
        self._lifted_round = 0  # full stepper holds the round-0 states
        if quotient:
            self._activate(quotient_ratio)
        else:
            self.quotient_fallback_reason = _record_fallback("disabled")

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #

    def _activate(self, quotient_ratio: Optional[float]) -> None:
        """Run the activation checks; on success build the base execution."""
        from repro.core.memo import memoized_minimum_base
        from repro.fibrations.lifting import pushdown_valuation
        from repro.graphs.properties import is_symmetric

        model = self.algorithm.model
        if not self._static:
            self.quotient_fallback_reason = _record_fallback("dynamic-network")
            return
        if model.static_only:
            # OUTPUT_PORT_AWARE: port numberings need not commute with the
            # fibration, so per-port sends on the base are not faithful.
            self.quotient_fallback_reason = _record_fallback("output-port-model")
            return
        if not model.outdegree_message_preserving:
            # ONE_BIT_BROADCAST: the single-bit channel restriction is not
            # assumed faithful across a fibration, so the quotient layer
            # never activates for it — the conservative checked fallback.
            self.quotient_fallback_reason = _record_fallback(
                "model-not-message-preserving"
            )
            return
        graph: DiGraph = self.network.graph_at(1)
        mb = memoized_minimum_base(graph)
        try:
            base_states = pushdown_valuation(mb.fibration, self._stepper.states)
        except ValueError:
            # The initial configuration is not constant on the value-free
            # base's fibres — but it may still have lift structure.  Refine:
            # the minimum base of the graph *valued by the initial states*
            # (joined with any existing values) is the coarsest equitable
            # partition on which the configuration IS fibrewise-constant.
            mb, base_states = self._refined_base(graph)
            if mb is None:
                self.quotient_fallback_reason = _record_fallback(
                    "inputs-not-fibrewise-constant"
                )
                return
        ratio = default_quotient_ratio() if quotient_ratio is None else float(quotient_ratio)
        if mb.base.n >= graph.n:
            self.quotient_fallback_reason = _record_fallback("trivial-base")
            return
        if mb.base.n / graph.n > ratio:
            self.quotient_fallback_reason = _record_fallback("base-too-large")
            return
        if model.sees_outdegree and any(
            graph.outdegree(v) != mb.base.outdegree(mb.classes[v])
            for v in graph.vertices()
        ):
            # The base quotients by in-neighborhoods; outdegrees need not
            # survive, and when they don't the base run would hand the
            # sending function the wrong ``d``.
            self.quotient_fallback_reason = _record_fallback("outdegree-not-preserved")
            return
        if self._check_model:
            # Model preconditions are properties of the FULL graph; the
            # base may satisfy them vacuously (or violate them) even when
            # G does the opposite, so check G here and run the base
            # unchecked.  On violation, fall back: the direct stepper
            # raises the canonical error at the first step.
            if not graph.all_have_self_loops():
                self.quotient_fallback_reason = _record_fallback("model-violation")
                return
            if model.requires_symmetric_network and not is_symmetric(graph):
                self.quotient_fallback_reason = _record_fallback("model-violation")
                return
        self.minimum_base = mb
        self.base_execution = Execution(
            self.algorithm,
            mb.base,
            initial_states=base_states,
            scramble_seed=self._scramble_seed,
            check_model=False,
        )
        _STATS["activations"] += 1

    def adopt_partition(self, classes: Sequence[int]) -> "QuotientExecution":
        """Pin this execution to an explicit fibration partition.

        ``classes`` (one base-vertex id per full-graph vertex) must be an
        equitable partition of the static network on which the current
        configuration is fibrewise-constant; both are verified and a
        ``ValueError`` raised otherwise.  The snapshot layer uses this to
        resume a quotient run on exactly the fibration it was checkpointed
        with, even when fresh activation would land on a different (e.g.
        coarser) base — the scramble stream only continues bit-identically
        on a base of the same size.
        """
        from repro.fibrations.lifting import pushdown_valuation
        from repro.fibrations.minimum_base import quotient_by_partition

        if not self._static:
            raise ValueError("quotient execution needs a static network")
        graph: DiGraph = self.network.graph_at(1)
        mb = quotient_by_partition(graph, list(classes), verify=True)
        full_states = self.states  # lifts first if currently active
        base_states = pushdown_valuation(mb.fibration, full_states)
        observers = list(self.observers)
        was_active = self.quotient_active
        base = Execution(
            self.algorithm,
            mb.base,
            initial_states=base_states,
            scramble_seed=self._scramble_seed,
            check_model=False,
        )
        for observer in observers:
            base.attach(observer)
        self.minimum_base = mb
        self.base_execution = base
        self.quotient_fallback_reason = None
        self._stepper.states = full_states
        self._lifted_round = base.round_number
        if not was_active:
            _STATS["activations"] += 1
        return self

    def _refined_base(self, graph: DiGraph):
        """The minimum base refined by the initial configuration.

        Joins the initial states into the vertex valuation (as canonical
        reprs — the partition only needs their equality classes, and keying
        by repr keeps arbitrary state payloads out of the graph
        fingerprint) and quotients again.  Returns ``(None, None)`` when
        even the refined base cannot carry the configuration (unequal
        states whose canonical reprs collide are the only way).
        """
        from repro.core.memo import memoized_minimum_base
        from repro.core.metrics import canonical_repr
        from repro.fibrations.lifting import pushdown_valuation

        state_keys = [canonical_repr(s) for s in self._stepper.states]
        if graph.values is None:
            joined = state_keys
        else:
            joined = [(v, k) for v, k in zip(graph.values, state_keys)]
        mb = memoized_minimum_base(graph.with_values(joined))
        try:
            return mb, pushdown_valuation(mb.fibration, self._stepper.states)
        except ValueError:
            return None, None

    # ------------------------------------------------------------------ #
    # façade: delegate to the base run when active
    # ------------------------------------------------------------------ #

    @property
    def quotient_active(self) -> bool:
        """Whether this run actually executes on the minimum base."""
        return self.base_execution is not None

    @property
    def base_n(self) -> int:
        """Vertices actually simulated per round (``n`` when inactive)."""
        return self.minimum_base.base.n if self.quotient_active else self.n

    def _lift(self) -> None:
        """Refresh the cached full state vector from the base run."""
        base = self.base_execution
        if self._lifted_round != base.round_number:
            from repro.fibrations.lifting import lift_global_state

            self._stepper.states = lift_global_state(
                self.minimum_base.fibration, base.states
            )
            self._stepper.round_number = base.round_number
            self._lifted_round = base.round_number
            _STATS["lifts"] += 1

    @property
    def states(self) -> List[Any]:
        if self.quotient_active:
            self._lift()
        return self._stepper.states

    @states.setter
    def states(self, new_states: Sequence[Any]) -> None:
        if self.quotient_active:
            from repro.fibrations.lifting import pushdown_valuation

            # Raises when the new configuration is not fibrewise-constant
            # — such a configuration cannot be reached by any base run.
            base_states = pushdown_valuation(self.minimum_base.fibration, list(new_states))
            self.base_execution.states = base_states
            self._lifted_round = self.base_execution.round_number
        self._stepper.states = list(new_states)

    @property
    def round_number(self) -> int:
        if self.quotient_active:
            return self.base_execution.round_number
        return self._stepper.round_number

    @property
    def plan_cache(self):
        if self.quotient_active:
            return self.base_execution.plan_cache
        return self._stepper.plan_cache

    def share_plan_cache(self, cache) -> "QuotientExecution":
        if self.quotient_active:
            self.base_execution.share_plan_cache(cache)
        else:
            self._stepper.plan_cache = cache
        return self

    @property
    def observers(self):
        if self.quotient_active:
            return self.base_execution.observers
        return self._stepper.observers

    def attach(self, observer) -> "QuotientExecution":
        if self.quotient_active:
            # Observers ride the base run: they see base-sized rounds
            # (that is the whole point) with the true round numbering.
            self.base_execution.attach(observer)
        else:
            self._stepper.attach(observer)
        return self

    def detach(self, observer) -> "QuotientExecution":
        if self.quotient_active:
            self.base_execution.detach(observer)
        else:
            self._stepper.detach(observer)
        return self

    def step(self) -> int:
        if self.quotient_active:
            return self.base_execution.step()
        return self._stepper.step()

    def run(self, rounds: int) -> "QuotientExecution":
        if self.quotient_active:
            self.base_execution.run(rounds)
        else:
            super().run(rounds)
        return self

    def outputs(self) -> List[Any]:
        if self.quotient_active:
            from repro.fibrations.lifting import lift_valuation

            output = self.algorithm.output
            base_outputs = [output(s) for s in self.base_execution.states]
            return lift_valuation(self.minimum_base.fibration, base_outputs)
        return super().outputs()

    def unanimous_output(self) -> Any:
        if self.quotient_active:
            # The fibration is surjective, so unanimity on the base IS
            # unanimity on the full graph.
            return self.base_execution.unanimous_output()
        return super().unanimous_output()

    def __repr__(self) -> str:
        if self.quotient_active:
            return (
                f"QuotientExecution({self.algorithm.name()}, n={self.n}, "
                f"base_n={self.base_n}, round={self.round_number})"
            )
        return (
            f"QuotientExecution({self.algorithm.name()}, n={self.n}, "
            f"fallback={self.quotient_fallback_reason!r}, round={self.round_number})"
        )
