"""The naive reference interpreter: an executable specification.

This is (essentially) the pre-engine ``Execution.step()`` kept alive on
purpose: it re-derives the topology from ``in_edges`` every round,
re-dispatches on the algorithm flavor per vertex, and checks the model
preconditions edge by edge.  Two consumers rely on it:

* the engine-equivalence property tests, which assert that the compiled
  fast path and this interpreter produce bit-identical state
  trajectories across all four communication models, static and dynamic
  networks, with and without scrambling;
* ``benchmarks/bench_engine.py``, which uses it (with
  ``legacy_scramble=True``, reinstating the old fresh-``Random``-per-
  agent-per-round seeding) as the "old executor" baseline for the
  rounds/sec comparison.

It deliberately shares no code with the engine layers beyond the agent
interfaces.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Union

from repro.core.agent import (
    Algorithm,
    BroadcastAlgorithm,
    OneBitAlgorithm,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.properties import is_symmetric
from repro.dynamics.dynamic_graph import DynamicGraph, StaticAsDynamic


class ReferenceExecution:
    """Single-layer round interpreter with the old executor's structure.

    ``legacy_scramble=True`` reproduces the pre-engine scramble schedule
    (a fresh ``random.Random(seed*1_000_003 + t*9973 + j)`` per agent per
    round); the default draws from one per-execution stream in
    ``(t, j)`` order, matching the engine bit for bit.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        network: Union[DiGraph, DynamicGraph],
        inputs: Optional[Sequence[Any]] = None,
        initial_states: Optional[Sequence[Any]] = None,
        scramble_seed: Optional[int] = 0,
        check_model: bool = True,
        legacy_scramble: bool = False,
    ):
        self.algorithm = algorithm
        if isinstance(network, DiGraph):
            network = StaticAsDynamic(network)
        self.network = network
        self.n = network.n
        if initial_states is not None:
            self.states: List[Any] = list(initial_states)
        else:
            if inputs is None:
                raise ValueError("provide inputs or initial_states")
            self.states = [algorithm.initial_state(v) for v in inputs]
        if len(self.states) != self.n:
            raise ValueError(f"got {len(self.states)} states for {self.n} agents")
        self.round_number = 0
        self._scramble_seed = scramble_seed
        self._check_model = check_model
        self._legacy = legacy_scramble
        self._rng = (
            None
            if scramble_seed is None or legacy_scramble
            else random.Random(scramble_seed)
        )

    def _outgoing(self, g: DiGraph, v: int) -> Any:
        alg = self.algorithm
        d = g.outdegree(v)
        if isinstance(alg, OutputPortAlgorithm):
            msgs = list(alg.messages(self.states[v], d))
            if len(msgs) != d:
                raise ValueError(
                    f"{alg.name()} produced {len(msgs)} messages for outdegree {d}"
                )
            return msgs
        if isinstance(alg, OneBitAlgorithm):
            # Same contract as the engine's OneBitTransport, restated
            # independently (this interpreter shares no engine code):
            # booleans normalize, anything outside {0, 1} is rejected.
            b = alg.bit(self.states[v], d)
            if b is True or b is False:
                return int(b)
            if type(b) is int and b in (0, 1):
                return b
            raise ValueError(
                f"{alg.name()} emitted {b!r}; the one-bit broadcast "
                "model only carries 0 or 1"
            )
        if isinstance(alg, OutdegreeAlgorithm):
            return alg.message(self.states[v], d)
        if isinstance(alg, BroadcastAlgorithm):
            return alg.message(self.states[v])
        raise TypeError(f"unknown algorithm flavor: {type(alg).__name__}")

    def step(self) -> int:
        t = self.round_number + 1
        g = self.network.graph_at(t)
        if g.n != self.n:
            raise ValueError(f"round {t} graph has {g.n} vertices, expected {self.n}")
        if self._check_model:
            if not g.all_have_self_loops():
                raise ValueError(f"round {t} graph violates the self-loop assumption (§2.1)")
            if self.algorithm.model.requires_symmetric_network and not is_symmetric(g):
                raise ValueError(f"round {t} graph is not symmetric but the model requires it")

        outgoing = [self._outgoing(g, v) for v in range(self.n)]
        port_model = isinstance(self.algorithm, OutputPortAlgorithm)

        inboxes: List[List[Any]] = [[] for _ in range(self.n)]
        for j in range(self.n):
            for e in g.in_edges(j):
                payload = outgoing[e.source]
                if port_model:
                    payload = payload[g.port_of(e)]
                inboxes[j].append(payload)

        if self._scramble_seed is not None:
            for j in range(self.n):
                if self._legacy:
                    rng = random.Random(self._scramble_seed * 1_000_003 + t * 9973 + j)
                else:
                    rng = self._rng
                rng.shuffle(inboxes[j])

        self.states = [
            self.algorithm.transition(self.states[j], tuple(inboxes[j]))
            for j in range(self.n)
        ]
        self.round_number = t
        return t

    def run(self, rounds: int) -> "ReferenceExecution":
        for _ in range(rounds):
            self.step()
        return self

    def outputs(self) -> List[Any]:
        return [self.algorithm.output(s) for s in self.states]
