"""The engine stepper: plan lookup, transport, transition, observation.

This is the round loop behind the public
:class:`repro.core.execution.Execution` façade.  Per round it

1. asks the network for round ``t``'s graph and the :class:`PlanCache`
   for its compiled :class:`DeliveryPlan` (a dictionary hit on static
   networks);
2. enforces the model preconditions off the plan's precomputed flags;
3. runs the flavor-resolved transport (sending + delivery);
4. scrambles each inbox from the single per-execution RNG stream;
5. applies the transition function and, only if observers are attached,
   emits a :class:`RoundRecord`.
"""

from __future__ import annotations

import random
import time
from typing import Any, List, Optional, Sequence

from repro.core.agent import Algorithm
from repro.core.engine.instrumentation import RoundObserver, RoundRecord
from repro.core.engine.plan import PlanCache
from repro.core.engine.transport import transport_for
from repro.dynamics.dynamic_graph import DynamicGraph


class EngineStepper:
    """Drives one execution's rounds over the layered engine."""

    __slots__ = (
        "algorithm",
        "network",
        "n",
        "states",
        "round_number",
        "check_model",
        "plan_cache",
        "transport",
        "observers",
        "_rng",
    )

    def __init__(
        self,
        algorithm: Algorithm,
        network: DynamicGraph,
        states: Sequence[Any],
        scramble_seed: Optional[int] = 0,
        check_model: bool = True,
        plan_cache: Optional[PlanCache] = None,
        observers: Optional[Sequence[RoundObserver]] = None,
    ):
        self.algorithm = algorithm
        self.network = network
        self.n = network.n
        self.states: List[Any] = list(states)
        self.round_number = 0
        self.check_model = check_model
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.transport = transport_for(algorithm)
        self.observers: List[RoundObserver] = list(observers or ())
        self._rng = None if scramble_seed is None else random.Random(scramble_seed)

    def step(self) -> int:
        """Run one full round; returns the new round number."""
        t = self.round_number + 1
        network = self.network
        g = network.graph_at(t)
        if g.n != self.n:
            raise ValueError(f"round {t} graph has {g.n} vertices, expected {self.n}")
        plan = self.plan_cache.plan_for(g, getattr(network, "plan_epoch", 0))
        if self.check_model:
            if not plan.all_self_loops:
                raise ValueError(
                    f"round {t} graph violates the self-loop assumption (§2.1)"
                )
            if self.algorithm.model.requires_symmetric_network and not plan.symmetric:
                raise ValueError(
                    f"round {t} graph is not symmetric but the model requires it"
                )

        observers = self.observers
        started = time.perf_counter() if observers else 0.0

        transport = self.transport
        algorithm = self.algorithm
        outgoing = transport.outgoing(algorithm, self.states, plan)
        inboxes = transport.deliver(plan, outgoing)

        rng = self._rng
        if rng is not None:
            shuffle = rng.shuffle
            for inbox in inboxes:
                shuffle(inbox)

        transition = algorithm.transition
        old_states = self.states
        self.states = [
            transition(old_states[j], tuple(inboxes[j])) for j in range(self.n)
        ]
        self.round_number = t

        if observers:
            record = RoundRecord(
                round_number=t,
                plan=plan,
                algorithm=algorithm,
                outgoing=outgoing,
                inboxes=inboxes,
                states=tuple(self.states),
                wall_seconds=time.perf_counter() - started,
            )
            for observer in observers:
                observer.on_round(record)
        return t

    def run(self, rounds: int) -> "EngineStepper":
        for _ in range(rounds):
            self.step()
        return self

    def attach(self, observer: RoundObserver) -> None:
        self.observers.append(observer)

    def detach(self, observer: RoundObserver) -> None:
        self.observers.remove(observer)
