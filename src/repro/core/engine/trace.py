"""Structured round-level tracing: typed events, metrics, JSONL export.

The paper's evidence is quantitative — stabilization rounds, per-round
communication volume, convergence residuals — yet an untraced execution
only reports its end state.  This module turns a running execution into
an auditable stream without perturbing it:

* :class:`TraceEvent` — one typed, JSON-serializable record (``round``,
  ``plan_compile``, ``span``, ``manifest``, ``summary``);
* :class:`MetricsRegistry` — named :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` aggregates with a deterministic job-order
  :meth:`~MetricsRegistry.merge`, matching the parallel backend's
  bit-identity contract;
* :class:`Tracer` — a :class:`~repro.core.engine.instrumentation.RoundObserver`
  that also hooks :class:`~repro.core.engine.plan.PlanCache` compiles,
  emitting per-round messages delivered, payload units charged (the
  accounting of :mod:`repro.analysis.bandwidth`), convergence residuals,
  canonical state digests, and wall-clock timings;
* :func:`events_to_jsonl` / :func:`events_from_jsonl` (and the file
  variants :func:`write_jsonl` / :func:`read_jsonl`) — lossless JSONL
  round-tripping, the format ``python -m repro trace`` emits.

**The no-interference contract.**  Tracing must never change what it
observes.  Two guarantees back that up:

1. *Zero overhead when off.*  With no observer attached the stepper
   builds no :class:`RoundRecord` at all, and a :class:`PlanCache` whose
   ``trace_hook`` is ``None`` pays one attribute test per round —
   ``benchmarks/bench_trace.py`` asserts the hot path within 2% of the
   pre-trace baseline.
2. *Bit-identity when on.*  A :class:`Tracer` only reads the record; it
   draws nothing from the execution's scramble RNG and mutates no state,
   so outputs, reports, and the scramble schedule are bit-identical with
   tracing on or off, sequentially or under ``parallel=True`` (the
   hypothesis suite in ``tests/property/test_trace_properties.py`` pins
   this).  Wall-clock fields (any metric or event field named
   ``*_seconds``) are *environmental*: they ride along but are excluded
   from every identity comparison, which is what
   :meth:`Tracer.deterministic_rounds` and
   ``MetricsRegistry.as_dict(deterministic_only=True)`` project out.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

try:  # Optional: the ring buffer stores rounds as a structured array.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    _np = None

from repro.core.agent import OutputPortAlgorithm
from repro.core.engine.instrumentation import RoundRecord, state_digest
from repro.core.engine.plan import DeliveryPlan, PlanCache
from repro.core.metrics import discrete_metric, euclidean_metric, spread

#: Round-event fields that must be bit-identical across backends and
#: with tracing on or off; everything timing-valued is environmental.
DETERMINISTIC_ROUND_FIELDS: Tuple[str, ...] = (
    "messages",
    "bytes_delivered",
    "bytes_peak",
    "residual",
    "digest",
)


class TraceEvent:
    """One typed trace record: a kind, an optional round, and flat fields.

    Events are plain data — every field value must be JSON-serializable —
    so a trace survives ``emit → JSONL → parse`` losslessly
    (:func:`events_to_jsonl` / :func:`events_from_jsonl`).
    """

    __slots__ = ("kind", "round", "fields")

    def __init__(self, kind: str, round: Optional[int] = None, **fields: Any):
        self.kind = kind
        self.round = round
        self.fields: Dict[str, Any] = fields

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "round": self.round, "fields": dict(self.fields)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceEvent":
        return cls(d["kind"], round=d.get("round"), **d.get("fields", {}))

    def deterministic_fields(self) -> Dict[str, Any]:
        """The event's fields minus every wall-clock (``*_seconds``) value."""
        return {k: v for k, v in self.fields.items() if not k.endswith("_seconds")}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceEvent)
            and self.kind == other.kind
            and self.round == other.round
            and self.fields == other.fields
        )

    def __repr__(self) -> str:
        return f"TraceEvent({self.kind!r}, round={self.round}, {self.fields})"


def _round_event(
    round_number: int,
    messages: int,
    bytes_delivered: int,
    bytes_peak: int,
    residual: Optional[float],
    digest: int,
    wall_seconds: float,
) -> TraceEvent:
    """A ``round`` :class:`TraceEvent` from its (decoded) record fields."""
    return TraceEvent(
        "round",
        round=round_number,
        messages=messages,
        bytes_delivered=bytes_delivered,
        bytes_peak=bytes_peak,
        residual=residual,
        digest=digest,
        wall_seconds=wall_seconds,
    )


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #

class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value: Any = None
        self.updates: int = 0

    def set(self, value: Any) -> None:
        self.value = value
        self.updates += 1

    def merge(self, other: "Gauge") -> None:
        # Job-order merge: the later (other) registry wins if it ever wrote.
        if other.updates:
            self.value = other.value
        self.updates += other.updates

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "updates": self.updates}


class Histogram:
    """Streaming moments of an observed distribution (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return None if self.count == 0 else self.total / self.count

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics, created on first touch, merged deterministically.

    ``merge`` folds another registry in (counters add, gauges last-write-
    win, histogram moments combine); folding per-job registries **in job
    order** yields the same aggregate whether the jobs ran sequentially or
    across a process pool — the registry-level face of PR2's bit-identity
    contract.  Metrics whose name ends in ``_seconds`` are wall-clock
    (environmental) and are dropped by ``as_dict(deterministic_only=True)``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            self._get(name, type(theirs)).merge(theirs)
        return self

    def as_dict(self, deterministic_only: bool = False) -> Dict[str, Dict[str, Any]]:
        """A JSON-safe snapshot, sorted by name; ``deterministic_only``
        drops every ``*_seconds`` (wall-clock) metric."""
        return {
            name: self._metrics[name].as_dict()
            for name in sorted(self._metrics)
            if not (deterministic_only and name.endswith("_seconds"))
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Dict[str, Any]]) -> "MetricsRegistry":
        registry = cls()
        for name, payload in d.items():
            kind = _METRIC_TYPES[payload["type"]]
            metric = registry._get(name, kind)
            if kind is Counter:
                metric.value = payload["value"]
            elif kind is Gauge:
                metric.value = payload["value"]
                metric.updates = payload.get("updates", 1)
            else:
                metric.count = payload["count"]
                metric.total = payload["total"]
                metric.min = payload["min"]
                metric.max = payload["max"]
        return registry

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# ---------------------------------------------------------------------- #
# the tracer
# ---------------------------------------------------------------------- #

#: Rounds retained by a tracer's ring buffer before the oldest are
#: overwritten; ~1 MiB of records at the default.  Raise per tracer via
#: ``Tracer(ring_capacity=...)`` when a run needs its full round history.
DEFAULT_RING_CAPACITY = 16384

if _np is not None:
    #: One round as a fixed-width binary record.  ``residual`` rides as a
    #: float64 + presence flag (``None`` when residual tracking is off);
    #: every field round-trips its Python value exactly (int64 covers the
    #: crc32 digest range, float64 IS the Python float).
    _ROUND_DTYPE = _np.dtype(
        [
            ("seq", _np.int64),
            ("round", _np.int64),
            ("messages", _np.int64),
            ("bytes_delivered", _np.int64),
            ("bytes_peak", _np.int64),
            ("residual", _np.float64),
            ("has_residual", _np.bool_),
            ("digest", _np.int64),
            ("wall_seconds", _np.float64),
        ]
    )
else:  # pragma: no cover - the CI image bundles numpy
    _ROUND_DTYPE = None


class Tracer:
    """A round observer that narrates an execution into events + metrics.

    Attach with ``execution.attach(tracer)`` (or let
    :func:`trace_execution` / the batch runner do it); additionally call
    :meth:`watch_cache` to count plan-cache hits and time compiles.  The
    tracer holds a plain ``__dict__`` on purpose: the parallel backend's
    observer adoption ships its recordings back from pool workers exactly
    like any other observer (the ring buffer pickles along).

    Round events are **not** stored as Python objects: each observed
    round writes one fixed-width record into a preallocated numpy ring
    buffer (``ring_capacity`` rounds, oldest overwritten first —
    ``dropped_rounds`` counts casualties), and the :attr:`events` /
    :meth:`round_events` views decode records back into
    :class:`TraceEvent` objects lazily, at read time.  Long traced runs
    therefore cost a few array stores per round instead of a dict, an
    event object, and an unbounded list append; JSONL export pays the
    decode exactly once.  Rare non-round events (``plan_compile``) stay
    object-valued on a side list; a global sequence number keeps the
    merged stream in emission order.  Without numpy the tracer falls back
    to plain object storage (no ring, nothing dropped).

    Per round the record carries

    * ``messages`` — messages delivered (one per in-edge);
    * ``bytes_delivered`` / ``bytes_peak`` — total and largest delivered
      payload in the abstract units of
      :func:`repro.analysis.bandwidth.payload_units`, charged from the
      sender side (``units(payload) × outdegree`` for the isotropic
      transports — the same totals as per-inbox accounting, at ``O(n)``
      instead of ``O(m)`` payload walks);
    * ``residual`` — the convergence residual: output spread under the
      Euclidean metric (max−min fast path for scalar outputs — equal to
      the max pairwise distance, bit for bit), falling back to the
      discrete metric for non-numeric outputs;
    * ``digest`` — the canonical :func:`state_digest` of the new global
      state (equal trajectories digest equally across processes);
    * ``wall_seconds`` — environmental, excluded from identity checks;

    and folds the same quantities into the registry (counters ``rounds``,
    ``messages_delivered``, ``bytes_delivered``; gauge ``residual``;
    histogram ``round_wall_seconds``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capture_events: bool = True,
        residuals: bool = True,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        if ring_capacity < 1:
            raise ValueError("a ring buffer needs room for at least one round")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.capture_events = capture_events
        self.residuals = residuals
        self.ring_capacity = int(ring_capacity)
        self._payload_units = None
        self._ring = None  # allocated on the first captured round
        self._ring_written = 0  # round records ever recorded (≥ retained)
        self._side: List[Tuple[int, TraceEvent]] = []  # non-round events
        self._seq = 0  # global emission ordinal across both stores
        self._bound_registry = None
        self._bound_metrics = None

    # -- round hook ----------------------------------------------------- #

    def _metrics(self):
        """The per-round metric handles, rebound if :attr:`registry` was
        swapped (snapshot restore does that)."""
        registry = self.registry
        if self._bound_registry is not registry:
            self._bound_metrics = (
                registry.counter("rounds"),
                registry.counter("messages_delivered"),
                registry.counter("bytes_delivered"),
                registry.gauge("residual"),
                registry.histogram("round_wall_seconds"),
            )
            self._bound_registry = registry
        return self._bound_metrics

    def on_round(self, record: RoundRecord) -> None:
        units = self._payload_units
        if units is None:
            # Lazy: the bandwidth accounting lives above the engine.
            from repro.analysis.bandwidth import payload_units

            units = self._payload_units = payload_units
        total = 0
        peak = 0
        outgoing = record.outgoing
        if isinstance(record.algorithm, OutputPortAlgorithm):
            # Anisotropic sends: one distinct payload per port, each
            # delivered exactly once — charge them individually.
            for payloads in outgoing:
                for message in payloads:
                    u = units(message)
                    total += u
                    if u > peak:
                        peak = u
        else:
            # Isotropic sends: vertex v's payload is delivered along each
            # of its outdegree(v) out-edges, so the per-inbox total is
            # units(payload) × outdegree — one payload walk per vertex.
            outdegrees = record.plan.outdegrees
            for v, message in enumerate(outgoing):
                d = outdegrees[v]
                if d:
                    u = units(message)
                    total += u * d
                    if u > peak:
                        peak = u
        residual = self._residual(record) if self.residuals else None
        digest = state_digest(record.states)

        rounds_c, messages_c, bytes_c, residual_g, wall_h = self._metrics()
        rounds_c.inc()
        messages_c.inc(record.messages_sent)
        bytes_c.inc(total)
        if residual is not None:
            residual_g.set(residual)
        wall_h.observe(record.wall_seconds)

        if self.capture_events:
            self._capture_round(
                record.round_number,
                record.messages_sent,
                total,
                peak,
                residual,
                digest,
                record.wall_seconds,
            )

    def _capture_round(self, round_number, messages, total, peak, residual, digest, wall) -> None:
        seq = self._seq
        self._seq = seq + 1
        if _np is None:  # pragma: no cover - numpy-less fallback
            self._side.append(
                (seq, _round_event(round_number, messages, total, peak, residual, digest, wall))
            )
            return
        ring = self._ring
        if ring is None:
            ring = self._ring = _np.zeros(self.ring_capacity, dtype=_ROUND_DTYPE)
        ring[self._ring_written % self.ring_capacity] = (
            seq,
            round_number,
            messages,
            total,
            peak,
            0.0 if residual is None else residual,
            residual is not None,
            digest,
            wall,
        )
        self._ring_written += 1

    @staticmethod
    def _residual(record: RoundRecord) -> float:
        # Scalar fast path: for real-valued outputs the max pairwise
        # |x_i - x_j| is exactly max - min (same subtraction, same bits).
        output = record.algorithm.output
        outputs = []
        scalar = True
        mn = mx = None
        for state in record.states:
            o = output(state)
            outputs.append(o)
            if scalar and (type(o) is float or type(o) is int):
                if mn is None:
                    mn = mx = o
                elif o < mn:
                    mn = o
                elif o > mx:
                    mx = o
            else:
                scalar = False
        if scalar and mn is not None and mn == mn and mx == mx:  # NaNs fall back
            return abs(float(mx) - float(mn))
        try:
            return spread(outputs, euclidean_metric)
        except (TypeError, ValueError):
            return spread(outputs, discrete_metric)

    # -- plan-cache hook ------------------------------------------------ #

    def on_plan_event(self, kind: str, plan: DeliveryPlan, seconds: float) -> None:
        """The :attr:`PlanCache.trace_hook` target: hits are counted,
        compiles are counted, timed, and (compiles being rare) evented."""
        if kind == "plan_hit":
            self.registry.counter("plan_hits").inc()
            return
        self.registry.counter("plan_compiles").inc()
        self.registry.histogram("plan_compile_seconds").observe(seconds)
        if self.capture_events:
            seq = self._seq
            self._seq = seq + 1
            self._side.append(
                (
                    seq,
                    TraceEvent(
                        "plan_compile",
                        n=plan.n,
                        messages=plan.num_messages,
                        compile_wall_seconds=seconds,
                    ),
                )
            )

    def watch_cache(self, cache: PlanCache):
        """Point ``cache.trace_hook`` at this tracer; returns the previous
        hook so callers can restore it (the batch runner does)."""
        previous = cache.trace_hook
        cache.trace_hook = self.on_plan_event
        return previous

    # -- views ---------------------------------------------------------- #

    @property
    def dropped_rounds(self) -> int:
        """Rounds overwritten by ring wraparound (0 until the buffer laps)."""
        return max(0, self._ring_written - self.ring_capacity)

    def _decode_ring(self) -> List[Tuple[int, TraceEvent]]:
        ring = self._ring
        if ring is None:
            return []
        cap = self.ring_capacity
        written = self._ring_written
        count = min(written, cap)
        start = written % cap if written > cap else 0
        out = []
        for k in range(count):
            row = ring[(start + k) % cap]
            out.append(
                (
                    int(row["seq"]),
                    _round_event(
                        int(row["round"]),
                        int(row["messages"]),
                        int(row["bytes_delivered"]),
                        int(row["bytes_peak"]),
                        float(row["residual"]) if bool(row["has_residual"]) else None,
                        int(row["digest"]),
                        float(row["wall_seconds"]),
                    ),
                )
            )
        return out

    @property
    def events(self) -> List[TraceEvent]:
        """The retained trace, decoded to :class:`TraceEvent` objects in
        emission order (a fresh list per read — the binary records stay
        the single source of truth)."""
        merged = self._decode_ring() + self._side
        merged.sort(key=lambda pair: pair[0])
        return [event for _seq, event in merged]

    def round_events(self) -> List[TraceEvent]:
        if _np is None:  # pragma: no cover - numpy-less fallback
            return [e for _seq, e in self._side if e.kind == "round"]
        return [event for _seq, event in self._decode_ring()]

    def deterministic_rounds(self) -> List[Tuple[Any, ...]]:
        """The identity-relevant projection of the round stream: one tuple
        ``(round, messages, bytes_delivered, bytes_peak, residual, digest)``
        per round, wall-clock excluded.  Two executions with equal
        projections took bit-identical trajectories (equal digests pin the
        states, hence the scramble schedule's effect)."""
        return [
            (e.round,) + tuple(e.fields[k] for k in DETERMINISTIC_ROUND_FIELDS)
            for e in self.round_events()
        ]

    def summary_event(self) -> TraceEvent:
        """A ``summary`` event carrying the registry snapshot."""
        return TraceEvent("summary", metrics=self.registry.as_dict())

    # -- export --------------------------------------------------------- #

    def export_jsonl(
        self,
        path: str,
        manifest: Optional[Dict[str, Any]] = None,
        include_summary: bool = True,
    ) -> str:
        """Decode the retained trace and write it to ``path`` as JSONL.

        This is where the ring buffer's lazy decode is finally paid — once,
        at export.  The write goes through the store layer's atomic
        tempfile + rename (:func:`write_jsonl`), so a crash mid-export
        leaves any previous file at ``path`` intact rather than truncated.
        ``include_summary`` appends the :meth:`summary_event` snapshot as
        the stream's last line.  Returns ``path``.
        """
        events = self.events
        if include_summary:
            events = events + [self.summary_event()]
        write_jsonl(path, events, manifest=manifest)
        return path

    def __repr__(self) -> str:
        return f"Tracer({len(self.events)} events, {len(self.registry)} metrics)"


def trace_execution(execution, rounds: Optional[int] = None, tracer: Optional[Tracer] = None) -> Tracer:
    """Attach a tracer (and its plan-cache hook) to ``execution``; if
    ``rounds`` is given, run them before returning the tracer.

    The tracer stays attached so convergence detectors can keep driving
    the same execution under observation; ``execution.detach(tracer)``
    ends the recording.
    """
    tracer = tracer if tracer is not None else Tracer()
    execution.attach(tracer)
    tracer.watch_cache(execution.plan_cache)
    if rounds is not None:
        execution.run(rounds)
    return tracer


# ---------------------------------------------------------------------- #
# batch helpers
# ---------------------------------------------------------------------- #

def attach_tracers(jobs: Sequence[Any]) -> List[Tracer]:
    """Give every :class:`~repro.core.engine.batch.BatchJob` its own fresh
    tracer (appended to ``job.observers``); returns them in job order."""
    tracers = []
    for job in jobs:
        tracer = Tracer()
        job.observers.append(tracer)
        tracers.append(tracer)
    return tracers


def merged_metrics(results_or_tracers: Iterable[Any]) -> MetricsRegistry:
    """Fold per-job metrics into one registry, **in the given (job) order**.

    Accepts tracers directly, or :class:`~repro.core.engine.batch.BatchResult`
    records (whose jobs' tracer observers are harvested) — the job-order
    fold makes the aggregate identical between the sequential and parallel
    backends.
    """
    merged = MetricsRegistry()
    for item in results_or_tracers:
        if isinstance(item, Tracer):
            merged.merge(item.registry)
            continue
        job = getattr(item, "job", None)
        for observer in getattr(job, "observers", ()):
            if isinstance(observer, Tracer):
                merged.merge(observer.registry)
    return merged


# ---------------------------------------------------------------------- #
# JSONL
# ---------------------------------------------------------------------- #

def events_to_jsonl(events: Iterable[TraceEvent], manifest: Optional[Dict[str, Any]] = None) -> str:
    """Serialize a trace as JSON Lines; a ``manifest`` dict, when given,
    becomes the stream's first line (kind ``manifest``)."""
    lines = []
    if manifest is not None:
        lines.append(json.dumps({"kind": "manifest", "round": None, "fields": manifest}))
    for event in events:
        lines.append(json.dumps(event.to_dict()))
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> Tuple[Optional[Dict[str, Any]], List[TraceEvent]]:
    """Parse JSONL back into ``(manifest, events)`` — the inverse of
    :func:`events_to_jsonl` (the leading ``manifest`` line, if present, is
    split off; everything else round-trips as :class:`TraceEvent`)."""
    manifest: Optional[Dict[str, Any]] = None
    events: List[TraceEvent] = []
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        record = json.loads(line)
        if i == 0 and record.get("kind") == "manifest":
            manifest = record.get("fields", {})
            continue
        events.append(TraceEvent.from_dict(record))
    return manifest, events


def write_jsonl(path_or_file: Union[str, IO[str]], events: Iterable[TraceEvent],
                manifest: Optional[Dict[str, Any]] = None) -> None:
    """:func:`events_to_jsonl` to a path or an open text file.

    Path writes are atomic (tempfile + rename via the store layer's
    :func:`~repro.store.atomic.atomic_write_text`): a crash mid-export
    leaves the previous trace intact, never a truncated stream.
    """
    text = events_to_jsonl(events, manifest=manifest)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        from repro.store.atomic import atomic_write_text  # no cycle: atomic is leaf

        atomic_write_text(path_or_file, text)


def read_jsonl(path_or_file: Union[str, IO[str]]) -> Tuple[Optional[Dict[str, Any]], List[TraceEvent]]:
    """:func:`events_from_jsonl` from a path or an open text file."""
    if hasattr(path_or_file, "read"):
        return events_from_jsonl(path_or_file.read())
    with open(path_or_file, "r", encoding="utf-8") as fh:
        return events_from_jsonl(fh.read())
