"""Transports: apply a delivery plan for one communication-model flavor.

The old executor asked ``isinstance`` questions about the algorithm for
every vertex of every round.  A transport answers them exactly once —
:func:`transport_for` dispatches on the algorithm flavor when the
execution is created — and then runs the per-round loops with the
dispatch already resolved:

* :meth:`Transport.outgoing` applies the sending function to every
  state, handing it only what its model allows (nothing / the current
  outdegree / the per-port fan-out);
* :meth:`Transport.deliver` routes those payloads along the plan's
  flat ``sources`` lists into per-receiver inboxes.

Delivery-order scrambling stays outside the transport: the stepper owns
one ``random.Random`` stream per execution and shuffles the inboxes in
``(round, receiver)`` order, so distinct shuffle sites consume disjoint
segments of one stream and can never alias (unlike the old per-site
``seed*1_000_003 + t*9973 + j`` reseeding).
"""

from __future__ import annotations

import abc
from typing import Any, List, Sequence

from repro.core.agent import (
    Algorithm,
    BroadcastAlgorithm,
    OneBitAlgorithm,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
)
from repro.core.engine.plan import DeliveryPlan


def validate_bit(algorithm: Algorithm, value: Any) -> int:
    """Normalize a one-bit payload to ``int``; reject anything else.

    Booleans are accepted (they are how predicates naturally read) and
    normalized so that delivered multisets — and hence state trajectories
    and traces — never depend on whether an algorithm said ``True`` or
    ``1``.  Every other payload (wider ints, floats, strings …) raises:
    the bit-width restriction is the model.
    """
    if value is True:
        return 1
    if value is False:
        return 0
    if type(value) is int and value in (0, 1):
        return value
    raise ValueError(
        f"{algorithm.name()} emitted {value!r}; the one-bit broadcast "
        "model only carries 0 or 1"
    )


class Transport(abc.ABC):
    """Flavor-resolved sending + delivery over a compiled plan."""

    #: Whether every out-edge of a vertex carries the same payload.
    isotropic: bool = True

    @abc.abstractmethod
    def outgoing(
        self, algorithm: Algorithm, states: Sequence[Any], plan: DeliveryPlan
    ) -> List[Any]:
        """Per-vertex payloads for this round (port model: lists by port)."""

    def deliver(self, plan: DeliveryPlan, outgoing: List[Any]) -> List[List[Any]]:
        """Route payloads into per-receiver inboxes, in in-edge order."""
        return [[outgoing[s] for s in srcs] for srcs in plan.sources]


class BroadcastTransport(Transport):
    """Simple broadcast (and symmetric communications): ``σ : Q -> M``."""

    def outgoing(self, algorithm, states, plan):
        message = algorithm.message
        return [message(s) for s in states]


class OutdegreeTransport(Transport):
    """Outdegree awareness: ``σ : Q × ℕ -> M``, isotropic."""

    def outgoing(self, algorithm, states, plan):
        message = algorithm.message
        return [message(s, d) for s, d in zip(states, plan.outdegrees)]


class OneBitTransport(Transport):
    """One-bit broadcast: ``σ : Q × ℕ -> {0, 1}``, isotropic, validated."""

    def outgoing(self, algorithm, states, plan):
        bit = algorithm.bit
        return [
            validate_bit(algorithm, bit(s, d))
            for s, d in zip(states, plan.outdegrees)
        ]


class OutputPortTransport(Transport):
    """Output port awareness: ``σ : Q × ℕ -> ⋃ M^k``, one payload per port."""

    isotropic = False

    def outgoing(self, algorithm, states, plan):
        out: List[List[Any]] = []
        for state, d in zip(states, plan.outdegrees):
            msgs = list(algorithm.messages(state, d))
            if len(msgs) != d:
                raise ValueError(
                    f"{algorithm.name()} produced {len(msgs)} messages for outdegree {d}"
                )
            out.append(msgs)
        return out

    def deliver(self, plan, outgoing):
        return [
            [outgoing[s][p] for s, p in zip(srcs, ports)]
            for srcs, ports in zip(plan.sources, plan.source_ports)
        ]


def transport_for(algorithm: Algorithm) -> Transport:
    """Resolve the flavor dispatch once, at execution-construction time."""
    if isinstance(algorithm, OutputPortAlgorithm):
        return OutputPortTransport()
    if isinstance(algorithm, OneBitAlgorithm):
        return OneBitTransport()
    if isinstance(algorithm, OutdegreeAlgorithm):
        return OutdegreeTransport()
    if isinstance(algorithm, BroadcastAlgorithm):
        return BroadcastTransport()
    raise TypeError(f"unknown algorithm flavor: {type(algorithm).__name__}")
