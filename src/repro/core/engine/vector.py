"""The vector backend: whole rounds as numpy gather/scatter kernels.

The object engine (:mod:`repro.core.engine.stepper`) dispatches Python
per vertex per round — message construction, inbox lists, a transition
call each — which is exactly the cost profile the dynamic-network tables
multiply by thousands of rounds.  For the algorithm families whose round
update is a *segment reduction over in-edges* (set flooding, Push-Sum
and its vector/frequency variants, Metropolis averaging — the workloads
of the paper's Tables 1/2 and of the related average-computation and
polynomial-counting lines), the whole round is instead three array ops:

1. **gather** each in-edge's payload from its source vertex,
2. **segment-reduce** per receiver (``np.bincount`` / masked scatter),
3. apply the (vectorized) transition to the reduced columns.

:class:`CSRPlan` is the delivery schedule of a compiled
:class:`~repro.core.engine.plan.DeliveryPlan` re-expressed as flat index
arrays (CSR over receivers), cached on the plan object so it amortizes
exactly as plans do — once per distinct round graph, shared through the
memo layer by content fingerprint.

:class:`VectorExecution` is the façade: construct via
``Execution(..., vector=True)`` (or export ``REPRO_VECTOR=1`` for the
batch/table/CLI entry points).  At construction it resolves a
:class:`VectorKernel` for the algorithm from the registry
(:func:`register_kernel` / :func:`kernel_for`) and packs the state
vector; every ``step`` then runs entirely in numpy, and the object-level
states materialize lazily only when somebody reads ``states`` /
``outputs``.  Whenever no kernel applies — an exotic automaton, an
overridden transition, numpy missing, unpackable states — it falls back
transparently to the object stepper (``vector_active == False``,
``vector_fallback_reason`` says why), so results are identical either
way and the flag is always safe to set.

**Faithfulness contract.**  A registered kernel must compute the *same
round function* as the algorithm's ``transition`` up to two inherent
caveats, both pinned by the property suite in
``tests/property/test_vector_properties.py``:

* kernels see inboxes in in-edge order and reduce them associatively,
  so they are faithful exactly for transitions invariant under inbox
  order — which anonymity already demands of every algorithm here (the
  same caveat as quotient execution, whose base run also re-orders the
  scramble stream).  The vector path draws nothing from the execution's
  scramble RNG.
* float reductions may associate differently than the object engine's
  left-to-right sums, so trajectories agree bit-for-bit for exact
  (integer/set) kernels and within :func:`repro.analysis.impossibility.
  outputs_match` tolerance for floating-point ones.

With observers attached, each round additionally materializes the
object-level record (outgoing payloads, inboxes, new states) through the
ordinary transport so tracers see the same
:class:`~repro.core.engine.instrumentation.RoundRecord` fields they
would on the object path — observed rounds cost object-engine time;
unobserved rounds run at vector speed.

Module counters (:func:`vector_stats` / :func:`publish_vector_metrics`)
mirror the quotient layer's: activations, fallbacks by reason, and how
many rounds actually ran vectorized.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Type

try:  # numpy ships as the ``vector`` extra; everything else works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    _np = None

from repro.core.agent import Algorithm
from repro.core.engine.instrumentation import RoundRecord
from repro.core.engine.plan import DeliveryPlan
from repro.core.execution import Execution
from repro.core.metrics import canonical_repr
from repro.envflags import env_flag

#: Environment knob: any truthy spelling (see :mod:`repro.envflags`)
#: turns the vector backend on by default for batch/table/CLI entry
#: points, mirroring ``REPRO_QUOTIENT``.
VECTOR_ENV = "REPRO_VECTOR"

_STATS: Dict[str, int] = {
    "activations": 0,
    "fallbacks": 0,
    "vector_rounds": 0,
    "observed_rounds": 0,
}
_FALLBACK_REASONS: Dict[str, int] = {}


def numpy_available() -> bool:
    """Whether numpy imported (the backend is inert without it)."""
    return _np is not None


def vector_enabled_by_env() -> bool:
    """Whether ``REPRO_VECTOR`` turns the vector backend on by default."""
    return env_flag(VECTOR_ENV, default=False)


def clear_vector_stats() -> None:
    """Zero the counters (tests and benchmarks)."""
    for key in _STATS:
        _STATS[key] = 0
    _FALLBACK_REASONS.clear()


def vector_stats() -> Dict[str, Any]:
    """Process-local counters: activations, fallbacks (by reason), and
    round counts split into vectorized vs observer-materialized."""
    return {
        "activations": _STATS["activations"],
        "fallbacks": _STATS["fallbacks"],
        "vector_rounds": _STATS["vector_rounds"],
        "observed_rounds": _STATS["observed_rounds"],
        "fallback_reasons": dict(sorted(_FALLBACK_REASONS.items())),
    }


def publish_vector_metrics(registry, baseline: Optional[Dict[str, Any]] = None) -> None:
    """Fold vector counters into a ``MetricsRegistry`` (``vector_*``),
    scoped to the delta since ``baseline`` (a prior :func:`vector_stats`)."""
    base = baseline or {}
    stats = vector_stats()
    for name in ("activations", "fallbacks", "vector_rounds", "observed_rounds"):
        registry.counter(f"vector_{name}").inc(stats[name] - base.get(name, 0))


def _record_fallback(reason: str) -> str:
    _STATS["fallbacks"] += 1
    _FALLBACK_REASONS[reason] = _FALLBACK_REASONS.get(reason, 0) + 1
    return reason


# ---------------------------------------------------------------------- #
# CSR plans
# ---------------------------------------------------------------------- #

class CSRPlan:
    """A :class:`DeliveryPlan` as flat numpy index arrays.

    Receiver-major CSR over in-edges: edge ``e`` in ``indptr[j]:indptr[j+1]``
    is the ``e``-th in-edge of receiver ``j``, in in-edge (pre-scramble)
    order.  ``targets`` repeats each receiver once per in-edge so the
    scatter side of a kernel is one ``np.bincount(targets, weights=...)``.
    """

    __slots__ = (
        "n",
        "num_messages",
        "indptr",
        "sources",
        "ports",
        "targets",
        "outdegrees",
        "indegrees",
    )

    def __init__(self, plan: DeliveryPlan):
        np = _np
        n = plan.n
        self.n = n
        self.num_messages = plan.num_messages
        counts = np.fromiter((len(srcs) for srcs in plan.sources), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr
        m = int(indptr[-1])
        self.sources = np.fromiter(
            (s for srcs in plan.sources for s in srcs), dtype=np.int64, count=m
        )
        self.ports = np.fromiter(
            (p for ports in plan.source_ports for p in ports), dtype=np.int64, count=m
        )
        self.targets = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.outdegrees = np.asarray(plan.outdegrees, dtype=np.int64)
        self.indegrees = counts

    def __repr__(self) -> str:
        return f"CSRPlan(n={self.n}, messages={self.num_messages})"


def csr_for(plan: DeliveryPlan) -> CSRPlan:
    """The CSR arrays of ``plan``, built on first use and cached on it."""
    csr = plan._csr
    if csr is None:
        csr = plan._csr = CSRPlan(plan)
    return csr


# ---------------------------------------------------------------------- #
# kernels and their registry
# ---------------------------------------------------------------------- #

class VectorKernel:
    """One algorithm's round function, vectorized.

    A kernel owns the packed representation of the whole state vector
    (any numpy-friendly object) and three operations:

    * :meth:`pack` — object states -> packed array(s); raise ``ValueError``
      (or ``TypeError``/``KeyError``) on states outside the representable
      set, which makes the execution fall back rather than miscompute;
    * :meth:`unpack` — packed -> the *exact* list of object states the
      object engine would hold (bit-for-bit for exact kernels);
    * :meth:`step` — one full round (send + deliver + transition) over a
      :class:`CSRPlan`; must be inbox-order-invariant and must mirror the
      object engine's error behavior (e.g. raise ``ZeroDivisionError``
      where a sending function would divide by a zero outdegree).
    """

    def __init__(self, algorithm: Algorithm):
        self.algorithm = algorithm

    def pack(self, states: Sequence[Any]):
        raise NotImplementedError

    def unpack(self, packed) -> List[Any]:
        raise NotImplementedError

    def step(self, packed, csr: CSRPlan):
        raise NotImplementedError


#: algorithm class -> factory(algorithm) -> kernel (or None to decline).
_KERNEL_FACTORIES: Dict[Type[Algorithm], Callable[[Algorithm], Optional[VectorKernel]]] = {}
_BUILTINS_LOADED = False


def register_kernel(algorithm_cls: Type[Algorithm]):
    """Class decorator registering a kernel factory for ``algorithm_cls``.

    The factory receives the algorithm instance and returns a
    :class:`VectorKernel` — or ``None`` to decline (e.g. an unsupported
    parameterization).  Registration covers subclasses too, but only
    *faithful* ones: a subclass that overrides any of ``initial_state`` /
    ``message`` / ``messages`` / ``transition`` no longer matches the
    registered round function and is skipped by :func:`kernel_for`.
    """

    def decorator(factory):
        _KERNEL_FACTORIES[algorithm_cls] = factory
        return factory

    return decorator


_ROUND_FUNCTION_METHODS = ("initial_state", "message", "messages", "transition")


def _faithful_subclass(actual: type, registered: type) -> bool:
    """Whether ``actual`` inherits the registered class's round function
    unchanged (overriding ``model`` or ``output`` is fine — kernels never
    reimplement those)."""
    for name in _ROUND_FUNCTION_METHODS:
        if getattr(actual, name, None) is not getattr(registered, name, None):
            return False
    return True


def _ensure_builtin_kernels() -> None:
    """Import the library algorithms once so their kernels register.

    Lazy on purpose: this module sits inside the engine package, and the
    algorithm library imports the engine — importing it at module load
    would cycle."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.algorithms import gossip, metropolis, push_sum, push_sum_frequency

    register_kernel(gossip.GossipAlgorithm)(GossipKernel)
    register_kernel(push_sum.PushSumAlgorithm)(PushSumKernel)
    register_kernel(push_sum.VectorPushSumAlgorithm)(VectorPushSumKernel)
    register_kernel(metropolis.MetropolisAlgorithm)(MetropolisKernel)
    register_kernel(push_sum_frequency.PushSumFrequencyAlgorithm)(FrequencyKernel)


def kernel_for(algorithm: Algorithm) -> Optional[VectorKernel]:
    """Resolve a kernel for ``algorithm`` (``None`` when nothing applies).

    The registry is consulted along the algorithm's MRO, nearest class
    first; an entry on a base class only applies when the subclass keeps
    the registered round function (see :func:`register_kernel`).
    """
    if _np is None:
        return None
    _ensure_builtin_kernels()
    for cls in type(algorithm).__mro__:
        factory = _KERNEL_FACTORIES.get(cls)
        if factory is None:
            continue
        if cls is not type(algorithm) and not _faithful_subclass(type(algorithm), cls):
            return None
        return factory(algorithm)
    return None


def _require_positive_outdegrees(csr: CSRPlan) -> None:
    """Sending functions that split mass divide by the outdegree; mirror
    the object engine's ``ZeroDivisionError`` on outdegree-0 vertices
    (impossible under the §2.1 self-loop assumption, reachable only with
    ``check_model=False``)."""
    if int(csr.outdegrees.min(initial=1)) == 0:
        raise ZeroDivisionError("division by zero outdegree in sending function")


# -- set flooding (simple broadcast / symmetric) ------------------------ #

class GossipKernel(VectorKernel):
    """Exact kernel for :class:`~repro.algorithms.gossip.GossipAlgorithm`.

    States are frozensets over the finite value domain actually present;
    the packed form is a boolean membership matrix ``(n, |universe|)``
    whose round update is an OR-scatter along in-edges.  Values flood
    monotonically, so the pack-time universe (the union of the current
    states) is closed under every future round — bit-for-bit exact.
    """

    def __init__(self, algorithm):
        super().__init__(algorithm)
        self.universe: List[Any] = []

    def pack(self, states):
        np = _np
        values = set()
        for state in states:
            values.update(state)  # TypeError on non-set states -> fallback
        self.universe = sorted(values, key=canonical_repr)
        index = {value: i for i, value in enumerate(self.universe)}
        packed = np.zeros((len(states), len(self.universe)), dtype=bool)
        for j, state in enumerate(states):
            for value in state:
                packed[j, index[value]] = True
        return packed

    def unpack(self, packed):
        universe = self.universe
        return [
            frozenset(universe[i] for i in np_row.nonzero()[0])
            for np_row in packed
        ]

    def step(self, packed, csr):
        np = _np
        # Broadcast sends the state itself; delivery ORs the senders'
        # membership rows into each receiver (self-loops keep the old
        # state in exactly the same way the object transition does).
        received = np.zeros_like(packed)
        np.logical_or.at(received, csr.targets, packed[csr.sources])
        return packed | received


# -- Push-Sum (outdegree-aware) ----------------------------------------- #

class PushSumKernel(VectorKernel):
    """Float kernel for :class:`~repro.algorithms.push_sum.PushSumAlgorithm`:
    states ``(y, z)`` pack to an ``(n, 2)`` float64 array; the round is a
    divide-by-outdegree gather and a per-receiver ``bincount`` sum."""

    def pack(self, states):
        np = _np
        packed = np.array([(float(y), float(z)) for (y, z) in states], dtype=np.float64)
        packed = packed.reshape(len(states), 2)
        return packed

    def unpack(self, packed):
        return [(float(y), float(z)) for y, z in packed]

    def step(self, packed, csr):
        np = _np
        _require_positive_outdegrees(csr)
        shares = packed / csr.outdegrees[:, None]
        gathered = shares[csr.sources]
        n = csr.n
        y = np.bincount(csr.targets, weights=gathered[:, 0], minlength=n)
        z = np.bincount(csr.targets, weights=gathered[:, 1], minlength=n)
        return np.stack([y, z], axis=1)


class VectorPushSumKernel(VectorKernel):
    """Kernel for :class:`~repro.algorithms.push_sum.VectorPushSumAlgorithm`
    (ℝᵏ estimates): ``y`` packs to ``(n, k)``, ``z`` to ``(n,)``."""

    def __init__(self, algorithm):
        super().__init__(algorithm)
        self.k: Optional[int] = None

    def pack(self, states):
        np = _np
        ys = [state[0] for state in states]
        k = len(ys[0])
        if any(len(y) != k for y in ys):
            raise ValueError("ragged vector push-sum states")
        self.k = k
        y = np.array([[float(c) for c in row] for row in ys], dtype=np.float64)
        z = np.array([float(state[1]) for state in states], dtype=np.float64)
        return (y.reshape(len(states), k), z)

    def unpack(self, packed):
        y, z = packed
        return [
            (tuple(float(c) for c in row), float(w)) for row, w in zip(y, z)
        ]

    def step(self, packed, csr):
        np = _np
        _require_positive_outdegrees(csr)
        y, z = packed
        d = csr.outdegrees[:, None].astype(np.float64)
        shares_y = (y / d)[csr.sources]
        shares_z = (z / csr.outdegrees)[csr.sources]
        n = csr.n
        new_y = np.empty_like(y)
        for i in range(y.shape[1]):
            new_y[:, i] = np.bincount(csr.targets, weights=shares_y[:, i], minlength=n)
        new_z = np.bincount(csr.targets, weights=shares_z, minlength=n)
        return (new_y, new_z)


# -- Metropolis averaging ----------------------------------------------- #

class MetropolisKernel(VectorKernel):
    """Kernel for :class:`~repro.algorithms.metropolis.MetropolisAlgorithm`.

    The object transition removes one copy of the agent's own ``(x, deg)``
    message before folding neighbors in; since that copy's contribution
    is ``weight · (x - x) = 0``, folding over *all* in-edges (self-loop
    included) computes the same update — which is what lets the kernel be
    a single weighted scatter.
    """

    def pack(self, states):
        np = _np
        return np.array([float(state[0]) for state in states], dtype=np.float64)

    def unpack(self, packed):
        return [(float(x),) for x in packed]

    def step(self, packed, csr):
        np = _np
        x = packed
        sent_deg = csr.outdegrees - 1  # the (x, deg) message's deg field
        my_deg = csr.indegrees - 1  # len(received) - 1 at each receiver
        xj = x[csr.sources]
        degj = sent_deg[csr.sources]
        myd = my_deg[csr.targets]
        scale = 2.0 if self.algorithm.lazy else 1.0
        weight = 1.0 / (scale * (1.0 + np.maximum(myd, degj)))
        contrib = weight * (xj - x[csr.targets])
        return x + np.bincount(csr.targets, weights=contrib, minlength=csr.n)


# -- per-value Push-Sum (frequencies / multisets) ----------------------- #

class FrequencyKernel(VectorKernel):
    """Kernel for :class:`~repro.algorithms.push_sum_frequency.
    PushSumFrequencyAlgorithm`.

    State ``(unit, {ω: (y, z)})`` packs over the fixed universe of values
    present at pack time (per-value instances only ever spread existing
    values, so the universe is closed under the round function).  A
    boolean ``known`` mask tracks table membership; the join semantics —
    the retained unit enters circulation exactly once, on first hearing
    of ω — is the masked update ``z += unit`` where ``~known & heard``.
    """

    def __init__(self, algorithm):
        super().__init__(algorithm)
        self.universe: List[Any] = []

    def pack(self, states):
        np = _np
        values = set()
        for _unit, table in states:
            values.update(table)
        self.universe = sorted(values, key=canonical_repr)
        index = {value: i for i, value in enumerate(self.universe)}
        n, width = len(states), len(self.universe)
        unit = np.zeros(n, dtype=np.float64)
        y = np.zeros((n, width), dtype=np.float64)
        z = np.zeros((n, width), dtype=np.float64)
        known = np.zeros((n, width), dtype=bool)
        for j, (u, table) in enumerate(states):
            unit[j] = float(u)
            for value, (yv, zv) in table.items():
                i = index[value]
                y[j, i] = float(yv)
                z[j, i] = float(zv)
                known[j, i] = True
        return {"unit": unit, "y": y, "z": z, "known": known}

    def unpack(self, packed):
        universe = self.universe
        states = []
        for u, yr, zr, kr in zip(packed["unit"], packed["y"], packed["z"], packed["known"]):
            table = {
                universe[i]: (float(yr[i]), float(zr[i])) for i in kr.nonzero()[0]
            }
            states.append((float(u), table))
        return states

    def step(self, packed, csr):
        np = _np
        _require_positive_outdegrees(csr)
        unit, y, z, known = packed["unit"], packed["y"], packed["z"], packed["known"]
        d = csr.outdegrees[:, None].astype(np.float64)
        # A sender's message carries shares exactly for its table keys;
        # unknown entries hold (0, 0) and known=False masks them out of
        # the heard/count accounting below.
        shares_y = np.where(known, y, 0.0) / d
        shares_z = np.where(known, z, 0.0) / d
        src = csr.sources
        tgt = csr.targets
        new_y = np.zeros_like(y)
        new_z = np.zeros_like(z)
        heard = np.zeros_like(known)
        np.add.at(new_y, tgt, shares_y[src])
        np.add.at(new_z, tgt, shares_z[src])
        np.logical_or.at(heard, tgt, known[src])
        joining = heard & ~known
        new_z += unit[:, None] * joining
        return {
            "unit": unit,
            "y": new_y,
            "z": new_z,
            "known": known | heard,
        }


# ---------------------------------------------------------------------- #
# the execution façade
# ---------------------------------------------------------------------- #

class VectorExecution(Execution):
    """An :class:`Execution` whose rounds run as numpy kernels.

    Construct directly, or — equivalently — via
    ``Execution(..., vector=True)``.  The full façade behaves exactly
    like a direct execution; ``vector_active`` reports whether a kernel
    was resolved and the states packed, ``vector_fallback_reason`` names
    the first activation check that failed, ``kernel`` exposes the live
    kernel for inspection.
    """

    def __init__(
        self,
        algorithm,
        network,
        inputs: Optional[Sequence[Any]] = None,
        initial_states: Optional[Sequence[Any]] = None,
        scramble_seed: Optional[int] = 0,
        check_model: bool = True,
        *,
        vector: bool = True,
        quotient: bool = False,
        quotient_ratio: Optional[float] = None,
    ):
        del quotient, quotient_ratio  # quotient wins in Execution.__new__
        super().__init__(
            algorithm,
            network,
            inputs=inputs,
            initial_states=initial_states,
            scramble_seed=scramble_seed,
            check_model=check_model,
        )
        self.kernel: Optional[VectorKernel] = None
        self.vector_fallback_reason: Optional[str] = None
        self._packed = None
        self._vector_round = 0
        self._synced_round = 0  # round whose states the stepper holds
        if vector:
            self._activate()
        else:
            self.vector_fallback_reason = _record_fallback("disabled")

    # -- activation ----------------------------------------------------- #

    def _activate(self) -> None:
        if _np is None:
            self.vector_fallback_reason = _record_fallback("numpy-unavailable")
            return
        kernel = kernel_for(self.algorithm)
        if kernel is None:
            self.vector_fallback_reason = _record_fallback("no-kernel")
            return
        try:
            packed = kernel.pack(self._stepper.states)
        except (TypeError, ValueError, KeyError, AttributeError, IndexError):
            # States outside the kernel's representable set (exotic
            # payloads handed via initial_states): run them objectwise.
            self.vector_fallback_reason = _record_fallback("pack-failed")
            return
        self.kernel = kernel
        self._packed = packed
        _STATS["activations"] += 1

    @property
    def vector_active(self) -> bool:
        """Whether rounds actually run through a kernel."""
        return self.kernel is not None

    # -- state synchronization ------------------------------------------ #

    def _materialize(self) -> None:
        """Refresh the object-level state vector from the packed one."""
        if self.vector_active and self._synced_round != self._vector_round:
            self._stepper.states = self.kernel.unpack(self._packed)
            self._stepper.round_number = self._vector_round
            self._synced_round = self._vector_round

    def _repack(self) -> None:
        """Adopt the stepper's states/round into the packed vector (the
        snapshot layer calls this after restoring stepper fields)."""
        if self.vector_active:
            self._packed = self.kernel.pack(self._stepper.states)
            self._vector_round = self._stepper.round_number
            self._synced_round = self._stepper.round_number

    @property
    def states(self) -> List[Any]:
        self._materialize()
        return self._stepper.states

    @states.setter
    def states(self, new_states: Sequence[Any]) -> None:
        self._stepper.states = list(new_states)
        if self.vector_active:
            try:
                self._packed = self.kernel.pack(self._stepper.states)
            except (TypeError, ValueError, KeyError, AttributeError, IndexError):
                # The new configuration left the representable set (e.g. a
                # corrupted-state experiment): demote to the object path.
                self.kernel = None
                self._packed = None
                self.vector_fallback_reason = _record_fallback("pack-failed")
                self._stepper.round_number = self._vector_round
                return
            self._vector_round = self._stepper.round_number
            self._synced_round = self._stepper.round_number

    @property
    def round_number(self) -> int:
        if self.vector_active:
            return self._vector_round
        return self._stepper.round_number

    # -- the round loop ------------------------------------------------- #

    def step(self) -> int:
        if not self.vector_active:
            return self._stepper.step()
        t = self._vector_round + 1
        network = self.network
        g = network.graph_at(t)
        if g.n != self.n:
            raise ValueError(f"round {t} graph has {g.n} vertices, expected {self.n}")
        plan = self._stepper.plan_cache.plan_for(g, getattr(network, "plan_epoch", 0))
        if self._check_model:
            if not plan.all_self_loops:
                raise ValueError(
                    f"round {t} graph violates the self-loop assumption (§2.1)"
                )
            if self.algorithm.model.requires_symmetric_network and not plan.symmetric:
                raise ValueError(
                    f"round {t} graph is not symmetric but the model requires it"
                )
        csr = csr_for(plan)
        observers = self._stepper.observers
        if observers:
            return self._observed_step(t, plan, csr, observers)
        self._packed = self.kernel.step(self._packed, csr)
        self._vector_round = t
        _STATS["vector_rounds"] += 1
        return t

    def _observed_step(self, t: int, plan, csr, observers) -> int:
        """One round with the object-level record materialized.

        Outgoing payloads and inboxes come from the ordinary transport on
        the synchronized states (identical messages — the kernel computes
        the same sends), the new states from the kernel; the
        :class:`RoundRecord` observers receive carries both.  Inboxes
        appear in in-edge order: the vector path never consumes the
        scramble stream, and every kernel-backed algorithm is inbox-order
        invariant by contract.
        """
        started = time.perf_counter()
        self._materialize()
        stepper = self._stepper
        outgoing = stepper.transport.outgoing(self.algorithm, stepper.states, plan)
        inboxes = stepper.transport.deliver(plan, outgoing)
        self._packed = self.kernel.step(self._packed, csr)
        self._vector_round = t
        stepper.states = self.kernel.unpack(self._packed)
        stepper.round_number = t
        self._synced_round = t
        _STATS["observed_rounds"] += 1
        record = RoundRecord(
            round_number=t,
            plan=plan,
            algorithm=self.algorithm,
            outgoing=outgoing,
            inboxes=inboxes,
            states=tuple(stepper.states),
            wall_seconds=time.perf_counter() - started,
        )
        for observer in observers:
            observer.on_round(record)
        return t

    def run(self, rounds: int) -> "VectorExecution":
        for _ in range(rounds):
            self.step()
        return self

    def outputs(self) -> List[Any]:
        self._materialize()
        return super().outputs()

    def __repr__(self) -> str:
        if self.vector_active:
            return (
                f"VectorExecution({self.algorithm.name()}, n={self.n}, "
                f"kernel={type(self.kernel).__name__}, round={self.round_number})"
            )
        return (
            f"VectorExecution({self.algorithm.name()}, n={self.n}, "
            f"fallback={self.vector_fallback_reason!r}, round={self.round_number})"
        )
