"""The synchronous round executor (Section 2.2).

In each round ``t = 1, 2, ...`` every agent (a) applies the sending
function to generate messages, (b) receives the messages carried by the
in-edges of ``𝔾(t)``, and (c) applies the transition function.  The
executor enforces the declared communication model: an algorithm is handed
*exactly* the information its model allows — nothing for simple broadcast,
the current outdegree for outdegree awareness, per-port fan-out for output
port awareness — and message delivery order is scrambled per round so that
a transition function relying on implicit sender identities breaks loudly
in tests rather than silently cheating anonymity.

This module is the thin public façade over the layered engine of
:mod:`repro.core.engine`: topology plans (compiled, cached delivery
schedules), flavor-resolved transports, the round stepper, and
round-level instrumentation hooks.  The constructor signature and the
round-for-round state trajectories are those of the original monolithic
executor; the engine just reaches them faster.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from repro.core.agent import Algorithm
from repro.core.engine.instrumentation import RoundObserver
from repro.core.engine.plan import PlanCache
from repro.core.engine.stepper import EngineStepper
from repro.core.metrics import canonical_repr
from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph, StaticAsDynamic


class Execution:
    """One execution of an algorithm on a network.

    Parameters
    ----------
    algorithm:
        The anonymous algorithm run (identically) by every agent.
    network:
        A static :class:`DiGraph` or a :class:`DynamicGraph`.
    inputs:
        One private input value per agent; ``initial_state`` is applied to
        each.  Ignored when ``initial_states`` is given.
    initial_states:
        Explicit initial local states — the self-stabilization entry point
        (arbitrary initialization, §2.2).
    scramble_seed:
        Seed of the per-execution scramble stream (inboxes are shuffled in
        ``(round, receiver)`` order from one RNG).  ``None`` disables
        scrambling (messages arrive in in-edge order) — useful only for
        debugging; the default keeps anonymity honest.
    check_model:
        Verify per round that the network satisfies the model's class
        constraints (symmetry for ``SYMMETRIC``, staticity for
        ``OUTPUT_PORT_AWARE``).
    quotient:
        ``Execution(..., quotient=True)`` constructs a
        :class:`~repro.core.engine.quotient.QuotientExecution` instead —
        same façade, same trajectory, but rounds run on the memoized
        minimum base and states lift lazily (falling back to direct
        execution when the Lifting lemma does not apply; see that module
        for the activation rules).  ``quotient_ratio`` overrides its
        base-size activation threshold.
    vector:
        ``Execution(..., vector=True)`` constructs a
        :class:`~repro.core.engine.vector.VectorExecution` instead — same
        façade, same trajectory, but rounds run as numpy kernels for the
        algorithm families that have one (set flooding, Push-Sum and its
        variants, Metropolis), falling back to the object stepper for
        everything else.  When ``quotient`` is also requested it takes
        precedence (a quotient-active run already simulates only the
        base; vectorizing it too buys little and would double the state
        bookkeeping).
    """

    def __new__(
        cls,
        *args: Any,
        quotient: bool = False,
        quotient_ratio: Optional[float] = None,
        vector: bool = False,
        **kwargs: Any,
    ):
        if cls is Execution and quotient:
            # Imported lazily: the quotient layer subclasses this façade.
            from repro.core.engine.quotient import QuotientExecution

            return super().__new__(QuotientExecution)
        if cls is Execution and vector:
            from repro.core.engine.vector import VectorExecution

            return super().__new__(VectorExecution)
        return super().__new__(cls)

    def __init__(
        self,
        algorithm: Algorithm,
        network: Union[DiGraph, DynamicGraph],
        inputs: Optional[Sequence[Any]] = None,
        initial_states: Optional[Sequence[Any]] = None,
        scramble_seed: Optional[int] = 0,
        check_model: bool = True,
        *,
        quotient: bool = False,
        quotient_ratio: Optional[float] = None,
        vector: bool = False,
    ):
        del quotient, quotient_ratio, vector  # consumed by __new__ / the subclass
        self.algorithm = algorithm
        if isinstance(network, DiGraph):
            self.network: DynamicGraph = StaticAsDynamic(network)
            self._static = True
        else:
            self.network = network
            self._static = isinstance(network, StaticAsDynamic)
        self.n = self.network.n
        if initial_states is not None:
            if len(initial_states) != self.n:
                raise ValueError(f"got {len(initial_states)} states for {self.n} agents")
            states: List[Any] = list(initial_states)
        else:
            if inputs is None:
                raise ValueError("provide inputs or initial_states")
            if len(inputs) != self.n:
                raise ValueError(f"got {len(inputs)} inputs for {self.n} agents")
            states = [algorithm.initial_state(v) for v in inputs]
        self._scramble_seed = scramble_seed
        self._check_model = check_model
        model = algorithm.model
        if check_model and model.static_only and not self._static:
            raise ValueError(f"{model} is only meaningful on static networks (§2.2)")
        self._stepper = EngineStepper(
            algorithm,
            self.network,
            states,
            scramble_seed=scramble_seed,
            check_model=check_model,
        )

    # ------------------------------------------------------------------ #
    # engine plumbing
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> List[Any]:
        """The current local states ``q_1 .. q_n``."""
        return self._stepper.states

    @states.setter
    def states(self, new_states: Sequence[Any]) -> None:
        self._stepper.states = list(new_states)

    @property
    def round_number(self) -> int:
        return self._stepper.round_number

    @property
    def plan_cache(self) -> PlanCache:
        """The compiled-delivery-plan cache backing this execution."""
        return self._stepper.plan_cache

    def share_plan_cache(self, cache: PlanCache) -> "Execution":
        """Adopt a shared cache so executions on the same graphs reuse
        compiled plans (the batch runner does this automatically)."""
        self._stepper.plan_cache = cache
        return self

    @property
    def observers(self) -> List[RoundObserver]:
        return self._stepper.observers

    def attach(self, observer: RoundObserver) -> "Execution":
        """Attach a round-level observer (see
        :mod:`repro.core.engine.instrumentation`); returns ``self``."""
        self._stepper.attach(observer)
        return self

    def detach(self, observer: RoundObserver) -> "Execution":
        self._stepper.detach(observer)
        return self

    # ------------------------------------------------------------------ #
    # the round loop
    # ------------------------------------------------------------------ #

    def step(self) -> int:
        """Run one full round; returns the new round number."""
        return self._stepper.step()

    def run(self, rounds: int) -> "Execution":
        """Advance ``rounds`` rounds; returns ``self`` for chaining."""
        for _ in range(rounds):
            self._stepper.step()
        return self

    # ------------------------------------------------------------------ #
    # durable snapshots (the store layer sits above the engine, so these
    # convenience hooks import it lazily)
    # ------------------------------------------------------------------ #

    def snapshot(self):
        """Capture a versioned :class:`~repro.store.snapshot.Snapshot` of
        this execution — round number, local states, scramble-stream
        position, attached tracer counters.  Restoring it (here or in
        another process) and running on is bit-identical to never having
        stopped."""
        from repro.store.snapshot import snapshot_execution

        return snapshot_execution(self)

    def restore(self, snapshot) -> "Execution":
        """Restore a snapshot taken of the same computation, in place.

        Refuses snapshots from a different codec or engine generation
        (:class:`~repro.store.snapshot.SnapshotVersionError`), a different
        algorithm, or a mismatched network size; returns ``self``.
        """
        from repro.store.snapshot import restore_execution

        restore_execution(self, snapshot)
        return self

    def checkpoint_to(self, path, every: int = 10):
        """Attach a periodic checkpoint hook: every ``every`` rounds the
        current snapshot is written atomically to ``path``.  Returns the
        attached :class:`~repro.store.snapshot.Checkpointer` (call its
        ``save()`` for an off-schedule checkpoint)."""
        from repro.store.snapshot import Checkpointer

        checkpointer = Checkpointer(self, path, every=every)
        self.attach(checkpointer)
        return checkpointer

    # ------------------------------------------------------------------ #

    def outputs(self) -> List[Any]:
        """Current output variables ``x_1 .. x_n``."""
        output = self.algorithm.output
        return [output(s) for s in self._stepper.states]

    def unanimous_output(self) -> Any:
        """The common output if all agents agree, else ``None``.

        Agreement is ``==`` with a :func:`~repro.core.metrics.canonical_repr`
        fallback for unorderable or exotic payloads.  (Plain ``repr``
        comparison would be wrong for sets: two equal frozensets may
        iterate — hence print — in different orders depending on insertion
        history and hash seed; the canonicalizer sorts them first.)
        """
        outs = self.outputs()
        first = outs[0]
        first_canonical: Optional[str] = None
        for o in outs[1:]:
            try:
                if o == first:
                    continue
            except Exception:
                pass
            if first_canonical is None:
                first_canonical = canonical_repr(first)
            if canonical_repr(o) != first_canonical:
                return None
            # canonically equal but not ==: treat as agreeing (e.g. NaN
            # payloads, or equal sets whose == is shadowed).
        return first

    def __repr__(self) -> str:
        return (
            f"Execution({self.algorithm.name()}, n={self.n}, "
            f"round={self.round_number})"
        )
