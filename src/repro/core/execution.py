"""The synchronous round executor (Section 2.2).

In each round ``t = 1, 2, ...`` every agent (a) applies the sending
function to generate messages, (b) receives the messages carried by the
in-edges of ``𝔾(t)``, and (c) applies the transition function.  The
executor enforces the declared communication model: an algorithm is handed
*exactly* the information its model allows — nothing for simple broadcast,
the current outdegree for outdegree awareness, per-port fan-out for output
port awareness — and message delivery order is scrambled per round so that
a transition function relying on implicit sender identities breaks loudly
in tests rather than silently cheating anonymity.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Union

from repro.core.agent import (
    Algorithm,
    BroadcastAlgorithm,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.properties import is_symmetric
from repro.dynamics.dynamic_graph import DynamicGraph, StaticAsDynamic


class Execution:
    """One execution of an algorithm on a network.

    Parameters
    ----------
    algorithm:
        The anonymous algorithm run (identically) by every agent.
    network:
        A static :class:`DiGraph` or a :class:`DynamicGraph`.
    inputs:
        One private input value per agent; ``initial_state`` is applied to
        each.  Ignored when ``initial_states`` is given.
    initial_states:
        Explicit initial local states — the self-stabilization entry point
        (arbitrary initialization, §2.2).
    scramble_seed:
        Seed for per-round delivery-order scrambling.  ``None`` disables
        scrambling (messages arrive in in-edge order) — useful only for
        debugging; the default keeps anonymity honest.
    check_model:
        Verify per round that the network satisfies the model's class
        constraints (symmetry for ``SYMMETRIC``, staticity for
        ``OUTPUT_PORT_AWARE``).
    """

    def __init__(
        self,
        algorithm: Algorithm,
        network: Union[DiGraph, DynamicGraph],
        inputs: Optional[Sequence[Any]] = None,
        initial_states: Optional[Sequence[Any]] = None,
        scramble_seed: Optional[int] = 0,
        check_model: bool = True,
    ):
        self.algorithm = algorithm
        if isinstance(network, DiGraph):
            self.network: DynamicGraph = StaticAsDynamic(network)
            self._static = True
        else:
            self.network = network
            self._static = isinstance(network, StaticAsDynamic)
        self.n = self.network.n
        if initial_states is not None:
            if len(initial_states) != self.n:
                raise ValueError(f"got {len(initial_states)} states for {self.n} agents")
            self.states: List[Any] = list(initial_states)
        else:
            if inputs is None:
                raise ValueError("provide inputs or initial_states")
            if len(inputs) != self.n:
                raise ValueError(f"got {len(inputs)} inputs for {self.n} agents")
            self.states = [algorithm.initial_state(v) for v in inputs]
        self.round_number = 0
        self._scramble_seed = scramble_seed
        self._check_model = check_model
        model = algorithm.model
        if check_model and model.static_only and not self._static:
            raise ValueError(f"{model} is only meaningful on static networks (§2.2)")

    # ------------------------------------------------------------------ #

    def _outgoing(self, g: DiGraph, v: int) -> Any:
        """The per-edge message payloads of agent ``v`` this round.

        Returns either a single isotropic message or, in the port model, a
        list indexed by port.
        """
        alg = self.algorithm
        d = g.outdegree(v)
        if isinstance(alg, OutputPortAlgorithm):
            msgs = list(alg.messages(self.states[v], d))
            if len(msgs) != d:
                raise ValueError(
                    f"{alg.name()} produced {len(msgs)} messages for outdegree {d}"
                )
            return msgs
        if isinstance(alg, OutdegreeAlgorithm):
            return alg.message(self.states[v], d)
        if isinstance(alg, BroadcastAlgorithm):
            return alg.message(self.states[v])
        raise TypeError(f"unknown algorithm flavor: {type(alg).__name__}")

    def step(self) -> int:
        """Run one full round; returns the new round number."""
        t = self.round_number + 1
        g = self.network.graph_at(t)
        if g.n != self.n:
            raise ValueError(f"round {t} graph has {g.n} vertices, expected {self.n}")
        if self._check_model:
            if not g.all_have_self_loops():
                raise ValueError(f"round {t} graph violates the self-loop assumption (§2.1)")
            if self.algorithm.model.requires_symmetric_network and not is_symmetric(g):
                raise ValueError(f"round {t} graph is not symmetric but the model requires it")

        outgoing = [self._outgoing(g, v) for v in range(self.n)]
        port_model = isinstance(self.algorithm, OutputPortAlgorithm)

        inboxes: List[List[Any]] = [[] for _ in range(self.n)]
        for j in range(self.n):
            for e in g.in_edges(j):
                payload = outgoing[e.source]
                if port_model:
                    payload = payload[g.port_of(e)]
                inboxes[j].append(payload)

        if self._scramble_seed is not None:
            for j in range(self.n):
                rng = random.Random(self._scramble_seed * 1_000_003 + t * 9973 + j)
                rng.shuffle(inboxes[j])

        self.states = [
            self.algorithm.transition(self.states[j], tuple(inboxes[j]))
            for j in range(self.n)
        ]
        self.round_number = t
        return t

    def run(self, rounds: int) -> "Execution":
        """Advance ``rounds`` rounds; returns ``self`` for chaining."""
        for _ in range(rounds):
            self.step()
        return self

    # ------------------------------------------------------------------ #

    def outputs(self) -> List[Any]:
        """Current output variables ``x_1 .. x_n``."""
        return [self.algorithm.output(s) for s in self.states]

    def unanimous_output(self) -> Any:
        """The common output if all agents agree, else ``None``.

        Agreement is ``==`` with a ``repr`` fallback for unorderable or
        exotic payloads.  (Plain ``repr`` comparison is *wrong* for sets:
        two equal frozensets may iterate — hence print — in different
        orders depending on insertion history and hash seed.)
        """
        outs = self.outputs()
        first = outs[0]
        for o in outs[1:]:
            try:
                if o == first:
                    continue
            except Exception:
                pass
            if repr(o) != repr(first):
                return None
            # repr-equal but not ==: treat as agreeing (e.g. NaN payloads).
        return first

    def __repr__(self) -> str:
        return (
            f"Execution({self.algorithm.name()}, n={self.n}, "
            f"round={self.round_number})"
        )
