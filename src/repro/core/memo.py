"""Content-addressed memoization for the fibration and plan layers.

The fibration machinery (minimum bases, equitable partitions) and the
engine's compiled :class:`~repro.core.engine.plan.DeliveryPlan`\\ s are
pure functions of a graph's *content* — vertex count, edge multiset,
colors, values.  Yet the rest of the system keys them by object
*identity*: every Table-1/2 cell recomputes the minimum base of the same
probe graph, and a dynamic adversary that cycles through a small pool of
graphs recompiles a plan per round because every round materializes a
fresh ``DiGraph``.

This module closes that gap with one keying mechanism, the
**graph fingerprint** — 16 hex chars of SHA-256 over the vertex count,
the sorted edge multiset, and the canonicalized values (the *same*
algorithm, bit for bit, as the provenance manifests of
:mod:`repro.analysis.provenance`, which delegates here).  Fingerprints
are computed lazily and cached on the graph (``DiGraph._fingerprint``),
so a graph nobody memoizes never pays for hashing.

On top of it sit four process-local LRU caches:

* ``minimum_base``       — fingerprint → :class:`MinimumBase`
* ``equitable_partition`` — fingerprint → class list (copied out)
* ``delivery_plan``      — fingerprint → compiled ``DeliveryPlan``
* ``interned_graph``     — fingerprint → first-seen ``DiGraph`` instance

Graph *interning* (:func:`intern_graph`) maps every content-equal graph
to one representative instance, which makes the engine's identity-keyed
:class:`~repro.core.engine.plan.PlanCache` hit on revisited topologies;
the dynamic-graph layer calls it from
:meth:`~repro.dynamics.dynamic_graph.DynamicGraph.enable_interning`.

Invariants:

* **Bit-identity.**  A memo hit returns a value computed by the exact
  code a miss would run, on a content-equal graph; results are
  bit-identical with the memo layer on or off (the hypothesis suite in
  ``tests/property/test_partition_refinement.py`` pins this for whole
  table documents).
* **Per-process caches.**  Nothing here crosses process boundaries: each
  pool worker of the parallel backend grows its own caches (fork may
  duplicate warm parent caches — that is a harmless head start, not a
  channel).  Hit/miss *counters* are therefore per-process too.
* **Observable.**  :func:`memo_stats` snapshots every cache's counters;
  :func:`publish_memo_metrics` folds them into a PR-3
  ``MetricsRegistry`` (counters ``memo_<cache>_hits`` / ``_misses``),
  which is how ``python -m repro trace`` surfaces them.

Set ``REPRO_MEMO=0`` to disable every cache (lookups miss, stores are
skipped); :func:`memo_disabled` does the same for a ``with`` block.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.envflags import env_flag

from repro.core.metrics import canonical_repr
from repro.graphs.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine.plan import DeliveryPlan
    from repro.fibrations.minimum_base import MinimumBase


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #

def graph_fingerprint(graph: DiGraph) -> str:
    """A content hash of a :class:`DiGraph` — stable across processes.

    Hashes the vertex count, the sorted edge multiset (source, target,
    color) and the canonicalized vertex values; 16 hex chars of SHA-256.
    Isomorphic-but-relabelled graphs hash differently on purpose: the
    provenance manifests pin the *exact* network an experiment ran on,
    and they use this very function
    (:func:`repro.analysis.provenance.graph_fingerprint` delegates here).

    The result is cached on the graph (graphs are immutable), so repeated
    fingerprinting is one attribute read.
    """
    fp = graph._fingerprint
    if fp is None:
        edges = sorted(
            (e.source, e.target, canonical_repr(e.color)) for e in graph.edges
        )
        payload = "\x1f".join(
            [str(graph.n)]
            + [f"{s}>{t}#{c}" for s, t, c in edges]
            + [canonical_repr(graph.values)]
        )
        fp = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        graph._fingerprint = fp
    return fp


# ---------------------------------------------------------------------- #
# the cache primitive
# ---------------------------------------------------------------------- #

class MemoCache:
    """A named, bounded, LRU mapping with hit/miss counters."""

    __slots__ = ("name", "maxsize", "hits", "misses", "_data")

    def __init__(self, name: str, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("a memo cache needs room for at least one entry")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, key: str) -> Optional[Any]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry *and* reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._data)}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return (
            f"MemoCache({self.name!r}, {len(self._data)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


#: The process-local caches, in publication order.
_CACHES: Dict[str, MemoCache] = {
    "minimum_base": MemoCache("minimum_base"),
    "equitable_partition": MemoCache("equitable_partition"),
    "delivery_plan": MemoCache("delivery_plan", maxsize=256),
    "interned_graph": MemoCache("interned_graph"),
}

_MINIMUM_BASES = _CACHES["minimum_base"]
_PARTITIONS = _CACHES["equitable_partition"]
_PLANS = _CACHES["delivery_plan"]
_INTERNED = _CACHES["interned_graph"]

_disabled_depth = 0


def memo_enabled() -> bool:
    """Whether the memo layer is live (``REPRO_MEMO=0`` — or any falsy
    spelling, see :mod:`repro.envflags` — and :func:`memo_disabled` both
    switch it off)."""
    return _disabled_depth == 0 and env_flag("REPRO_MEMO", default=True)


@contextmanager
def memo_disabled():
    """Run a block with every memo cache bypassed (reentrant)."""
    global _disabled_depth
    _disabled_depth += 1
    try:
        yield
    finally:
        _disabled_depth -= 1


def clear_memos() -> None:
    """Empty every cache and zero the counters (tests and benchmarks)."""
    for cache in _CACHES.values():
        cache.clear()


def memo_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{"hits", "misses", "size"}`` snapshot, by cache name."""
    return {name: cache.stats() for name, cache in sorted(_CACHES.items())}


def publish_memo_metrics(registry, baseline: Optional[Dict[str, Dict[str, int]]] = None) -> None:
    """Fold memo counters into a ``MetricsRegistry`` as counters
    ``memo_<cache>_hits`` / ``memo_<cache>_misses``.

    ``baseline`` — a prior :func:`memo_stats` snapshot — scopes the
    numbers to one run: only the delta since the snapshot is published.
    """
    base = baseline or {}
    for name, stats in memo_stats().items():
        prior = base.get(name, {})
        registry.counter(f"memo_{name}_hits").inc(stats["hits"] - prior.get("hits", 0))
        registry.counter(f"memo_{name}_misses").inc(stats["misses"] - prior.get("misses", 0))


# ---------------------------------------------------------------------- #
# graph interning
# ---------------------------------------------------------------------- #

def intern_graph(graph: DiGraph) -> DiGraph:
    """The canonical representative of ``graph``'s content class.

    The first graph seen with a given fingerprint becomes the
    representative; every later content-equal graph maps to it.  Because
    the engine's :class:`~repro.core.engine.plan.PlanCache` keys plans by
    object identity, interning the round graphs of a recurring schedule
    turns one plan compile per *round* into one per *distinct topology*.

    With the memo layer disabled this is the identity function.
    """
    if not memo_enabled():
        return graph
    key = graph_fingerprint(graph)
    rep = _INTERNED.get(key)
    if rep is None:
        _INTERNED.put(key, graph)
        return graph
    return rep


# ---------------------------------------------------------------------- #
# fibration memoization
# ---------------------------------------------------------------------- #

def memoized_minimum_base(graph: DiGraph) -> "MinimumBase":
    """:func:`repro.fibrations.minimum_base.minimum_base`, memoized by
    content fingerprint.

    The cached :class:`MinimumBase` references the *interned*
    representative of the content class (its ``fibration.source_graph``
    may be a content-equal twin of the argument); everything else —
    base graph, classes, fibre sizes — is a pure function of content.
    """
    from repro.fibrations.minimum_base import minimum_base

    if not memo_enabled():
        return minimum_base(graph)
    graph = intern_graph(graph)
    key = graph_fingerprint(graph)
    mb = _MINIMUM_BASES.get(key)
    if mb is None:
        mb = minimum_base(graph)
        _MINIMUM_BASES.put(key, mb)
    return mb


def memoized_equitable_partition(graph: DiGraph) -> List[int]:
    """:func:`repro.fibrations.minimum_base.equitable_partition`, memoized
    by content fingerprint.  Returns a fresh list each call (the canonical
    labeling is content-determined, so hits and misses agree exactly)."""
    from repro.fibrations.minimum_base import equitable_partition

    if not memo_enabled():
        return equitable_partition(graph)
    key = graph_fingerprint(graph)
    classes = _PARTITIONS.get(key)
    if classes is None:
        classes = equitable_partition(graph)
        _PARTITIONS.put(key, classes)
    return list(classes)


# ---------------------------------------------------------------------- #
# plan memoization (consulted by PlanCache on identity misses)
# ---------------------------------------------------------------------- #

def cached_plan(graph: DiGraph) -> Optional["DeliveryPlan"]:
    """The memoized compiled plan for ``graph``'s content, if any.

    Only *already fingerprinted* graphs are looked up (the caller checks
    ``graph._fingerprint is not None`` first): a graph nobody interned or
    manifested is anonymous, and hashing it on the plan hot path would
    cost more than the compile it saves.
    """
    if not memo_enabled():
        return None
    fp = graph._fingerprint
    if fp is None:
        return None
    return _PLANS.get(fp)


def store_plan(graph: DiGraph, plan: "DeliveryPlan") -> None:
    """Record a freshly compiled plan under the graph's fingerprint —
    a no-op for anonymous (never-fingerprinted) graphs."""
    if not memo_enabled():
        return
    fp = graph._fingerprint
    if fp is not None:
        _PLANS.put(fp, plan)
