"""Metrics for δ-computation (Section 2.3).

The paper parameterizes computability by a metric ``δ`` on the output
space: the discrete metric ``δ0`` yields exact finite-time computation,
the Euclidean metric ``δ2`` yields asymptotic/approximate computation.
"""

from __future__ import annotations

from numbers import Number
from typing import Any, Sequence


def canonical_repr(x: Any) -> str:
    """A ``repr`` that is stable under container iteration order.

    Plain ``repr`` is wrong as an equality fallback for sets: two equal
    frozensets may iterate — hence print — in different orders depending
    on insertion history and the per-process hash seed.  This
    canonicalizer sorts set elements and dict items (by their own
    canonical reprs) and recurses through tuples and lists, so equal
    payloads canonicalize equally regardless of construction history.
    """
    t = type(x)
    if t is int or t is float or t is str or t is bool:
        # Scalars have no iteration order; plain repr is already
        # canonical, and this is the hot case in per-round digests.
        return repr(x)
    if isinstance(x, (set, frozenset)):
        tag = "frozenset" if isinstance(x, frozenset) else "set"
        return tag + "{" + ", ".join(sorted(canonical_repr(e) for e in x)) + "}"
    if isinstance(x, dict):
        items = sorted((canonical_repr(k), canonical_repr(v)) for k, v in x.items())
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(x, tuple):
        body = ", ".join(canonical_repr(e) for e in x)
        return "(" + body + ",)" if len(x) == 1 else "(" + body + ")"
    if isinstance(x, list):
        return "[" + ", ".join(canonical_repr(e) for e in x) + "]"
    return repr(x)


def discrete_metric(x: Any, y: Any) -> float:
    """``δ0``: 0 if equal, 1 otherwise.  Equality via ``==`` with a
    :func:`canonical_repr` fallback for unhashable/NaN-ish payloads."""
    try:
        if x == y:
            return 0.0
    except Exception:
        pass
    return 0.0 if canonical_repr(x) == canonical_repr(y) else 1.0


def euclidean_metric(x: Any, y: Any) -> float:
    """``δ2`` on scalars or same-length numeric sequences."""
    if isinstance(x, Number) and isinstance(y, Number):
        return abs(float(x) - float(y))
    xs, ys = _as_vector(x), _as_vector(y)
    if len(xs) != len(ys):
        raise ValueError(f"euclidean distance of lengths {len(xs)} and {len(ys)}")
    return sum((a - b) ** 2 for a, b in zip(xs, ys)) ** 0.5


def _as_vector(x: Any) -> Sequence[float]:
    if isinstance(x, Number):
        return [float(x)]
    try:
        return [float(a) for a in x]
    except TypeError as exc:
        raise ValueError(f"not a numeric vector: {x!r}") from exc


def spread(values: Sequence[Any], metric=euclidean_metric) -> float:
    """Max pairwise distance among agents' outputs — 0 means consensus."""
    worst = 0.0
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            worst = max(worst, metric(values[i], values[j]))
    return worst
