"""The communication models: Section 2.2's four, plus one-bit broadcast.

All models share the same synchronous round structure (send, receive,
transition); they differ only in what the sending function may depend on:

* ``SIMPLE_BROADCAST`` — the message depends on the local state alone; the
  agent knows nothing about who (or how many) will hear it.
* ``OUTDEGREE_AWARE`` — the message may also depend on the current
  outdegree ``d⁻`` (the number of recipients, self included), but is the
  same on every out-edge (isotropic).
* ``SYMMETRIC`` — the sending function is that of simple broadcast, but the
  algorithm is only ever run in the class of networks with bidirectional
  links.  In *static* symmetric networks agents can recover their outdegree
  from their first-round indegree, so this model subsumes outdegree
  awareness there (§2.2).
* ``OUTPUT_PORT_AWARE`` — out-edges carry distinct local port labels
  ``0 .. d⁻-1`` and each port may get a different message.  Only meaningful
  for static networks (fixed labellings).
* ``ONE_BIT_BROADCAST`` — the bandwidth-starved variant of
  Blanc/Di Luna/Viglietta (see PAPERS.md): the sending function may see
  the current outdegree, but the message alphabet is ``{0, 1}`` — a
  single bit cast identically to every recipient per round.  The first
  model pack beyond the paper's four; the engine delivers the full
  multiset of in-edge bits each round.
"""

from __future__ import annotations

import enum


class CommunicationModel(enum.Enum):
    SIMPLE_BROADCAST = "simple broadcast"
    OUTDEGREE_AWARE = "outdegree awareness"
    SYMMETRIC = "symmetric communications"
    OUTPUT_PORT_AWARE = "output port awareness"
    ONE_BIT_BROADCAST = "one-bit broadcast"

    @property
    def isotropic(self) -> bool:
        """True when the same message goes to every recipient."""
        return self is not CommunicationModel.OUTPUT_PORT_AWARE

    @property
    def requires_symmetric_network(self) -> bool:
        return self is CommunicationModel.SYMMETRIC

    @property
    def static_only(self) -> bool:
        """Output-port awareness needs fixed labellings (§2.2)."""
        return self is CommunicationModel.OUTPUT_PORT_AWARE

    @property
    def sees_outdegree(self) -> bool:
        """Whether the sending function receives the current outdegree."""
        return self in (
            CommunicationModel.OUTDEGREE_AWARE,
            CommunicationModel.OUTPUT_PORT_AWARE,
            CommunicationModel.ONE_BIT_BROADCAST,
        )

    @property
    def outdegree_message_preserving(self) -> bool:
        """Whether outdegree-preserving fibrations are assumed to carry the
        model's messages faithfully (the quotient layer's activation gate).

        The paper's isotropic models satisfy this by construction: the
        sending function sees at most the outdegree, so a fibration that
        preserves outdegrees reproduces every payload on the base.  The
        one-bit model is *not* assumed to — its bit-width restriction is a
        bandwidth property of the channel, not of the sending function,
        and the quotient layer makes no faithfulness claim for it, taking
        the checked fallback instead (see
        :mod:`repro.core.engine.quotient`).
        """
        return self is not CommunicationModel.ONE_BIT_BROADCAST

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
