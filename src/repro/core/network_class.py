"""Network classes and centralized-help levels (Sections 2.1 and 4.4–4.5).

A *network class* is an isomorphism-closed set of (dynamic) graphs; what an
agent "knows" about the network is which class it is promised to lie in.
The experiments sweep the four help levels of Tables 1 and 2 — nothing, a
bound on ``n``, ``n`` itself, or one (or ℓ) distinguished leaders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.models import CommunicationModel


class Knowledge(enum.Enum):
    """The row labels of Tables 1 and 2."""

    NONE = "no centralized help"
    BOUND_N = "a bound over n is known"
    EXACT_N = "n is known"
    LEADER = "one leader"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NetworkClassSpec:
    """One experimental regime: a communication model plus help level.

    ``n_bound`` carries the promised bound (for ``BOUND_N``) or the exact
    size (for ``EXACT_N``); ``leader_count`` the promised number of leaders
    (for ``LEADER``); ``dynamic`` distinguishes Table 1 from Table 2.
    """

    model: CommunicationModel
    knowledge: Knowledge
    dynamic: bool = False
    n_bound: Optional[int] = None
    leader_count: int = 1

    def __post_init__(self) -> None:
        if self.knowledge in (Knowledge.BOUND_N, Knowledge.EXACT_N) and self.n_bound is None:
            raise ValueError(f"{self.knowledge} needs n_bound")
        if self.model.static_only and self.dynamic:
            raise ValueError(f"{self.model} is only meaningful for static networks")

    def describe(self) -> str:
        setting = "dynamic" if self.dynamic else "static"
        return f"{setting} / {self.model.value} / {self.knowledge.value}"
