"""Dynamic graphs: the time-varying networks of Sections 2 and 5."""

from repro.dynamics.dynamic_graph import (
    DynamicGraph,
    FunctionDynamicGraph,
    PeriodicDynamicGraph,
    SequenceDynamicGraph,
    StaticAsDynamic,
)
from repro.dynamics.generators import (
    random_dynamic_strongly_connected,
    recurring_dynamic_pool,
    random_dynamic_symmetric,
    sparse_pulsed_dynamic,
)
from repro.dynamics.diameter import dynamic_diameter, window_to_completeness
from repro.dynamics.starts import AsynchronousStartGraph
from repro.dynamics.weak_connectivity import (
    certify_unbounded_diameter,
    eventually_split_dynamic,
    growing_gap_dynamic,
)
from repro.dynamics.pairwise import random_matching_dynamic
from repro.dynamics.adversarial import (
    bottleneck_dynamic,
    rooted_tree_dynamic,
    rotating_star_dynamic,
)
from repro.dynamics.lossy import LossyDynamicGraph

__all__ = [
    "AsynchronousStartGraph",
    "LossyDynamicGraph",
    "bottleneck_dynamic",
    "rooted_tree_dynamic",
    "rotating_star_dynamic",
    "DynamicGraph",
    "FunctionDynamicGraph",
    "PeriodicDynamicGraph",
    "SequenceDynamicGraph",
    "StaticAsDynamic",
    "certify_unbounded_diameter",
    "dynamic_diameter",
    "eventually_split_dynamic",
    "growing_gap_dynamic",
    "random_dynamic_strongly_connected",
    "random_dynamic_symmetric",
    "random_matching_dynamic",
    "recurring_dynamic_pool",
    "sparse_pulsed_dynamic",
    "window_to_completeness",
]
