"""Adversarial dynamic schedules: worst-case-flavored communication patterns.

The paper's guarantees are worst-case over dynamic graphs with a given
dynamic diameter, so benchmarks on random graphs (which mix fast)
understate the constants.  This module provides classically hard
schedules:

* :func:`rotating_star_dynamic` — each round a star centered on a
  rotating hub: per-round diameter 2, but consecutive rounds share
  (almost) no edges and relayed information must chase the moving hub —
  the standard example that per-round structure cannot be accumulated;
* :func:`rooted_tree_dynamic` — each round a random *in-tree* toward a
  rotating root plus the root's out-star: information flows through a
  single bottleneck vertex per round (the "rooted with bounded delay"
  regime of footnote 8's Cao–Morse–Anderson theorem);
* :func:`bottleneck_dynamic` — two cliques joined by a single bridge that
  is only up every ``k`` rounds: finite dynamic diameter with a tight
  communication bottleneck, the classic slow-mixing shape.
"""

from __future__ import annotations

from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph, FunctionDynamicGraph


def rotating_star_dynamic(n: int) -> DynamicGraph:
    """Round ``t``: a bidirectional star centered on vertex ``t mod n``."""
    if n < 2:
        raise ValueError("need n >= 2")

    def fn(t: int) -> DiGraph:
        hub = t % n
        specs = []
        for v in range(n):
            if v != hub:
                specs.append((hub, v))
                specs.append((v, hub))
        return DiGraph(n, specs, ensure_self_loops=True)

    return FunctionDynamicGraph(n, fn)


def rooted_tree_dynamic(n: int, seed: int = 0) -> DynamicGraph:
    """Round ``t``: a random in-tree toward a rotating root, plus the
    root's broadcast edges — everything funnels through one vertex."""
    import random

    if n < 2:
        raise ValueError("need n >= 2")

    def fn(t: int) -> DiGraph:
        rng = random.Random(hash((seed, t)) & 0x7FFFFFFF)
        root = t % n
        order = [v for v in range(n) if v != root]
        rng.shuffle(order)
        specs = []
        placed = [root]
        for v in order:
            parent = rng.choice(placed)
            specs.append((v, parent))  # toward the root
            placed.append(v)
        for v in range(n):
            if v != root:
                specs.append((root, v))  # root broadcasts back out
        return DiGraph(n, specs, ensure_self_loops=True)

    return FunctionDynamicGraph(n, fn)


def bottleneck_dynamic(n: int, bridge_every: int = 3) -> DynamicGraph:
    """Two bidirectional cliques; the single bridge is up every ``k`` rounds."""
    if n < 4:
        raise ValueError("need n >= 4 for two nontrivial cliques")
    if bridge_every < 1:
        raise ValueError("bridge_every must be >= 1")
    half = n // 2

    def fn(t: int) -> DiGraph:
        specs = []
        for block in (range(half), range(half, n)):
            block = list(block)
            for i in block:
                for j in block:
                    if i != j:
                        specs.append((i, j))
        if t % bridge_every == 0:
            specs.append((half - 1, half))
            specs.append((half, half - 1))
        return DiGraph(n, specs, ensure_self_loops=True)

    return FunctionDynamicGraph(n, fn)
