"""Dynamic diameter (Section 2.1).

``D`` is the smallest integer such that *every* window
``𝔾(t) ∘ ... ∘ 𝔾(t+D-1)`` is the complete graph — i.e. from every round,
every agent's information reaches every other within ``D`` rounds.  On an
infinite object this can only be certified over a horizon; callers state
how far they have looked.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.products import graph_product
from repro.graphs.properties import is_complete
from repro.dynamics.dynamic_graph import DynamicGraph


def window_to_completeness(dg: DynamicGraph, start: int, max_length: int) -> Optional[int]:
    """The least ``L`` with ``𝔾(start) ∘ ... ∘ 𝔾(start+L-1)`` complete.

    Returns ``None`` if no window of length up to ``max_length`` suffices.
    """
    acc = None
    for length in range(1, max_length + 1):
        g = dg.graph_at(start + length - 1)
        acc = g if acc is None else graph_product(acc, g)
        if is_complete(acc):
            return length
    return None


def dynamic_diameter(dg: DynamicGraph, horizon: int, max_diameter: Optional[int] = None) -> int:
    """The dynamic diameter certified over starts ``1 .. horizon``.

    Returns the max over ``t ≤ horizon`` of the window length needed from
    round ``t``.  Raises ``ValueError`` when some window never completes
    within ``max_diameter`` (default ``4·n·horizon`` as a generous cap) —
    i.e. the graph does not *appear* to have a finite dynamic diameter.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    cap = max_diameter if max_diameter is not None else 4 * dg.n * max(horizon, 1) + 4
    worst = 1
    for t in range(1, horizon + 1):
        length = window_to_completeness(dg, t, cap)
        if length is None:
            raise ValueError(
                f"no complete window of length <= {cap} from round {t}; "
                "dynamic diameter looks infinite"
            )
        worst = max(worst, length)
    return worst
