"""Dynamic graphs ``𝔾 = (𝔾(t))_{t ≥ 1}`` (Section 2.1).

A dynamic graph is an infinite sequence of directed graphs over a fixed
vertex set, with a self-loop at every vertex in every round.  We model it
as an object answering :meth:`graph_at` for every round ``t ≥ 1``; concrete
subclasses wrap a static graph, a finite sequence, a period, or a callable.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Sequence

from repro.graphs.digraph import DiGraph


class DynamicGraph(abc.ABC):
    """A fixed vertex set with a communication graph per round."""

    #: Number of agents (constant over time).
    n: int

    @abc.abstractmethod
    def graph_at(self, t: int) -> DiGraph:
        """The communication graph of round ``t`` (``t ≥ 1``)."""

    def _check_round(self, t: int) -> None:
        if t < 1:
            raise ValueError(f"rounds are numbered from 1, got {t}")

    def window(self, start: int, length: int) -> List[DiGraph]:
        """The graphs of rounds ``start .. start+length-1``."""
        return [self.graph_at(start + k) for k in range(length)]

    # ------------------------------------------------------------------ #
    # content interning (the memo layer)
    # ------------------------------------------------------------------ #

    def enable_interning(self) -> "DynamicGraph":
        """Route every round graph through
        :func:`repro.core.memo.intern_graph`.

        An adversary that *revisits* topologies — a periodic schedule, a
        recurring random pool — normally materializes a fresh
        content-equal :class:`DiGraph` per round, which the engine's
        identity-keyed plan cache cannot recognize.  With interning on,
        content-equal round graphs collapse to one representative
        instance, so the plan compiles once per distinct topology instead
        of once per round.  Off by default: fingerprinting every round of
        a never-repeating adversary is pure overhead.  Returns ``self``
        for chaining.
        """
        self._interning = True
        return self

    def _intern(self, graph: DiGraph) -> DiGraph:
        """Apply interning when enabled (subclasses call this on every
        graph they hand out)."""
        if getattr(self, "_interning", False):
            from repro.core.memo import intern_graph

            return intern_graph(graph)
        return graph

    # ------------------------------------------------------------------ #
    # compiled-plan invalidation (the engine's plan layer)
    # ------------------------------------------------------------------ #

    @property
    def plan_epoch(self) -> int:
        """Generation counter for compiled delivery plans.

        The engine (:mod:`repro.core.engine.plan`) caches each round
        graph's compiled delivery schedule keyed by ``(graph identity,
        plan_epoch)``.  The returned graphs are immutable, so the epoch
        only ever changes through :meth:`invalidate_plans` — a subclass
        (or a user reconfiguring one, e.g. changing a loss rate mid-run)
        calls it to retire every plan compiled so far.
        """
        return getattr(self, "_plan_epoch", 0)

    def invalidate_plans(self) -> int:
        """Retire all compiled plans for this network; returns the new epoch."""
        self._plan_epoch = self.plan_epoch + 1
        return self._plan_epoch


class StaticAsDynamic(DynamicGraph):
    """A static network viewed as the constant dynamic graph."""

    def __init__(self, graph: DiGraph):
        self.graph = graph
        self.n = graph.n

    def graph_at(self, t: int) -> DiGraph:
        self._check_round(t)
        return self.graph

    def __repr__(self) -> str:
        return f"StaticAsDynamic({self.graph!r})"


class SequenceDynamicGraph(DynamicGraph):
    """A finite prefix of graphs, then the last one forever."""

    def __init__(self, graphs: Sequence[DiGraph]):
        if not graphs:
            raise ValueError("need at least one graph")
        ns = {g.n for g in graphs}
        if len(ns) != 1:
            raise ValueError(f"all rounds must share the vertex set, got sizes {sorted(ns)}")
        self.graphs = list(graphs)
        self.n = graphs[0].n

    def graph_at(self, t: int) -> DiGraph:
        self._check_round(t)
        return self._intern(self.graphs[min(t - 1, len(self.graphs) - 1)])


class PeriodicDynamicGraph(DynamicGraph):
    """Cycles through a finite list of graphs forever."""

    def __init__(self, graphs: Sequence[DiGraph]):
        if not graphs:
            raise ValueError("need at least one graph")
        ns = {g.n for g in graphs}
        if len(ns) != 1:
            raise ValueError(f"all rounds must share the vertex set, got sizes {sorted(ns)}")
        self.graphs = list(graphs)
        self.n = graphs[0].n

    def graph_at(self, t: int) -> DiGraph:
        self._check_round(t)
        return self._intern(self.graphs[(t - 1) % len(self.graphs)])


class FunctionDynamicGraph(DynamicGraph):
    """A dynamic graph defined by an arbitrary (deterministic) callable.

    The callable must be a pure function of ``t`` — the executor may query
    the same round more than once.  Results are memoized.
    """

    def __init__(self, n: int, fn: Callable[[int], DiGraph]):
        self.n = n
        self._fn = fn
        self._cache: dict = {}

    def graph_at(self, t: int) -> DiGraph:
        self._check_round(t)
        if t not in self._cache:
            g = self._fn(t)
            if g.n != self.n:
                raise ValueError(f"round {t} produced a graph on {g.n} != {self.n} vertices")
            # Intern *before* memoizing so rounds that regenerate an
            # already-seen topology share one instance (and its plan).
            self._cache[t] = self._intern(g)
        return self._cache[t]

    def invalidate_plans(self) -> int:
        """Also drop the memoized graphs: a bumped epoch means the
        callable's output is no longer trusted to be the same."""
        self._cache.clear()
        return super().invalidate_plans()
