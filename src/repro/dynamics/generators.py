"""Random dynamic graphs with certified finite dynamic diameter."""

from __future__ import annotations

from repro.graphs.builders import (
    random_strongly_connected,
    random_symmetric_connected,
)
from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph, FunctionDynamicGraph


def random_dynamic_symmetric(
    n: int, seed: int = 0, extra_edge_prob: float = 0.2
) -> DynamicGraph:
    """Each round an independent random *connected symmetric* graph.

    Connectivity in every round bounds the dynamic diameter by ``n - 1``
    (one new vertex is reached per round along a connected graph).
    """

    def fn(t: int) -> DiGraph:
        return random_symmetric_connected(n, extra_edge_prob, seed=hash((seed, t)) & 0x7FFFFFFF)

    return FunctionDynamicGraph(n, fn)


def random_dynamic_strongly_connected(
    n: int, seed: int = 0, extra_edge_prob: float = 0.2
) -> DynamicGraph:
    """Each round an independent random strongly connected digraph.

    Strong connectivity every round bounds the dynamic diameter by ``n - 1``.
    """

    def fn(t: int) -> DiGraph:
        return random_strongly_connected(n, extra_edge_prob, seed=hash((seed, t)) & 0x7FFFFFFF)

    return FunctionDynamicGraph(n, fn)


def recurring_dynamic_pool(
    n: int,
    period: int = 5,
    seed: int = 0,
    symmetric: bool = False,
    extra_edge_prob: float = 0.2,
    intern: bool = True,
) -> DynamicGraph:
    """A dynamic adversary cycling through a fixed pool of ``period``
    random connected graphs (round ``t`` draws pool entry ``(t-1) %
    period``).

    This is the regime where related work scales anonymous
    dynamic-network computation — the adversary is adversarial but not
    *novel* every round — and where plan compilation dominates the naive
    engine's round cost.  With ``intern=True`` (the default) the round
    graphs are routed through :func:`repro.core.memo.intern_graph`, so
    revisiting a pool entry returns the *same* :class:`DiGraph` instance
    and the engine compiles ``period`` plans total instead of one per
    round; ``intern=False`` keeps the old materialize-per-round behavior
    (the benchmark's baseline).

    Every pool entry is connected, so the dynamic diameter is finite
    (at most ``n - 1`` rounds reach everyone).
    """
    if period < 1:
        raise ValueError("a recurring pool needs at least one graph")
    build = random_symmetric_connected if symmetric else random_strongly_connected

    def fn(t: int) -> DiGraph:
        return build(n, extra_edge_prob, seed=hash((seed, (t - 1) % period)) & 0x7FFFFFFF)

    dynamic = FunctionDynamicGraph(n, fn)
    if intern:
        dynamic.enable_interning()
    return dynamic


def sparse_pulsed_dynamic(
    n: int,
    pulse_every: int = 3,
    seed: int = 0,
    symmetric: bool = True,
    extra_edge_prob: float = 0.2,
) -> DynamicGraph:
    """Mostly-silent rounds with a connected "pulse" every ``pulse_every`` rounds.

    Off-pulse rounds have only self-loops (agents are mutually isolated),
    so individual rounds are badly disconnected, yet the dynamic diameter
    is finite (at most ``pulse_every · (n - 1) + pulse_every``).  This is
    the paper's point that with ``D ≥ 2`` "some intermediate graphs in any
    period of length D may be disconnected (e.g., with only self-loops)".
    """
    if pulse_every < 1:
        raise ValueError("pulse_every must be >= 1")
    quiet = DiGraph(n, [], ensure_self_loops=True)
    build = random_symmetric_connected if symmetric else random_strongly_connected

    def fn(t: int) -> DiGraph:
        if t % pulse_every == 0:
            return build(n, extra_edge_prob, seed=hash((seed, t)) & 0x7FFFFFFF)
        return quiet

    return FunctionDynamicGraph(n, fn)
