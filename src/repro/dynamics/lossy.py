"""Failure injection: random per-round link loss.

The paper's channels are reliable, but its *dynamic graph* abstraction
already absorbs message loss: a dropped message in round ``t`` is simply
an edge absent from ``𝔾(t)``.  This wrapper makes that concrete — every
non-self-loop edge of the base graph is dropped independently with a
fixed probability each round (deterministically, given the seed).

As long as the loss rate leaves the composed windows complete, the
dynamic diameter stays finite (if larger) and *every* algorithm in this
library keeps its guarantees unchanged — a robustness statement the tests
exercise directly.  Symmetric loss (``preserve_symmetry=True``) drops
each bidirectional pair together, keeping the graph in the symmetric
class for the symmetric-model algorithms.
"""

from __future__ import annotations

import random

from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph


class LossyDynamicGraph(DynamicGraph):
    """Drop each (non-self-loop) edge independently per round."""

    def __init__(
        self,
        base: DynamicGraph,
        loss_probability: float,
        seed: int = 0,
        preserve_symmetry: bool = False,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.base = base
        self.loss_probability = loss_probability
        self.seed = seed
        self.preserve_symmetry = preserve_symmetry
        self.n = base.n

    def graph_at(self, t: int) -> DiGraph:
        self._check_round(t)
        g = self.base.graph_at(t)
        rng = random.Random(hash((self.seed, t)) & 0x7FFFFFFF)
        if self.preserve_symmetry:
            doomed_pairs = set()
            for e in g.edges:
                if e.source == e.target:
                    continue
                pair = (min(e.source, e.target), max(e.source, e.target))
                if pair not in doomed_pairs and rng.random() < self.loss_probability:
                    doomed_pairs.add(pair)
            specs = [
                (e.source, e.target, e.color)
                for e in g.edges
                if e.source == e.target
                or (min(e.source, e.target), max(e.source, e.target)) not in doomed_pairs
            ]
        else:
            specs = [
                (e.source, e.target, e.color)
                for e in g.edges
                if e.source == e.target or rng.random() >= self.loss_probability
            ]
        return DiGraph(g.n, specs, values=g.values, ensure_self_loops=True)
