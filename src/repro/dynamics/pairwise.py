"""Pairwise interactions: the population-protocol communication pattern.

The paper observes (§1, footnote 2) that the population-protocol model's
pairwise interactions correspond to "a dynamic network with symmetric
communications and vertices of degree zero or one".  This module realizes
that pattern as a dynamic graph: every round is a random partial matching
(each agent talks to at most one partner), scheduled so that every pair
interacts infinitely often.

With a *uniformly random maximal* matching per round, any fixed pair
meets with probability ≥ 1/n² each round, so over windows of
O(n² log n) rounds the composition is complete with high probability —
in practice these graphs have a modest finite dynamic diameter and all
the symmetric-model algorithms of this library run unchanged on them,
connecting the paper's framework to population protocols.
"""

from __future__ import annotations

import random

from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph, FunctionDynamicGraph


def random_matching_dynamic(n: int, seed: int = 0) -> DynamicGraph:
    """Each round a uniformly random maximal matching (degree ≤ 1)."""
    if n < 1:
        raise ValueError("need n >= 1")

    def fn(t: int) -> DiGraph:
        rng = random.Random(hash((seed, t)) & 0x7FFFFFFF)
        agents = list(range(n))
        rng.shuffle(agents)
        specs = []
        for k in range(0, n - 1, 2):
            a, b = agents[k], agents[k + 1]
            specs.append((a, b))
            specs.append((b, a))
        return DiGraph(n, specs, ensure_self_loops=True)

    return FunctionDynamicGraph(n, fn)
