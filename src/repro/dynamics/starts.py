"""Asynchronous starts as a dynamic-graph transformation (§2.2, §5.3).

An execution in which agent ``i`` wakes up at round ``s_i`` is the same as
a synchronous-start execution over the masked dynamic graph

    Ẽ_t = { (i, j) ∈ E_t : i = j  ∨  t ≥ max(s_i, s_j) },

i.e. sleeping agents keep only their self-loop.  If the underlying graph
has dynamic diameter ``D``, the masked graph has dynamic diameter at most
``max(s_i) + D``.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph


class AsynchronousStartGraph(DynamicGraph):
    """The masked dynamic graph ``𝔾̃`` induced by per-agent start rounds."""

    def __init__(self, base: DynamicGraph, start_rounds: Sequence[int]):
        if len(start_rounds) != base.n:
            raise ValueError(f"need one start round per agent, got {len(start_rounds)} for {base.n}")
        if any(s < 1 for s in start_rounds):
            raise ValueError("start rounds are numbered from 1")
        self.base = base
        self.start_rounds = tuple(start_rounds)
        self.n = base.n

    def graph_at(self, t: int) -> DiGraph:
        self._check_round(t)
        g = self.base.graph_at(t)
        specs = []
        for e in g.edges:
            if e.source == e.target or t >= max(
                self.start_rounds[e.source], self.start_rounds[e.target]
            ):
                specs.append((e.source, e.target, e.color))
        return DiGraph(g.n, specs, values=g.values, ensure_self_loops=True)

    @property
    def latest_start(self) -> int:
        return max(self.start_rounds)
