"""Beyond finite dynamic diameter: the §6 connectivity questions, runnable.

The paper's concluding remarks ask which computability results survive
when the network, "while never becoming permanently split", does *not*
have a finite dynamic diameter — the regime of Moreau's theorem, standard
when studying natural systems.  This module provides:

* :func:`growing_gap_dynamic` — a dynamic graph whose connected "pulses"
  are separated by ever-longer silent stretches: every pair of agents
  still communicates infinitely often (never permanently split) but the
  window needed for completeness from round ``t`` grows without bound, so
  the dynamic diameter is infinite;
* :func:`eventually_split_dynamic` — the true negative control: two halves
  that stop talking after a cutoff round (permanently split);
* :func:`certify_unbounded_diameter` — checks, over a horizon, that the
  windows-to-completeness really do grow.

The accompanying tests demonstrate the paper's expectations: gossip (a
monotone flood) and Metropolis (covered by Moreau's theorem for symmetric
models) still converge under growing gaps, Push-Sum still converges there
too (its correctness needs mass mixing, which infinitely-recurrent
connectivity provides, only the *rate* bound is lost), and everything
fails on a permanent split.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graphs.builders import random_symmetric_connected
from repro.graphs.digraph import DiGraph
from repro.dynamics.dynamic_graph import DynamicGraph, FunctionDynamicGraph
from repro.dynamics.diameter import window_to_completeness


def growing_gap_dynamic(
    n: int,
    seed: int = 0,
    extra_edge_prob: float = 0.2,
) -> DynamicGraph:
    """Connected pulses at rounds 1, 4, 9, 16, ... — quiet in between.

    From any round ``t``, completeness waits for the next perfect-square
    pulse, so the needed window grows like ``√t``: the dynamic diameter is
    infinite, yet no pair of agents is ever permanently cut off (pulses
    recur forever) — exactly the "never permanently split, no finite
    dynamic diameter" regime of §6.
    """
    quiet = DiGraph(n, [], ensure_self_loops=True)

    def fn(t: int) -> DiGraph:
        root = int(t ** 0.5)
        if root * root == t or (root + 1) * (root + 1) == t:
            return random_symmetric_connected(n, extra_edge_prob, seed=hash((seed, t)) & 0x7FFFFFFF)
        return quiet

    return FunctionDynamicGraph(n, fn)


def eventually_split_dynamic(
    n: int,
    split_at: int,
    seed: int = 0,
) -> DynamicGraph:
    """Fully connected until ``split_at``, then two silent halves forever.

    The negative control: after the cutoff the halves are *permanently*
    split, so nothing global is computable from then on — information
    frozen at the cutoff is all the agents will ever share.
    """
    if n < 2:
        raise ValueError("a split needs at least two agents")
    half = n // 2

    def fn(t: int) -> DiGraph:
        if t < split_at:
            return random_symmetric_connected(n, 0.3, seed=hash((seed, t)) & 0x7FFFFFFF)
        specs = []
        for block in (range(half), range(half, n)):
            block = list(block)
            for i in range(len(block)):
                a, b = block[i], block[(i + 1) % len(block)]
                if a != b:
                    specs.append((a, b))
                    specs.append((b, a))
        return DiGraph(n, sorted(set(specs)), ensure_self_loops=True)

    return FunctionDynamicGraph(n, fn)


def certify_unbounded_diameter(
    dg: DynamicGraph, starts: List[int], cap: int = 512
) -> Optional[List[int]]:
    """Windows-to-completeness from each start round, or ``None`` if some
    window never completes within ``cap`` (which for a growing-gap graph
    means the probe outgrew the cap, not a split)."""
    windows = []
    for t in starts:
        w = window_to_completeness(dg, t, cap)
        if w is None:
            return None
        windows.append(w)
    return windows
