"""One parser for every ``REPRO_*`` boolean environment switch.

The engine grew its feature flags one at a time — ``REPRO_PARALLEL``,
``REPRO_MEMO``, ``REPRO_QUOTIENT``, now ``REPRO_VECTOR`` — and each site
initially parsed the variable by hand, which is how ``REPRO_PARALLEL=0``
came to *enable* nothing while ``REPRO_MEMO=0`` *disabled* something and
``REPRO_QUOTIENT=false`` silently meant "off" only because it wasn't the
literal ``"1"``.  :func:`env_flag` is the single shared reading:

* the **falsy spellings** ``0``, ``false``, ``no``, ``off`` and the empty
  string always disable, whatever the flag's default;
* the **truthy spellings** ``1``, ``true``, ``yes``, ``on`` always enable;
* an unset variable — or an unrecognized value — yields ``default``, so
  a typo can never silently flip a flag away from its documented default.

Spellings are case-insensitive and surrounding whitespace is ignored.
This module imports nothing from the package (it is a leaf, usable from
``core.memo`` and ``store.cache`` alike without cycles).
"""

from __future__ import annotations

import math
import os
from typing import FrozenSet, Optional

#: Spellings that always disable a flag (case-insensitive, stripped).
FALSY: FrozenSet[str] = frozenset({"", "0", "false", "no", "off"})
#: Spellings that always enable a flag.
TRUTHY: FrozenSet[str] = frozenset({"1", "true", "yes", "on"})


def parse_flag(raw: "str | None", default: bool = False) -> bool:
    """Interpret one raw string (``None`` = unset) under the shared
    truthy/falsy table."""
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in FALSY:
        return False
    if value in TRUTHY:
        return True
    return default


def env_flag(name: str, default: bool = False) -> bool:
    """The boolean value of environment variable ``name``.

    ``default`` is returned when the variable is unset or holds an
    unrecognized spelling; the canonical falsy/truthy spellings win over
    the default in both directions.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return parse_flag(raw, default=default)


def env_float(
    name: str, default: float, minimum: Optional[float] = None
) -> float:
    """A float-valued environment variable with validation.

    The scheduler's timing knobs (``REPRO_HEARTBEAT_SECONDS=...``,
    ``REPRO_LEASE_STALE_SECONDS=...``) route through here.  Unset, empty,
    unparsable, non-finite, and below-``minimum`` values all yield
    ``default`` — a typo'd interval can never make every lease look
    permanently stale (or permanently fresh).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    raw = raw.strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    if not math.isfinite(value):
        return default
    if minimum is not None and value < minimum:
        return default
    return value


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> int:
    """An integer-valued environment variable with validation.

    The service's listener knobs (``REPRO_SERVICE_PORT=...``,
    ``REPRO_SERVICE_BACKLOG=...``) route through here — same contract as
    :func:`env_float`: unset, empty, unparsable, and out-of-range values
    all yield ``default``, so a typo'd port can never make the listener
    bind somewhere surprising.  Note the range is inclusive on both ends
    and ``minimum`` may legitimately be ``0`` (port 0 = bind ephemerally).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    raw = raw.strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    if minimum is not None and value < minimum:
        return default
    if maximum is not None and value > maximum:
        return default
    return value


def env_path(name: str) -> "str | None":
    """A path-valued environment variable, or ``None``.

    Unset, empty, and whitespace-only all mean "not configured" — the
    same reading everywhere (``REPRO_STORE`` uses this), so exporting
    ``REPRO_STORE=""`` disables the store instead of opening one rooted
    at the empty path.
    """
    raw = os.environ.get(name, "").strip()
    return raw or None
