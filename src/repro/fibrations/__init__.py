"""Graph fibrations: morphisms, fibres, minimum bases, and lifting.

This subpackage implements Section 3 of the paper: graph morphisms and
fibrations between valued/colored multigraphs (:mod:`.morphism`,
:mod:`.fibration`), the minimum base and the coarsest-equitable-partition
construction behind it (:mod:`.minimum_base`), fibration-primality
(:mod:`.prime`), and the state/valuation lifting used by the Lifting lemma
(:mod:`.lifting`).
"""

from repro.fibrations.morphism import GraphMorphism, morphism_from_vertex_map
from repro.fibrations.fibration import (
    fibres,
    is_covering,
    is_fibration,
    ring_collapse,
)
from repro.fibrations.keys import equality_key, payloads_equal
from repro.fibrations.minimum_base import (
    equitable_partition,
    equitable_partition_reference,
    minimum_base,
    quotient_by_partition,
    same_partition,
    MinimumBase,
)
from repro.fibrations.prime import is_fibration_prime
from repro.fibrations.lifting import (
    lift_global_state,
    lift_snapshot,
    lift_valuation,
    lifted_function,
    pushdown_global_state,
    pushdown_valuation,
)

__all__ = [
    "GraphMorphism",
    "MinimumBase",
    "equality_key",
    "equitable_partition",
    "equitable_partition_reference",
    "fibres",
    "is_covering",
    "is_fibration",
    "is_fibration_prime",
    "lift_global_state",
    "lift_snapshot",
    "lift_valuation",
    "lifted_function",
    "minimum_base",
    "morphism_from_vertex_map",
    "payloads_equal",
    "pushdown_global_state",
    "pushdown_valuation",
    "quotient_by_partition",
    "ring_collapse",
    "same_partition",
]
