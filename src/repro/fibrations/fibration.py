"""Fibration checking, fibres, coverings, and the ring collapse of §4.1.

A fibration ``φ : G -> B`` is a morphism with *unique edge lifting*: for
every edge ``e`` of ``B`` and every vertex ``i`` of ``G`` with
``φ(i) = t(e)``, exactly one edge of ``G`` with target ``i`` maps to ``e``.
Following the paper we restrict fibrations to epimorphisms.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional

from repro.graphs.digraph import DiGraph
from repro.graphs.builders import bidirectional_ring, directed_ring
from repro.fibrations.morphism import GraphMorphism
from repro.fibrations.minimum_base import quotient_by_partition


def is_fibration(phi: GraphMorphism, require_epi: bool = True) -> bool:
    """True iff the (valid) morphism has the unique-lifting property."""
    if not phi.is_valid():
        return False
    if require_epi and not phi.is_epimorphism():
        return False
    g, b = phi.source_graph, phi.target_graph
    # For each vertex i of G, the edge map restricted to in-edges of i must
    # be a bijection onto the in-edges of φ(i).
    for i in g.vertices():
        images = [phi.edge_map[e.index] for e in g.in_edges(i)]
        expected = [e.index for e in b.in_edges(phi(i))]
        if Counter(images) != Counter(expected) or len(set(images)) != len(images):
            return False
    return True


def fibres(phi: GraphMorphism) -> Dict[int, List[int]]:
    """``fibres(φ)[j]`` = sorted list of G-vertices mapped to base vertex ``j``."""
    out: Dict[int, List[int]] = defaultdict(list)
    for v in phi.source_graph.vertices():
        out[phi(v)].append(v)
    return {j: sorted(vs) for j, vs in out.items()}


def is_covering(phi: GraphMorphism) -> bool:
    """True iff ``φ`` also has unique lifting of *out*-edges.

    With output-port awareness every fibration is a covering (Section 4.3),
    which forces all fibres to have the same cardinality.
    """
    if not is_fibration(phi):
        return False
    g, b = phi.source_graph, phi.target_graph
    for i in g.vertices():
        images = [phi.edge_map[e.index] for e in g.out_edges(i)]
        expected = [e.index for e in b.out_edges(phi(i))]
        if Counter(images) != Counter(expected) or len(set(images)) != len(images):
            return False
    return True


def _direction_colored_ring(n: int, directed: bool) -> DiGraph:
    """A ring whose edges are colored by direction — a rotation-invariant
    local output labelling (port 0 = clockwise, port 1 = counterclockwise,
    port 2 = self-loop), as required for the collapse to preserve ports."""
    ring = directed_ring(n) if directed else bidirectional_ring(n)

    def direction(e) -> int:
        if e.source == e.target:
            return 2
        if e.target == (e.source + 1) % n:
            return 0
        return 1

    return ring.with_colors(direction)


def ring_collapse(
    n: int,
    p: int,
    directed: bool = False,
    with_ports: bool = False,
    with_outdegrees: bool = False,
    base_values: Optional[List] = None,
) -> GraphMorphism:
    """The fibration ``R_n -> R_p`` of the impossibility proof (§4.1).

    Requires ``p`` to divide ``n``.  The vertex map is ``i ↦ i mod p`` and
    the base is the corresponding quotient multigraph (for ``p <= 2`` the
    quotient of a bidirectional ring has parallel edges; that is the correct
    base, faithful to the proof, rather than the simple ring ``R_p``).

    With ``with_ports`` both graphs carry a rotation-invariant port coloring
    (by direction), which the collapse preserves; with ``with_outdegrees``
    both carry the outdegree valuation.  ``base_values`` optionally assigns
    input values to the base ring, lifted to the big ring — this is how the
    counterexample input pairs ``(v, w)`` with equal frequency vectors are
    produced.
    """
    if p <= 0 or n % p != 0:
        raise ValueError(f"ring collapse needs p | n, got n={n}, p={p}")
    big = _direction_colored_ring(n, directed) if with_ports else (
        directed_ring(n) if directed else bidirectional_ring(n)
    )
    values: Optional[List] = None
    if with_outdegrees:
        values = [big.outdegree(v) for v in big.vertices()]
    if base_values is not None:
        if len(base_values) != p:
            raise ValueError(f"base_values must have length p={p}")
        lifted = [base_values[i % p] for i in range(n)]
        if values is None:
            values = lifted
        else:
            values = [(a, b) for a, b in zip(lifted, values)]
    if values is not None:
        big = big.with_values(values)
    classes = [i % p for i in range(n)]
    return quotient_by_partition(big, classes).fibration


def port_preserving_ring_collapse(n: int, p: int) -> GraphMorphism:
    """Shorthand for the colored collapse used against output-port awareness."""
    return ring_collapse(n, p, with_ports=True)
