"""Equality-based keying of edge colors and vertex values.

The fibration layer compares colors and values by **equality** with a
:func:`~repro.core.metrics.canonical_repr` fallback, matching the
``unanimous_output`` convention of the engine: ``Fraction(2, 1)`` and
``2`` are the same color, and two equal frozensets key identically no
matter how they iterate.  Raw ``repr`` keying (the previous scheme) split
equal-but-differently-printed payloads into distinct classes and made the
refiner and the morphism validator disagree.

Every module that groups or compares colors/values — the partition
refiners in :mod:`repro.fibrations.minimum_base`, the morphism machinery
in :mod:`repro.fibrations.morphism` — must key through this module so the
convention cannot drift.
"""

from __future__ import annotations

from typing import Any

from repro.core.metrics import canonical_repr


class ReprKey:
    """Hashable stand-in for an unhashable color/value: its canonical repr."""

    __slots__ = ("repr",)

    def __init__(self, r: str):
        self.repr = r

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReprKey) and self.repr == other.repr

    def __hash__(self) -> int:
        return hash(self.repr)

    def __repr__(self) -> str:
        return f"ReprKey({self.repr})"


def equality_key(x: Any) -> Any:
    """A hashable key equal exactly when the payloads are ``==``-equal.

    Hashable, self-equal payloads key as themselves (so ``Fraction(2, 1)``,
    ``2.0`` and ``2`` collide); unhashable or NaN-like payloads fall back
    to a :class:`ReprKey` of their canonical repr.
    """
    try:
        hash(x)
    except TypeError:
        return ReprKey(canonical_repr(x))
    return x if x == x else ReprKey(canonical_repr(x))


def payloads_equal(a: Any, b: Any) -> bool:
    """Equality under the shared keying — the comparison every fibration
    component must use for colors and values."""
    return equality_key(a) == equality_key(b)
