"""Lifting along fibrations — the machinery of the Lifting lemma (§3.1).

Given a fibration ``φ : G -> B``, any per-vertex data on ``B`` (input
valuations, local states, whole global states) lifts to ``G`` by copying
fibrewise: ``xᵠ_i := x_{φ(i)}``.  Lemma 3.1 states that lifted executions
are executions; the execution-level check lives in
:mod:`repro.analysis.impossibility` (it needs the simulator), while the
pure data-level lifts live here.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.fibrations.morphism import GraphMorphism


def lift_valuation(phi: GraphMorphism, base_values: Sequence[Any]) -> List[Any]:
    """``vᵠ`` — the valuation of ``G`` obtained by copying ``v`` fibrewise."""
    if len(base_values) != phi.target_graph.n:
        raise ValueError(
            f"valuation has {len(base_values)} entries for base with {phi.target_graph.n} vertices"
        )
    return [base_values[phi(i)] for i in phi.source_graph.vertices()]


def lift_global_state(phi: GraphMorphism, base_state: Sequence[Any]) -> List[Any]:
    """``Cᵠ`` — a global state of ``G`` copied fibrewise from one of ``B``.

    Identical to :func:`lift_valuation`; kept separate to mirror the paper's
    two uses (initial valuations vs. mid-execution configurations).
    """
    return lift_valuation(phi, base_state)


def lifted_function(phi: GraphMorphism, f: Callable[[Sequence[Any]], Any]) -> Callable[[Sequence[Any]], Any]:
    """``fᵠ`` — the ``n_B``-ary function ``fᵠ(v) := f(vᵠ)`` of §3.1.

    Lemma 3.2: if some algorithm δ-computes ``f`` on both ``G`` and ``B``,
    then ``fᵠ = f`` (restricted to ``n_B``-ary inputs).  The impossibility
    experiments compare ``fᵠ`` against ``f`` on concrete vectors.
    """

    def f_phi(base_values: Sequence[Any]) -> Any:
        return f(lift_valuation(phi, base_values))

    return f_phi


def pushdown_valuation(phi: GraphMorphism, values: Sequence[Any]) -> List[Any]:
    """The base valuation whose lift is ``values``; raises if not fibrewise-constant."""
    if len(values) != phi.source_graph.n:
        raise ValueError(
            f"valuation has {len(values)} entries for graph with {phi.source_graph.n} vertices"
        )
    out: List[Any] = [None] * phi.target_graph.n
    seen = [False] * phi.target_graph.n
    for i in phi.source_graph.vertices():
        j = phi(i)
        if seen[j]:
            if repr(out[j]) != repr(values[i]):
                raise ValueError(f"valuation is not constant on the fibre of base vertex {j}")
        else:
            out[j] = values[i]
            seen[j] = True
    return out
