"""Lifting along fibrations — the machinery of the Lifting lemma (§3.1).

Given a fibration ``φ : G -> B``, any per-vertex data on ``B`` (input
valuations, local states, whole global states) lifts to ``G`` by copying
fibrewise: ``xᵠ_i := x_{φ(i)}``.  Lemma 3.1 states that lifted executions
are executions; the execution-level check lives in
:mod:`repro.analysis.impossibility` (it needs the simulator), while the
pure data-level lifts live here.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.fibrations.keys import payloads_equal
from repro.fibrations.morphism import GraphMorphism


def lift_valuation(phi: GraphMorphism, base_values: Sequence[Any]) -> List[Any]:
    """``vᵠ`` — the valuation of ``G`` obtained by copying ``v`` fibrewise."""
    if len(base_values) != phi.target_graph.n:
        raise ValueError(
            f"valuation has {len(base_values)} entries for base with {phi.target_graph.n} vertices"
        )
    return [base_values[phi(i)] for i in phi.source_graph.vertices()]


def lift_global_state(phi: GraphMorphism, base_state: Sequence[Any]) -> List[Any]:
    """``Cᵠ`` — a global state of ``G`` copied fibrewise from one of ``B``.

    Identical to :func:`lift_valuation`; kept separate to mirror the paper's
    two uses (initial valuations vs. mid-execution configurations).
    """
    return lift_valuation(phi, base_state)


def lifted_function(phi: GraphMorphism, f: Callable[[Sequence[Any]], Any]) -> Callable[[Sequence[Any]], Any]:
    """``fᵠ`` — the ``n_B``-ary function ``fᵠ(v) := f(vᵠ)`` of §3.1.

    Lemma 3.2: if some algorithm δ-computes ``f`` on both ``G`` and ``B``,
    then ``fᵠ = f`` (restricted to ``n_B``-ary inputs).  The impossibility
    experiments compare ``fᵠ`` against ``f`` on concrete vectors.
    """

    def f_phi(base_values: Sequence[Any]) -> Any:
        return f(lift_valuation(phi, base_values))

    return f_phi


def pushdown_valuation(phi: GraphMorphism, values: Sequence[Any]) -> List[Any]:
    """The base valuation whose lift is ``values``; raises if not fibrewise-constant.

    Fibre payloads are compared through the shared
    :func:`~repro.fibrations.keys.payloads_equal` convention (equality with
    a canonical-repr fallback), so ``Fraction(2, 1)`` and ``2`` on the same
    fibre are one constant — raw ``repr`` comparison used to split them.
    """
    if len(values) != phi.source_graph.n:
        raise ValueError(
            f"valuation has {len(values)} entries for graph with {phi.source_graph.n} vertices"
        )
    out: List[Any] = [None] * phi.target_graph.n
    seen = [False] * phi.target_graph.n
    for i in phi.source_graph.vertices():
        j = phi(i)
        if seen[j]:
            if not payloads_equal(out[j], values[i]):
                raise ValueError(f"valuation is not constant on the fibre of base vertex {j}")
        else:
            out[j] = values[i]
            seen[j] = True
    return out


def pushdown_global_state(phi: GraphMorphism, state: Sequence[Any]) -> List[Any]:
    """The base global state whose lift is ``state``.

    Identical to :func:`pushdown_valuation`; the separate name mirrors the
    :func:`lift_valuation` / :func:`lift_global_state` pair.  Raises
    ``ValueError`` when the configuration is not fibrewise-constant — i.e.
    when it is *not* in the image of the lift and no base run can reach it.
    """
    return pushdown_valuation(phi, state)


def lift_snapshot(phi: GraphMorphism, base_snapshot):
    """Lift a base-run :class:`~repro.store.snapshot.Snapshot` along ``φ``.

    Takes a snapshot of an execution on the *base* graph ``B`` (so
    ``base_snapshot.n == phi.target_graph.n``) and returns a snapshot of
    the lifted execution on ``G``: same algorithm, same round number, same
    scramble-stream position, states copied fibrewise and re-digested.

    Lemma 3.1 makes the lifted snapshot a genuine checkpoint of a run on
    ``G`` — with one caveat: the scramble stream it carries is the *base*
    run's, so a restore only stays bit-identical to a direct full-graph
    run when the algorithm's transition is invariant under inbox order
    (as every anonymous algorithm must be).
    """
    from repro.store.snapshot import Snapshot, encode_states, state_digest

    if base_snapshot.n != phi.target_graph.n:
        raise ValueError(
            f"snapshot has {base_snapshot.n} agents, base graph has {phi.target_graph.n} vertices"
        )
    lifted = lift_global_state(phi, base_snapshot.states())
    return Snapshot(
        algorithm=base_snapshot.algorithm,
        n=phi.source_graph.n,
        round_number=base_snapshot.round_number,
        states_blob=encode_states(lifted),
        states_digest=state_digest(lifted),
        rng_state=base_snapshot.rng_state,
        tracers=list(base_snapshot.tracers),
    )
