"""Minimum bases via the coarsest equitable partition (Section 3.2).

A graph is *fibration prime* when its only fibrations are isomorphisms;
every graph has a unique (up to isomorphism) fibration-prime base, its
*minimum base*.  Two vertices of ``G`` collapse onto the same base vertex
exactly when they have the same infinite in-view — equivalently, when they
lie in the same class of the coarsest partition of ``V(G)`` that is

* compatible with the vertex valuation, and
* *equitable for in-neighborhoods*: any two vertices of a class have, for
  every class ``c`` and color ``k``, the same number of in-edges colored
  ``k`` whose source lies in ``c``.

This module computes that partition by iterated refinement, builds the
quotient multigraph, and packages the projection as an explicit fibration.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.graphs.digraph import DiGraph
from repro.fibrations.morphism import GraphMorphism, morphism_from_vertex_map


def equitable_partition(g: DiGraph) -> List[int]:
    """The coarsest in-equitable partition refining the valuation.

    Returns a class id per vertex; ids are *canonical*: classes are numbered
    by the sorted order of their stable signatures, so isomorphic graphs get
    identical id sequences up to the isomorphism.
    """
    classes = _initial_classes(g)
    while True:
        signatures = []
        for v in g.vertices():
            in_sig = Counter((classes[e.source], repr(e.color)) for e in g.in_edges(v))
            signatures.append((classes[v], tuple(sorted(in_sig.items()))))
        palette: Dict[object, int] = {}
        for s in sorted(set(signatures)):
            palette[s] = len(palette)
        new_classes = [palette[s] for s in signatures]
        if _same_partition(classes, new_classes):
            return new_classes
        classes = new_classes


def _initial_classes(g: DiGraph) -> List[int]:
    keys = [repr(g.value(v)) for v in g.vertices()]
    palette: Dict[str, int] = {}
    for k in sorted(set(keys)):
        palette[k] = len(palette)
    return [palette[k] for k in keys]


def _same_partition(a: Sequence[int], b: Sequence[int]) -> bool:
    """Do two labelings induce the same partition (ignoring label names)?"""
    fwd: Dict[int, int] = {}
    bwd: Dict[int, int] = {}
    for x, y in zip(a, b):
        if fwd.setdefault(x, y) != y or bwd.setdefault(y, x) != x:
            return False
    return True


class MinimumBase:
    """The result of a minimum-base computation.

    Attributes
    ----------
    base:
        The quotient multigraph ``B`` (valued/colored like ``G``).
    fibration:
        The projection ``φ : G -> B`` as a validated fibration.
    classes:
        Class id per ``G``-vertex; class ids are the ``B``-vertex ids.
    fibre_sizes:
        ``fibre_sizes[j]`` = cardinality of ``φ⁻¹(j)``.
    """

    __slots__ = ("base", "fibration", "classes", "fibre_sizes")

    def __init__(self, base: DiGraph, fibration: GraphMorphism, classes: List[int]):
        self.base = base
        self.fibration = fibration
        self.classes = classes
        sizes = [0] * base.n
        for c in classes:
            sizes[c] += 1
        self.fibre_sizes = sizes

    def fibre(self, base_vertex: int) -> List[int]:
        return [v for v, c in enumerate(self.classes) if c == base_vertex]

    def __repr__(self) -> str:
        return f"MinimumBase({self.fibration.source_graph.n} vertices -> {self.base.n} classes)"


def quotient_by_partition(g: DiGraph, classes: Sequence[int]) -> MinimumBase:
    """Quotient ``g`` by an *equitable* partition; raises if not equitable.

    The quotient has one vertex per class; its in-edges at class ``c`` are
    the in-edges of an (arbitrary, hence any) representative of ``c``, with
    sources replaced by their classes and colors preserved.
    """
    classes = list(classes)
    if len(classes) != g.n:
        raise ValueError(f"partition labels {len(classes)} != n {g.n}")
    ids = sorted(set(classes))
    if ids != list(range(len(ids))):
        remap = {old: new for new, old in enumerate(ids)}
        classes = [remap[c] for c in classes]
    m = len(set(classes))
    rep: List[int] = [-1] * m
    for v in range(g.n - 1, -1, -1):
        rep[classes[v]] = v

    # Equitability check: within each class, identical in-signatures.
    for c in range(m):
        sigs = set()
        for v in range(g.n):
            if classes[v] != c:
                continue
            sig = tuple(sorted(Counter(
                (classes[e.source], repr(e.color)) for e in g.in_edges(v)
            ).items()))
            sigs.add(sig)
        if len(sigs) > 1:
            raise ValueError(f"partition is not equitable at class {c}")
        # Values must be constant on classes too.
        vals = {repr(g.value(v)) for v in range(g.n) if classes[v] == c}
        if len(vals) > 1:
            raise ValueError(f"partition does not refine the valuation at class {c}")

    specs = []
    for c in range(m):
        r = rep[c]
        for e in g.in_edges(r):
            specs.append((classes[e.source], c, e.color))
    values = None
    if g.values is not None:
        values = [g.value(rep[c]) for c in range(m)]
    base = DiGraph(m, specs, values=values)
    phi = morphism_from_vertex_map(g, base, classes)
    if phi is None:
        raise AssertionError("equitable quotient must extend to a fibration")
    return MinimumBase(base, phi, classes)


def minimum_base(g: DiGraph) -> MinimumBase:
    """The minimum base of ``g`` with its projection fibration."""
    return quotient_by_partition(g, equitable_partition(g))
