"""Minimum bases via the coarsest equitable partition (Section 3.2).

A graph is *fibration prime* when its only fibrations are isomorphisms;
every graph has a unique (up to isomorphism) fibration-prime base, its
*minimum base*.  Two vertices of ``G`` collapse onto the same base vertex
exactly when they have the same infinite in-view — equivalently, when they
lie in the same class of the coarsest partition of ``V(G)`` that is

* compatible with the vertex valuation, and
* *equitable for in-neighborhoods*: any two vertices of a class have, for
  every class ``c`` and color ``k``, the same number of in-edges colored
  ``k`` whose source lies in ``c``.

:func:`equitable_partition` computes that partition with a
Hopcroft/Paige–Tarjan-style **worklist refinement**: per-vertex adjacency
and color/value keys are computed once up front, and each splitter popped
from the worklist only re-examines the vertices it actually reaches —
instead of rebuilding every vertex's full in-signature on every pass the
way the naive iterated refinement does.  The naive algorithm is retained
verbatim (modulo the shared keying) as
:func:`equitable_partition_reference`, the executable specification the
property tests compare the worklist refiner against.

Colors and values are keyed by **equality** with a
:func:`~repro.core.metrics.canonical_repr` fallback, matching the
``unanimous_output`` convention of the engine: ``Fraction(2, 1)`` and
``2`` are the same color, and two equal frozensets key equally no matter
how they iterate.  Raw ``repr`` keying (the previous scheme) split
equal-but-differently-printed payloads into distinct classes.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import canonical_repr
from repro.graphs.digraph import DiGraph
from repro.fibrations.keys import equality_key
from repro.fibrations.morphism import GraphMorphism, morphism_from_vertex_map


# ---------------------------------------------------------------------- #
# color / value keying
# ---------------------------------------------------------------------- #

def _group_by_equality(items: Iterable[Any]) -> Tuple[List[int], int]:
    """Group ``items`` by equality; returns (group id per item, #groups).

    Groups are formed by ``==`` (so ``Fraction(2, 1)``, ``2.0`` and ``2``
    share one group) with a :func:`canonical_repr` key for unhashable or
    NaN-like payloads — the shared :func:`repro.fibrations.keys.equality_key`
    convention.  Group ids are canonical: groups are numbered by the sorted
    order of their minimal canonical reprs, so relabeling the underlying
    graph cannot renumber them.
    """
    groups: Dict[Any, int] = {}
    reprs: List[str] = []
    assigned: List[int] = []
    for x in items:
        key = equality_key(x)
        idx = groups.get(key)
        if idx is None:
            idx = len(reprs)
            groups[key] = idx
            reprs.append(canonical_repr(x))
        else:
            r = canonical_repr(x)
            if r < reprs[idx]:
                reprs[idx] = r
        assigned.append(idx)
    order = sorted(range(len(reprs)), key=lambda i: (reprs[i], i))
    rank = {g: r for r, g in enumerate(order)}
    return [rank[i] for i in assigned], len(reprs)


def _edge_color_ids(g: DiGraph) -> List[int]:
    """A canonical integer color id per edge (indexed by ``edge.index``)."""
    ids, _ = _group_by_equality(e.color for e in g.edges)
    return ids


def _initial_classes(g: DiGraph) -> List[int]:
    """Vertices grouped by value equality, canonically numbered."""
    ids, _ = _group_by_equality(g.value(v) for v in g.vertices())
    return ids


# ---------------------------------------------------------------------- #
# worklist refinement
# ---------------------------------------------------------------------- #

def equitable_partition(g: DiGraph) -> List[int]:
    """The coarsest in-equitable partition refining the valuation.

    Returns a class id per vertex.  Ids are *canonical*: initial classes
    are numbered by the sorted order of their value keys, and every split
    numbers its sub-classes by their splitter signatures, so the whole
    labeling is a deterministic function of the graph that is invariant
    under vertex relabeling (isomorphic graphs get identical id sequences
    up to the isomorphism).

    The refinement is worklist-driven: a splitter class is popped, the
    vertices it reaches are bucketed by the multiset of edge colors they
    receive from it, and only the touched classes are split — classes the
    splitter cannot see are never re-examined.  When a class splits, the
    sub-classes re-enter the worklist under the Paige–Tarjan rule (all of
    them if the parent was still queued, all but the largest otherwise).
    """
    n = g.n
    classes = _initial_classes(g)
    color_ids = _edge_color_ids(g)

    # Out-adjacency once: processing splitter S touches the targets of
    # S's out-edges, i.e. exactly the vertices with an in-edge from S.
    out_adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for e in g.edges:
        out_adj[e.source].append((e.target, color_ids[e.index]))

    members: Dict[int, set] = {}
    for v, c in enumerate(classes):
        members.setdefault(c, set()).add(v)
    next_id = len(members)

    worklist = deque(sorted(members))
    queued = set(worklist)

    while worklist:
        s = worklist.popleft()
        queued.discard(s)

        # Multiset of colors each vertex receives from the splitter.
        received: Dict[int, List[int]] = {}
        for u in members[s]:
            for v, cid in out_adj[u]:
                lst = received.get(v)
                if lst is None:
                    received[v] = [cid]
                else:
                    lst.append(cid)

        by_class: Dict[int, List[int]] = {}
        for v in received:
            c = classes[v]
            if len(members[c]) > 1:
                by_class.setdefault(c, []).append(v)

        # Sorted class-id order keeps fresh-id assignment canonical.
        for c in sorted(by_class):
            vs = by_class[c]
            mem = members[c]
            sig_groups: Dict[Tuple[int, ...], List[int]] = {}
            for v in vs:
                sig_groups.setdefault(tuple(sorted(received[v])), []).append(v)
            if len(vs) == len(mem) and len(sig_groups) == 1:
                continue
            parts: List[set] = []
            if len(vs) < len(mem):
                # Untouched members receive nothing from s: signature ().
                parts.append(mem.difference(vs))
            for sig in sorted(sig_groups):
                parts.append(set(sig_groups[sig]))
            if len(parts) == 1:
                continue

            # The signature-smallest part keeps the parent id.
            members[c] = parts[0]
            fresh = []
            for part in parts[1:]:
                members[next_id] = part
                for v in part:
                    classes[v] = next_id
                fresh.append(next_id)
                next_id += 1

            if c in queued:
                # Parent still pending: queue every new part alongside it.
                for i in fresh:
                    worklist.append(i)
                    queued.add(i)
            else:
                # Parent already consumed: all parts but the largest
                # (first-largest in signature order — deterministic).
                ids = [c] + fresh
                largest = max(ids, key=lambda i: len(members[i]))
                for i in ids:
                    if i != largest:
                        worklist.append(i)
                        queued.add(i)

    remap = {c: r for r, c in enumerate(sorted(members))}
    return [remap[classes[v]] for v in range(n)]


# ---------------------------------------------------------------------- #
# the naive reference refiner
# ---------------------------------------------------------------------- #

def equitable_partition_reference(g: DiGraph) -> List[int]:
    """The naive iterated-refinement specification of
    :func:`equitable_partition`.

    Rebuilds every vertex's full in-signature each pass until the
    partition stabilizes — O(n·m) per pass.  Kept as the executable
    reference the hypothesis property suite compares the worklist refiner
    against; both use the same equality-based color/value keying, so they
    always induce the same partition (class *labels* may differ).
    """
    classes = _initial_classes(g)
    color_ids = _edge_color_ids(g)
    while True:
        signatures = []
        for v in g.vertices():
            in_sig = Counter(
                (classes[e.source], color_ids[e.index]) for e in g.in_edges(v)
            )
            signatures.append((classes[v], tuple(sorted(in_sig.items()))))
        palette: Dict[object, int] = {}
        for s in sorted(set(signatures)):
            palette[s] = len(palette)
        new_classes = [palette[s] for s in signatures]
        if same_partition(classes, new_classes):
            return new_classes
        classes = new_classes


def same_partition(a: Sequence[int], b: Sequence[int]) -> bool:
    """Do two labelings induce the same partition (ignoring label names)?"""
    fwd: Dict[int, int] = {}
    bwd: Dict[int, int] = {}
    for x, y in zip(a, b):
        if fwd.setdefault(x, y) != y or bwd.setdefault(y, x) != x:
            return False
    return True


# Backwards-compatible alias (pre-worklist name, used by older callers).
_same_partition = same_partition


# ---------------------------------------------------------------------- #
# quotients and minimum bases
# ---------------------------------------------------------------------- #

class MinimumBase:
    """The result of a minimum-base computation.

    Attributes
    ----------
    base:
        The quotient multigraph ``B`` (valued/colored like ``G``).
    fibration:
        The projection ``φ : G -> B`` as a validated fibration.
    classes:
        Class id per ``G``-vertex; class ids are the ``B``-vertex ids.
    fibre_sizes:
        ``fibre_sizes[j]`` = cardinality of ``φ⁻¹(j)``.
    """

    __slots__ = ("base", "fibration", "classes", "fibre_sizes", "_fibres")

    def __init__(self, base: DiGraph, fibration: GraphMorphism, classes: List[int]):
        self.base = base
        self.fibration = fibration
        self.classes = classes
        # Fibre lists once, up front: fibre_solver and the table cells ask
        # per base vertex, and a linear scan of `classes` per call adds up.
        fibres: List[List[int]] = [[] for _ in range(base.n)]
        for v, c in enumerate(classes):
            fibres[c].append(v)
        self._fibres = fibres
        self.fibre_sizes = [len(f) for f in fibres]

    def fibre(self, base_vertex: int) -> List[int]:
        return list(self._fibres[base_vertex])

    def __repr__(self) -> str:
        return f"MinimumBase({self.fibration.source_graph.n} vertices -> {self.base.n} classes)"


def quotient_by_partition(
    g: DiGraph, classes: Sequence[int], verify: bool = True
) -> MinimumBase:
    """Quotient ``g`` by an *equitable* partition; raises if not equitable.

    The quotient has one vertex per class; its in-edges at class ``c`` are
    the in-edges of an (arbitrary, hence any) representative of ``c``, with
    sources replaced by their classes and colors preserved.

    ``verify=False`` skips the equitability check — pass it only for a
    partition the refiner itself certified (:func:`minimum_base` does);
    hand-built partitions must keep the default so a non-equitable one is
    rejected instead of silently producing a non-fibration.
    """
    classes = list(classes)
    if len(classes) != g.n:
        raise ValueError(f"partition labels {len(classes)} != n {g.n}")
    ids = sorted(set(classes))
    if ids != list(range(len(ids))):
        remap = {old: new for new, old in enumerate(ids)}
        classes = [remap[c] for c in classes]
    m = len(set(classes))
    rep: List[int] = [-1] * m
    for v in range(g.n - 1, -1, -1):
        rep[classes[v]] = v

    if verify:
        _verify_equitable(g, classes, m)

    specs = []
    for c in range(m):
        r = rep[c]
        for e in g.in_edges(r):
            specs.append((classes[e.source], c, e.color))
    values = None
    if g.values is not None:
        values = [g.value(rep[c]) for c in range(m)]
    base = DiGraph(m, specs, values=values)
    phi = morphism_from_vertex_map(g, base, classes)
    if phi is None:
        raise AssertionError("equitable quotient must extend to a fibration")
    return MinimumBase(base, phi, classes)


def _verify_equitable(g: DiGraph, classes: List[int], m: int) -> None:
    """One linear pass: per-class value keys and in-signatures must agree."""
    color_ids = _edge_color_ids(g)
    value_keys = _initial_classes(g)
    seen_value: List[Optional[int]] = [None] * m
    seen_sig: List[Optional[Tuple]] = [None] * m
    for v in range(g.n):
        c = classes[v]
        if seen_value[c] is None:
            seen_value[c] = value_keys[v]
        elif seen_value[c] != value_keys[v]:
            raise ValueError(f"partition does not refine the valuation at class {c}")
        sig = tuple(sorted(Counter(
            (classes[e.source], color_ids[e.index]) for e in g.in_edges(v)
        ).items()))
        if seen_sig[c] is None:
            seen_sig[c] = sig
        elif seen_sig[c] != sig:
            raise ValueError(f"partition is not equitable at class {c}")


def minimum_base(g: DiGraph) -> MinimumBase:
    """The minimum base of ``g`` with its projection fibration.

    The partition comes straight from the worklist refiner, which
    certifies its own equitability, so the quotient skips the O(n + m)
    re-verification pass.
    """
    return quotient_by_partition(g, equitable_partition(g), verify=False)
