"""Morphisms of valued, colored directed multigraphs (Section 3).

A morphism ``φ : G -> H`` is a pair of maps — one on vertices, one on edges
— commuting with the source and target functions, and preserving vertex
values and edge colors when present.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.digraph import DiGraph, Edge
from repro.fibrations.keys import equality_key, payloads_equal


class GraphMorphism:
    """A graph morphism ``φ : G -> H`` given by explicit vertex and edge maps.

    Parameters
    ----------
    source_graph, target_graph:
        Domain ``G`` and codomain ``H``.
    vertex_map:
        ``vertex_map[v]`` is ``φ(v)`` for each vertex ``v`` of ``G``.
    edge_map:
        ``edge_map[e.index]`` is the index of ``φ(e)`` in ``H`` for each
        edge ``e`` of ``G``.

    ``validate()`` checks the morphism laws; construction does *not*
    validate so that search code can build candidates cheaply.
    """

    __slots__ = ("source_graph", "target_graph", "vertex_map", "edge_map")

    def __init__(
        self,
        source_graph: DiGraph,
        target_graph: DiGraph,
        vertex_map: Sequence[int],
        edge_map: Sequence[int],
    ):
        self.source_graph = source_graph
        self.target_graph = target_graph
        self.vertex_map: Tuple[int, ...] = tuple(vertex_map)
        self.edge_map: Tuple[int, ...] = tuple(edge_map)

    # ------------------------------------------------------------------ #

    def __call__(self, vertex: int) -> int:
        """``φ(vertex)``."""
        return self.vertex_map[vertex]

    def map_edge(self, edge: Edge) -> Edge:
        """``φ(edge)`` as an edge of the codomain."""
        return self.target_graph.edges[self.edge_map[edge.index]]

    def validate(self, check_values: bool = True, check_colors: bool = True) -> List[str]:
        """All morphism-law violations, as human-readable strings."""
        g, h = self.source_graph, self.target_graph
        problems: List[str] = []
        if len(self.vertex_map) != g.n:
            problems.append(f"vertex map has {len(self.vertex_map)} entries for {g.n} vertices")
            return problems
        if len(self.edge_map) != g.num_edges:
            problems.append(f"edge map has {len(self.edge_map)} entries for {g.num_edges} edges")
            return problems
        for v in g.vertices():
            if not (0 <= self.vertex_map[v] < h.n):
                problems.append(f"vertex {v} maps outside codomain")
        for e in g.edges:
            img_idx = self.edge_map[e.index]
            if not (0 <= img_idx < h.num_edges):
                problems.append(f"edge {e} maps outside codomain")
                continue
            img = h.edges[img_idx]
            if img.source != self.vertex_map[e.source]:
                problems.append(f"edge {e}: source not commuted ({img.source} != φ({e.source}))")
            if img.target != self.vertex_map[e.target]:
                problems.append(f"edge {e}: target not commuted ({img.target} != φ({e.target}))")
            if check_colors and not payloads_equal(img.color, e.color):
                problems.append(f"edge {e}: color {e.color!r} not preserved (image has {img.color!r})")
        if check_values and g.values is not None and h.values is not None:
            for v in g.vertices():
                if not payloads_equal(g.value(v), h.value(self.vertex_map[v])):
                    problems.append(
                        f"vertex {v}: value {g.value(v)!r} != codomain value {h.value(self.vertex_map[v])!r}"
                    )
        return problems

    def is_valid(self) -> bool:
        return not self.validate()

    def is_epimorphism(self) -> bool:
        """Surjective on both vertices and edges (the paper's convention)."""
        return (
            set(self.vertex_map) == set(self.target_graph.vertices())
            and set(self.edge_map) == set(range(self.target_graph.num_edges))
        )

    def is_isomorphism(self) -> bool:
        return (
            len(set(self.vertex_map)) == self.source_graph.n == self.target_graph.n
            and len(set(self.edge_map)) == self.source_graph.num_edges == self.target_graph.num_edges
        )

    def compose(self, other: "GraphMorphism") -> "GraphMorphism":
        """``other ∘ self`` — first apply ``self``, then ``other``."""
        if self.target_graph is not other.source_graph and self.target_graph != other.source_graph:
            raise ValueError("composition mismatch: self's codomain is not other's domain")
        vmap = [other.vertex_map[x] for x in self.vertex_map]
        emap = [other.edge_map[x] for x in self.edge_map]
        return GraphMorphism(self.source_graph, other.target_graph, vmap, emap)

    def __repr__(self) -> str:
        return (
            f"GraphMorphism({self.source_graph.n} -> {self.target_graph.n} vertices, "
            f"{self.source_graph.num_edges} -> {self.target_graph.num_edges} edges)"
        )


def _match_in_edges(
    g: DiGraph,
    h: DiGraph,
    vmap: Sequence[int],
    vertex: int,
) -> Optional[Dict[int, int]]:
    """Biject ``vertex``'s in-edges with its image's in-edges, respecting φ.

    An in-edge ``(u, vertex)`` with color ``c`` can only map to an in-edge
    ``(φ(u), φ(vertex))`` with an equal color.  Both sides are grouped by
    the key ``(source class, color key)`` — the shared equality keying of
    :mod:`repro.fibrations.keys` — and a bijection exists iff the grouped
    multiplicities agree, in which case pairing within each group is
    arbitrary (done in deterministic order).

    Returns ``{g_edge_index: h_edge_index}`` or ``None``.
    """
    image = vmap[vertex]
    mine: Dict[Tuple[int, object], List[int]] = defaultdict(list)
    for e in g.in_edges(vertex):
        mine[(vmap[e.source], equality_key(e.color))].append(e.index)
    theirs: Dict[Tuple[int, object], List[int]] = defaultdict(list)
    for e in h.in_edges(image):
        theirs[(e.source, equality_key(e.color))].append(e.index)
    if set(mine) != set(theirs):
        return None
    pairing: Dict[int, int] = {}
    for key, g_edges in mine.items():
        h_edges = theirs[key]
        if len(g_edges) != len(h_edges):
            return None
        for ge, he in zip(sorted(g_edges), sorted(h_edges)):
            pairing[ge] = he
    return pairing


def morphism_from_vertex_map(
    g: DiGraph,
    h: DiGraph,
    vertex_map: Sequence[int],
) -> Optional[GraphMorphism]:
    """Extend a vertex map to a *fibration* ``g -> h``, if possible.

    The unique-lifting property of fibrations forces the edge map on each
    vertex's in-edges to be a bijection onto the image vertex's in-edges;
    this routine constructs exactly such an edge map (grouped by source
    class and color) and returns ``None`` when none exists — i.e. when the
    vertex map is not fibration-compatible.
    """
    if len(vertex_map) != g.n:
        raise ValueError(f"vertex map has {len(vertex_map)} entries for {g.n} vertices")
    edge_map: List[Optional[int]] = [None] * g.num_edges
    for v in g.vertices():
        pairing = _match_in_edges(g, h, vertex_map, v)
        if pairing is None:
            return None
        for ge, he in pairing.items():
            edge_map[ge] = he
    assert None not in edge_map, "every edge is an in-edge of its target"
    return GraphMorphism(g, h, vertex_map, [e for e in edge_map if e is not None])
