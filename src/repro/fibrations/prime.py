"""Fibration primality (Section 3.2).

A graph is fibration prime iff every fibration out of it is an isomorphism
— equivalently, iff its coarsest in-equitable partition is discrete, i.e.
its minimum base is itself.
"""

from __future__ import annotations

from repro.graphs.digraph import DiGraph
from repro.fibrations.minimum_base import equitable_partition


def is_fibration_prime(g: DiGraph) -> bool:
    """True iff ``g`` cannot be collapsed onto a smaller base."""
    return len(set(equitable_partition(g))) == g.n
