"""Function classes of the paper: set-, frequency-, and multiset-based.

:mod:`.frequency` implements frequency functions ``ν_v`` and the canonical
frequenced vector ``⟨ν⟩`` (Section 2.3); :mod:`.classes` the three function
classes and empirical classifiers; :mod:`.library` the concrete functions
used by the experiments (min, max, average, sum, threshold predicates,
quot-sum, ...); :mod:`.continuity` the notion of δ-continuity in frequency
(Section 5.4).
"""

from repro.functions.frequency import FrequencyFunction, frequencies_of, canonical_vector
from repro.functions.classes import (
    FunctionClass,
    NamedFunction,
    frequency_based,
    is_class_empirically,
    multiset_based,
    set_based,
)
from repro.functions.library import (
    AVERAGE,
    COUNT_DISTINCT,
    EXTENDED_LIBRARY,
    FUNCTION_LIBRARY,
    MAXIMUM,
    MEDIAN,
    MINIMUM,
    MODE,
    SIZE,
    SUM,
    SUPPORT_SET,
    VARIANCE,
    frequency_of,
    multiplicity_of,
    quot_sum,
    threshold_predicate,
)
from repro.functions.continuity import is_continuous_in_frequency_empirically

__all__ = [
    "AVERAGE",
    "COUNT_DISTINCT",
    "EXTENDED_LIBRARY",
    "FUNCTION_LIBRARY",
    "MEDIAN",
    "MODE",
    "VARIANCE",
    "FrequencyFunction",
    "FunctionClass",
    "MAXIMUM",
    "MINIMUM",
    "NamedFunction",
    "SIZE",
    "SUM",
    "SUPPORT_SET",
    "canonical_vector",
    "frequencies_of",
    "frequency_based",
    "frequency_of",
    "is_class_empirically",
    "is_continuous_in_frequency_empirically",
    "multiplicity_of",
    "multiset_based",
    "quot_sum",
    "set_based",
    "threshold_predicate",
]
