"""The three function classes and their wrappers (§2.3).

``set-based ⊊ frequency-based ⊊ multiset-based``: a function of arbitrary
arity is *set-based* when its value depends only on the set of its
arguments, *frequency-based* when it depends only on their frequency
function, and *multiset-based* (symmetric) when it depends only on their
multiset.  The wrappers below build functions that are in a class *by
construction*; :func:`is_class_empirically` probes an arbitrary callable.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from typing import Any, Callable, FrozenSet, List, Optional, Sequence

from repro.functions.frequency import FrequencyFunction, frequencies_of


class FunctionClass(enum.Enum):
    """The function-class lattice used throughout Tables 1 and 2.

    ``NONE`` is the bottom element used by the computability oracle for
    "nothing beyond constants"; it never labels a real function here but
    keeps the lattice total.
    """

    NONE = 0
    SET_BASED = 1
    FREQUENCY_BASED = 2
    MULTISET_BASED = 3

    def __le__(self, other: "FunctionClass") -> bool:
        if not isinstance(other, FunctionClass):
            return NotImplemented
        return self.value <= other.value

    def __lt__(self, other: "FunctionClass") -> bool:
        if not isinstance(other, FunctionClass):
            return NotImplemented
        return self.value < other.value

    def contains(self, other: "FunctionClass") -> bool:
        """A *larger* class contains more functions: X ⊆ Y iff X ≤ Y."""
        return other.value <= self.value

    @property
    def label(self) -> str:
        return {
            FunctionClass.NONE: "none",
            FunctionClass.SET_BASED: "set-based",
            FunctionClass.FREQUENCY_BASED: "frequency-based",
            FunctionClass.MULTISET_BASED: "multiset-based",
        }[self]


class NamedFunction:
    """A distributed function with its declared class, ready for experiments.

    Calling it on a vector of input values returns the target value.  The
    ``declared_class`` is the *smallest* class containing the function —
    e.g. the sum is multiset-based but not frequency-based.
    """

    __slots__ = ("name", "fn", "declared_class", "numeric")

    def __init__(
        self,
        name: str,
        fn: Callable[[Sequence[Any]], Any],
        declared_class: FunctionClass,
        numeric: bool = True,
    ):
        self.name = name
        self.fn = fn
        self.declared_class = declared_class
        self.numeric = numeric

    def __call__(self, vector: Sequence[Any]) -> Any:
        if not vector:
            raise ValueError(f"{self.name} of an empty input is undefined")
        return self.fn(vector)

    def __repr__(self) -> str:
        return f"NamedFunction({self.name}, {self.declared_class.label})"


def set_based(name: str, on_set: Callable[[FrozenSet[Any]], Any], numeric: bool = True) -> NamedFunction:
    """A function of the *set* of arguments — set-based by construction."""

    def fn(vector: Sequence[Any]) -> Any:
        return on_set(frozenset(vector))

    return NamedFunction(name, fn, FunctionClass.SET_BASED, numeric)


def frequency_based(
    name: str, on_freq: Callable[[FrequencyFunction], Any], numeric: bool = True
) -> NamedFunction:
    """A function of the frequency function — frequency-based by construction."""

    def fn(vector: Sequence[Any]) -> Any:
        return on_freq(frequencies_of(vector))

    return NamedFunction(name, fn, FunctionClass.FREQUENCY_BASED, numeric)


def multiset_based(name: str, on_multiset: Callable[[Counter], Any], numeric: bool = True) -> NamedFunction:
    """A function of the multiset of arguments — multiset-based by construction."""

    def fn(vector: Sequence[Any]) -> Any:
        return on_multiset(Counter(vector))

    return NamedFunction(name, fn, FunctionClass.MULTISET_BASED, numeric)


# --------------------------------------------------------------------- #
# Empirical classification
# --------------------------------------------------------------------- #

def _random_vector(domain: Sequence[Any], n: int, rng: random.Random) -> List[Any]:
    return [rng.choice(list(domain)) for _ in range(n)]


def is_class_empirically(
    f: Callable[[Sequence[Any]], Any],
    klass: FunctionClass,
    domain: Sequence[Any],
    max_n: int = 6,
    samples: int = 200,
    seed: int = 0,
) -> bool:
    """Probe whether ``f`` looks like a member of ``klass``.

    For each sampled vector the probe builds a second vector that is
    equivalent at the level ``klass`` demands (same support / same
    frequencies / a permutation) and checks the outputs agree.  A ``False``
    answer is a *proof* of non-membership (a counterexample was found); a
    ``True`` answer is only evidence.
    """
    rng = random.Random(seed)
    domain = list(domain)
    for _ in range(samples):
        n = rng.randint(1, max_n)
        v = _random_vector(domain, n, rng)
        if klass is FunctionClass.MULTISET_BASED:
            w = list(v)
            rng.shuffle(w)
        elif klass is FunctionClass.FREQUENCY_BASED:
            # Repeat the whole vector a random number of times (same
            # frequencies, different multiplicities), then shuffle.
            reps = rng.randint(1, 3)
            w = list(v) * reps
            rng.shuffle(w)
        elif klass is FunctionClass.SET_BASED:
            # Rebuild with random positive multiplicities per support value.
            support = sorted(set(v), key=repr)
            w = []
            for value in support:
                w.extend([value] * rng.randint(1, 3))
            rng.shuffle(w)
        else:
            raise ValueError(f"cannot probe class {klass}")
        if repr(f(v)) != repr(f(w)):
            return False
    return True


def smallest_class_empirically(
    f: Callable[[Sequence[Any]], Any],
    domain: Sequence[Any],
    max_n: int = 6,
    samples: int = 200,
    seed: int = 0,
) -> Optional[FunctionClass]:
    """The smallest class ``f`` appears to belong to, or ``None``.

    ``None`` means not even multiset-based, i.e. the function depends on
    argument order and is uncomputable in any anonymous network class
    (Lemma 3.3).
    """
    for klass in (
        FunctionClass.SET_BASED,
        FunctionClass.FREQUENCY_BASED,
        FunctionClass.MULTISET_BASED,
    ):
        if is_class_empirically(f, klass, domain, max_n, samples, seed):
            return klass
    return None
