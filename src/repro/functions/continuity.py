"""δ-continuity in frequency (§5.4).

A frequency-based ``f`` is *continuous in frequency* when, for any sequence
of vectors whose per-value frequencies converge to a frequency function
``ν*``, the outputs converge (in ``(X, δ)``) to ``f(⟨ν*⟩)``.  Without a
bound on the network size, Push-Sum only yields *approximate* frequencies,
so only such functions are computable (Corollary 5.5).

Continuity of an arbitrary callable is undecidable; this module provides an
empirical refuter: it synthesizes rational frequency sequences converging
to a target and checks output convergence.  ``False`` is a counterexample,
``True`` is evidence.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Sequence

from repro.functions.frequency import FrequencyFunction


def _perturbed_realization(
    target: FrequencyFunction, denom: int, rng: random.Random, side: int
) -> List[Any]:
    """A vector whose frequencies are within O(1/denom) of ``target``.

    Multiplicities are the rounded ``ν(ω)·denom``, then the first support
    value is nudged by ``side`` (±1) so successive realizations *straddle*
    the target — which is what exposes threshold discontinuities — and the
    remainder patched onto a random other value.
    """
    support = target.support()
    mults = [int(round(float(target[v]) * denom)) or 1 for v in support]
    if len(support) > 1:
        mults[0] = max(1, mults[0] + side)
        drift = denom - sum(mults)
        k = rng.randrange(1, len(support))
        mults[k] = max(1, mults[k] + drift)
    out: List[Any] = []
    for value, m in zip(support, mults):
        out.extend([value] * m)
    return out


def is_continuous_in_frequency_empirically(
    f: Callable[[Sequence[Any]], Any],
    target: FrequencyFunction,
    metric: Callable[[Any, Any], float],
    tolerance: float = 1e-6,
    start_denominator: int = 64,
    doublings: int = 10,
    seed: int = 0,
) -> bool:
    """Probe continuity of ``f`` at the frequency function ``target``.

    Evaluates ``f`` on realizations whose frequencies approach ``target``
    at denominators ``start_denominator · 2^k`` and checks that the metric
    distance to ``f(⟨target⟩)`` eventually stays below ``tolerance``.
    """
    rng = random.Random(seed)
    expected = f(target.canonical_vector())
    denom = start_denominator
    distances = []
    for k in range(doublings):
        side = 1 if k % 2 == 0 else -1
        vec = _perturbed_realization(target, denom, rng, side)
        distances.append(metric(f(vec), expected))
        denom *= 2
    # Converged when the tail is within tolerance.
    tail = distances[-3:]
    return all(d <= tolerance for d in tail)
