"""Frequency functions ``ν_v`` and canonical frequenced vectors (§2.3).

A *frequency function* on a value domain ``Ω`` assigns a nonnegative
rational to each value, positively to finitely many, summing to 1.  Every
input vector ``v ∈ Ωⁿ`` induces one (``ν_v(ω)`` = multiplicity of ``ω``
divided by ``n``), and conversely every frequency function is realized by a
canonical smallest vector ``⟨ν⟩`` whose length is the lcm of the reduced
denominators.  Two vectors are *equivalent in frequency* iff they induce
the same frequency function — the equivalence at the heart of Theorem 4.1.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Mapping, Sequence, Tuple


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


class FrequencyFunction:
    """An immutable frequency function with finite support.

    Construct from a mapping ``{value: Fraction-like}``; entries must be
    nonnegative and sum to exactly 1 (exact rational arithmetic, no
    tolerance).  Zero entries are dropped.
    """

    __slots__ = ("_table",)

    def __init__(self, table: Mapping[Any, Any]):
        clean: Dict[Any, Fraction] = {}
        for value, freq in table.items():
            f = Fraction(freq)
            if f < 0:
                raise ValueError(f"negative frequency {f} for value {value!r}")
            if f > 0:
                clean[value] = f
        if sum(clean.values(), Fraction(0)) != 1:
            raise ValueError(f"frequencies must sum to 1, got {sum(clean.values(), Fraction(0))}")
        self._table = clean

    # ------------------------------------------------------------------ #

    @classmethod
    def of_vector(cls, vector: Sequence[Any]) -> "FrequencyFunction":
        """``ν_v`` for a nonempty vector ``v``."""
        if not vector:
            raise ValueError("frequency function of the empty vector is undefined")
        counts = Counter(vector)
        n = len(vector)
        return cls({value: Fraction(c, n) for value, c in counts.items()})

    def __getitem__(self, value: Any) -> Fraction:
        """``ν(value)`` — zero outside the support."""
        return self._table.get(value, Fraction(0))

    def support(self) -> List[Any]:
        """The values with positive frequency, in sorted-by-repr order."""
        return sorted(self._table, key=repr)

    def items(self) -> List[Tuple[Any, Fraction]]:
        return [(v, self._table[v]) for v in self.support()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyFunction):
            return NotImplemented
        return self._table == other._table

    def __hash__(self) -> int:
        return hash(tuple((repr(v), f) for v, f in self.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {f}" for v, f in self.items())
        return f"FrequencyFunction({{{inner}}})"

    # ------------------------------------------------------------------ #

    def minimal_size(self) -> int:
        """``lcm`` of the reduced denominators — the length of ``⟨ν⟩``."""
        q = 1
        for f in self._table.values():
            q = _lcm(q, f.denominator)
        return q

    def canonical_vector(self) -> List[Any]:
        """The paper's ``⟨ν⟩``: the smallest vector with frequencies ``ν``.

        Values appear in sorted-by-repr order, each with multiplicity
        ``ν(ω) · lcm(denominators)``.
        """
        q = self.minimal_size()
        out: List[Any] = []
        for value in self.support():
            mult = self._table[value] * q
            assert mult.denominator == 1
            out.extend([value] * int(mult))
        return out

    def scaled_vector(self, n: int) -> List[Any]:
        """A length-``n`` vector with frequencies ``ν``; needs ``minimal_size() | n``."""
        q = self.minimal_size()
        if n % q != 0:
            raise ValueError(f"no vector of length {n} has these frequencies (need multiple of {q})")
        factor = n // q
        out: List[Any] = []
        for value in self.support():
            out.extend([value] * int(self._table[value] * q) * factor)
        return out

    def multiplicities_for(self, n: int) -> Dict[Any, int]:
        """Exact multiplicities in a length-``n`` realization."""
        out = {}
        for value, f in self.items():
            m = f * n
            if m.denominator != 1:
                raise ValueError(f"frequency {f} not realizable at length {n}")
            out[value] = int(m)
        return out


def frequencies_of(vector: Sequence[Any]) -> FrequencyFunction:
    """Convenience alias for :meth:`FrequencyFunction.of_vector`."""
    return FrequencyFunction.of_vector(vector)


def canonical_vector(vector: Sequence[Any]) -> List[Any]:
    """``⟨ν_v⟩`` — the canonical reduced form of ``v``'s frequency class."""
    return frequencies_of(vector).canonical_vector()


def equivalent_in_frequency(v: Sequence[Any], w: Sequence[Any]) -> bool:
    """True iff ``ν_v = ν_w`` (the vectors are "ν-frequenced" alike)."""
    return frequencies_of(v) == frequencies_of(w)
