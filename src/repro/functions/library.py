"""The concrete distributed functions used by the paper and the benchmarks.

Each entry is a :class:`~repro.functions.classes.NamedFunction` with its
smallest containing class declared:

* set-based: ``MINIMUM``, ``MAXIMUM``, ``SUPPORT_SET``;
* frequency-based: ``AVERAGE``, ``frequency_of(ω)``, threshold predicates
  ``Φ^ω_r``;
* multiset-based: ``SUM``, ``SIZE`` (the network cardinality ``n``),
  ``multiplicity_of(ω)``.

``quot_sum`` is the two-argument-per-agent function computed by Push-Sum
(Section 5.1); it is frequency-based in the pairs ``(v_i, w_i)``.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from typing import Any, Sequence, Tuple

from repro.functions.classes import (
    FunctionClass,
    NamedFunction,
    frequency_based,
    multiset_based,
    set_based,
)
from repro.functions.frequency import FrequencyFunction


MINIMUM = set_based("minimum", min)
MAXIMUM = set_based("maximum", max)
SUPPORT_SET = set_based("support-set", lambda s: s, numeric=False)


def _average_of_frequencies(nu: FrequencyFunction) -> Fraction:
    total = Fraction(0)
    for value, freq in nu.items():
        total += Fraction(value) * freq
    return total


AVERAGE = frequency_based("average", _average_of_frequencies)

SUM = multiset_based("sum", lambda counts: sum(v * c for v, c in counts.items()))
SIZE = multiset_based("size", lambda counts: sum(counts.values()))


def frequency_of(value: Any) -> NamedFunction:
    """``v ↦ ν_v(value)`` — the relative frequency of one value."""
    return frequency_based(f"frequency-of-{value!r}", lambda nu: nu[value])


def multiplicity_of(value: Any) -> NamedFunction:
    """``v ↦`` multiplicity of ``value`` in ``v`` — multiset-based only."""
    return multiset_based(f"multiplicity-of-{value!r}", lambda counts: counts[value])


def threshold_predicate(value: Any, threshold: float) -> NamedFunction:
    """The predicate ``Φ^ω_r`` of §5.4: 1 iff ``ν_v(ω) >= r``.

    Continuous in frequency (for the discrete metric on {0, 1}) iff ``r``
    is irrational.
    """

    def phi(nu: FrequencyFunction) -> int:
        return 1 if nu[value] >= threshold else 0

    return frequency_based(f"threshold-{value!r}@{threshold}", phi)


def quot_sum(pairs: Sequence[Tuple[float, float]]) -> float:
    """The quot-sum ``(Σ v_k) / (Σ w_k)`` of §5.1; needs all ``w_k > 0``."""
    if not pairs:
        raise ValueError("quot-sum of an empty input is undefined")
    num = sum(v for v, _w in pairs)
    den = sum(w for _v, w in pairs)
    if den <= 0:
        raise ValueError("quot-sum needs positive weights")
    return num / den


QUOT_SUM = NamedFunction("quot-sum", quot_sum, FunctionClass.FREQUENCY_BASED)


def _mode_of_frequencies(nu: FrequencyFunction) -> Any:
    """The most frequent value; repr-order breaks ties deterministically."""
    best = None
    best_freq = Fraction(-1)
    for value, freq in nu.items():
        if freq > best_freq:
            best, best_freq = value, freq
    return best


#: The most frequent input value — frequency-based (depends on relative
#: frequencies, not multiplicities), a natural "plurality vote".
MODE = frequency_based("mode", _mode_of_frequencies, numeric=False)


def _variance_of_frequencies(nu: FrequencyFunction) -> Fraction:
    mean = _average_of_frequencies(nu)
    return sum(
        (Fraction(v) - mean) ** 2 * f for v, f in nu.items()
    ) or Fraction(0)


#: The population variance — frequency-based, like every normalized moment.
VARIANCE = frequency_based("variance", _variance_of_frequencies)

#: Number of distinct input values — set-based.
COUNT_DISTINCT = set_based("count-distinct", len)


def _median_of_counts(counts: Counter) -> Any:
    """Lower median of the multiset — multiset-based but *not*
    frequency-based?  No: the median only depends on frequencies (it is the
    0.5-quantile), so it is frequency-based; kept here computed from counts
    for clarity."""
    expanded = sorted(v for v, m in counts.items() for _ in range(m))
    return expanded[(len(expanded) - 1) // 2]


#: The lower median — a 0.5-quantile, hence frequency-based.
MEDIAN = NamedFunction(
    "median", lambda vec: _median_of_counts(Counter(vec)), FunctionClass.FREQUENCY_BASED
)


def modular_count_predicate(value: Any, modulus: int, residue: int = 0) -> NamedFunction:
    """The predicate "multiplicity of ``value`` ≡ ``residue`` (mod m)".

    Population protocols compute exactly the Presburger-definable
    predicates (related work, [2, 3]), of which modular counting is the
    archetype *beyond* threshold predicates.  It is multiset-based but
    **not** frequency-based (doubling every multiplicity flips it), so in
    this paper's models it is computable only with ``n`` known or a
    leader — a sharp witness separating the two worlds.
    """
    if modulus < 2:
        raise ValueError("modulus must be >= 2")

    def phi(counts: Counter) -> int:
        return 1 if counts[value] % modulus == residue else 0

    return multiset_based(f"count-{value!r}-mod-{modulus}={residue}", phi)


#: The standard probe battery for the table experiments: one representative
#: per class, ordered by class.
FUNCTION_LIBRARY = (MAXIMUM, AVERAGE, SUM)

#: The wider battery used by extended tests: (function, smallest class).
EXTENDED_LIBRARY = (
    (MINIMUM, FunctionClass.SET_BASED),
    (MAXIMUM, FunctionClass.SET_BASED),
    (COUNT_DISTINCT, FunctionClass.SET_BASED),
    (AVERAGE, FunctionClass.FREQUENCY_BASED),
    (VARIANCE, FunctionClass.FREQUENCY_BASED),
    (MODE, FunctionClass.FREQUENCY_BASED),
    (MEDIAN, FunctionClass.FREQUENCY_BASED),
    (SUM, FunctionClass.MULTISET_BASED),
    (SIZE, FunctionClass.MULTISET_BASED),
)
