"""Directed multigraphs and related machinery for anonymous networks.

This subpackage provides the graph substrate of the library: vertex-valued,
edge-colored directed multigraphs (:mod:`repro.graphs.digraph`), standard
constructions (:mod:`repro.graphs.builders`), structural predicates and
distances (:mod:`repro.graphs.properties`), the round-composition product of
dynamic-network theory (:mod:`repro.graphs.products`), isomorphism testing
(:mod:`repro.graphs.isomorphism`), and the hash-consed in-view structures of
Boldi and Vigna (:mod:`repro.graphs.views`).
"""

from repro.graphs.digraph import DiGraph, Edge
from repro.graphs.builders import (
    bidirectional_ring,
    complete_bipartite,
    complete_graph,
    de_bruijn_graph,
    directed_ring,
    hypercube,
    lollipop,
    path_graph,
    random_strongly_connected,
    random_symmetric_connected,
    star_graph,
    torus,
    wheel_graph,
)
from repro.graphs.products import graph_product, iterated_product
from repro.graphs.properties import (
    diameter,
    indegree_sequence,
    is_complete,
    is_strongly_connected,
    is_symmetric,
    outdegree_sequence,
)
from repro.graphs.isomorphism import are_isomorphic, find_isomorphism
from repro.graphs.views import View, ViewBuilder, view_of

__all__ = [
    "DiGraph",
    "Edge",
    "View",
    "ViewBuilder",
    "are_isomorphic",
    "bidirectional_ring",
    "complete_bipartite",
    "complete_graph",
    "de_bruijn_graph",
    "diameter",
    "directed_ring",
    "find_isomorphism",
    "graph_product",
    "hypercube",
    "indegree_sequence",
    "is_complete",
    "is_strongly_connected",
    "is_symmetric",
    "iterated_product",
    "lollipop",
    "outdegree_sequence",
    "path_graph",
    "random_strongly_connected",
    "random_symmetric_connected",
    "star_graph",
    "torus",
    "view_of",
    "wheel_graph",
]
