"""Standard graph constructions used throughout the paper and benchmarks.

All builders return :class:`~repro.graphs.digraph.DiGraph` instances with a
self-loop at every vertex (the paper's standing assumption, Section 2.1)
unless ``self_loops=False`` is passed.  Random builders take an explicit
``seed`` and are deterministic given it.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Tuple

from repro.graphs.digraph import DiGraph


def _finish(n: int, specs: List[Tuple[int, int]], values: Optional[Sequence[Any]], self_loops: bool) -> DiGraph:
    g = DiGraph(n, specs, values=values, ensure_self_loops=self_loops)
    return g


def directed_ring(n: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """The unidirectional ring ``0 -> 1 -> ... -> n-1 -> 0``."""
    if n < 1:
        raise ValueError("ring needs n >= 1")
    specs = [(i, (i + 1) % n) for i in range(n)]
    if n == 1:
        specs = []
    return _finish(n, specs, values, self_loops)


def bidirectional_ring(n: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """The bidirectional ring ``R_n`` of Section 4.1."""
    if n < 1:
        raise ValueError("ring needs n >= 1")
    specs: List[Tuple[int, int]] = []
    for i in range(n):
        j = (i + 1) % n
        if i != j:
            specs.append((i, j))
            specs.append((j, i))
    # n == 2 would produce each arc twice; deduplicate.
    specs = sorted(set(specs))
    return _finish(n, specs, values, self_loops)


def complete_graph(n: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """The complete directed graph (every ordered pair, plus self-loops)."""
    specs = [(i, j) for i in range(n) for j in range(n) if i != j]
    return _finish(n, specs, values, self_loops)


def path_graph(n: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """The bidirectional path ``0 - 1 - ... - n-1`` (symmetric, connected)."""
    specs: List[Tuple[int, int]] = []
    for i in range(n - 1):
        specs.append((i, i + 1))
        specs.append((i + 1, i))
    return _finish(n, specs, values, self_loops)


def star_graph(n: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """A bidirectional star: vertex 0 is the hub, ``1 .. n-1`` the leaves."""
    if n < 1:
        raise ValueError("star needs n >= 1")
    specs: List[Tuple[int, int]] = []
    for i in range(1, n):
        specs.append((0, i))
        specs.append((i, 0))
    return _finish(n, specs, values, self_loops)


def torus(rows: int, cols: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """A bidirectional ``rows x cols`` torus grid."""
    if rows < 1 or cols < 1:
        raise ValueError("torus needs positive dimensions")
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    specs = set()
    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            for (dr, dc) in ((0, 1), (1, 0)):
                w = vid(r + dr, c + dc)
                if v != w:
                    specs.add((v, w))
                    specs.add((w, v))
    return _finish(n, sorted(specs), values, self_loops)


def hypercube(dim: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """The bidirectional ``dim``-dimensional hypercube on ``2**dim`` vertices."""
    if dim < 0:
        raise ValueError("hypercube needs dim >= 0")
    n = 1 << dim
    specs = []
    for v in range(n):
        for b in range(dim):
            w = v ^ (1 << b)
            specs.append((v, w))
    return _finish(n, specs, values, self_loops)


def lollipop(clique: int, tail: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """A bidirectional clique of size ``clique`` with a path tail of length ``tail``.

    A classic high-diameter, asymmetric-looking test graph.
    """
    if clique < 1 or tail < 0:
        raise ValueError("lollipop needs clique >= 1, tail >= 0")
    n = clique + tail
    specs = []
    for i in range(clique):
        for j in range(clique):
            if i != j:
                specs.append((i, j))
    prev = clique - 1
    for k in range(clique, n):
        specs.append((prev, k))
        specs.append((k, prev))
        prev = k
    return _finish(n, specs, values, self_loops)


def de_bruijn_graph(symbols: int, length: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """The de Bruijn graph ``B(symbols, length)`` — strongly connected, uniform outdegree.

    Vertex ``v`` (a base-``symbols`` word of ``length`` digits) points to all
    words obtained by shifting in a new last digit.  A standard family with
    nontrivial fibrations.
    """
    if symbols < 1 or length < 1:
        raise ValueError("de Bruijn graph needs symbols >= 1, length >= 1")
    n = symbols ** length
    specs = []
    for v in range(n):
        shifted = (v * symbols) % n
        for d in range(symbols):
            w = shifted + d
            if v != w:
                specs.append((v, w))
    return _finish(n, specs, values, self_loops)


def wheel_graph(n: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True) -> DiGraph:
    """A bidirectional wheel: hub 0 joined to an (n-1)-cycle of rim vertices.

    Small diameter with two structural classes — a handy middle ground
    between the star and the ring for fibration tests.
    """
    if n < 4:
        raise ValueError("a wheel needs n >= 4 (hub + 3-cycle rim)")
    specs = set()
    rim = list(range(1, n))
    for i, v in enumerate(rim):
        w = rim[(i + 1) % len(rim)]
        specs.add((v, w))
        specs.add((w, v))
        specs.add((0, v))
        specs.add((v, 0))
    return _finish(n, sorted(specs), values, self_loops)


def complete_bipartite(
    left: int, right: int, values: Optional[Sequence[Any]] = None, self_loops: bool = True
) -> DiGraph:
    """The bidirectional complete bipartite graph ``K_{left,right}``.

    With unvalued sides this collapses onto a 2-vertex base with fibre
    cardinalities (left, right) — a clean frequency-witness family.
    """
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one vertex")
    n = left + right
    specs = []
    for a in range(left):
        for b in range(left, n):
            specs.append((a, b))
            specs.append((b, a))
    return _finish(n, specs, values, self_loops)


def random_strongly_connected(
    n: int,
    extra_edge_prob: float = 0.2,
    seed: int = 0,
    values: Optional[Sequence[Any]] = None,
    self_loops: bool = True,
) -> DiGraph:
    """A random strongly connected digraph.

    Built as a random Hamiltonian cycle (guaranteeing strong connectivity)
    plus each remaining ordered pair independently with probability
    ``extra_edge_prob``.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    specs = set()
    for i in range(n):
        a, b = order[i], order[(i + 1) % n]
        if a != b:
            specs.add((a, b))
    for i in range(n):
        for j in range(n):
            if i != j and (i, j) not in specs and rng.random() < extra_edge_prob:
                specs.add((i, j))
    return _finish(n, sorted(specs), values, self_loops)


def random_symmetric_connected(
    n: int,
    extra_edge_prob: float = 0.2,
    seed: int = 0,
    values: Optional[Sequence[Any]] = None,
    self_loops: bool = True,
) -> DiGraph:
    """A random connected graph with bidirectional edges.

    A random spanning tree guarantees connectivity; each remaining unordered
    pair is added independently with probability ``extra_edge_prob``; every
    edge is mirrored.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    rng = random.Random(seed)
    specs = set()
    vertices = list(range(n))
    rng.shuffle(vertices)
    for k in range(1, n):
        v = vertices[k]
        parent = vertices[rng.randrange(k)]
        specs.add((v, parent))
        specs.add((parent, v))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in specs and rng.random() < extra_edge_prob:
                specs.add((i, j))
                specs.add((j, i))
    return _finish(n, sorted(specs), values, self_loops)
