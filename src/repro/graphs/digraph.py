"""Directed multigraphs with vertex values and edge colors.

The paper models a network as a directed (multi-)graph ``G`` given by a
vertex set ``[n]`` and source/target functions on an edge set (Section 3).
Vertices may carry *values* (inputs, outdegrees, ...) and edges may carry
*colors* (output-port labels).  This module implements exactly that object.

Vertices are the integers ``0 .. n-1``.  Edges are immutable
:class:`Edge` records carrying an index, a source, a target, and an optional
color.  Parallel edges are permitted — minimum bases of ordinary graphs are
multigraphs in general — and a self-loop at every vertex is the normal state
of a communication graph (Section 2.1: "an agent can communicate with itself
instantaneously").
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


class Edge:
    """One directed edge of a multigraph.

    Attributes
    ----------
    index:
        Position of the edge in the owning graph's edge list.  Two parallel
        edges differ only by their index (and possibly color).
    source, target:
        Endpoint vertices; the edge is directed ``source -> target``.
    color:
        Optional hashable label.  Output-port awareness is modeled by
        coloring each edge with its port number at the source.
    """

    __slots__ = ("index", "source", "target", "color")

    def __init__(self, index: int, source: int, target: int, color: Hashable = None):
        self.index = index
        self.source = source
        self.target = target
        self.color = color

    def __repr__(self) -> str:
        if self.color is None:
            return f"Edge({self.index}: {self.source}->{self.target})"
        return f"Edge({self.index}: {self.source}->{self.target} #{self.color!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (
            self.index == other.index
            and self.source == other.source
            and self.target == other.target
            and self.color == other.color
        )

    def __hash__(self) -> int:
        return hash((self.index, self.source, self.target, self.color))


class DiGraph:
    """A directed multigraph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices; must be positive.
    edges:
        Iterable of ``(source, target)`` or ``(source, target, color)``
        tuples.  Parallel edges are kept.
    values:
        Optional sequence of per-vertex values (the valuation of Section 3).
    ensure_self_loops:
        When true (the default for communication graphs built by
        :mod:`repro.graphs.builders`), add a self-loop at any vertex that
        lacks one.

    The graph is immutable after construction; derived graphs are produced
    by :meth:`with_values`, :meth:`with_colors`, :meth:`with_edges`, etc.
    """

    __slots__ = (
        "n",
        "_edges",
        "_values",
        "_out",
        "_in",
        "_out_ports",
        "_fingerprint",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple] = (),
        values: Optional[Sequence[Any]] = None,
        ensure_self_loops: bool = False,
    ):
        if n <= 0:
            raise ValueError(f"a graph needs at least one vertex, got n={n}")
        self.n = n
        edge_list: List[Edge] = []
        for spec in edges:
            if len(spec) == 2:
                s, t = spec
                c: Hashable = None
            elif len(spec) == 3:
                s, t, c = spec
            else:
                raise ValueError(f"edge spec must be (s, t) or (s, t, color), got {spec!r}")
            if not (0 <= s < n and 0 <= t < n):
                raise ValueError(f"edge ({s}, {t}) out of range for n={n}")
            edge_list.append(Edge(len(edge_list), s, t, c))
        if ensure_self_loops:
            have_loop = [False] * n
            for e in edge_list:
                if e.source == e.target:
                    have_loop[e.source] = True
            for v in range(n):
                if not have_loop[v]:
                    edge_list.append(Edge(len(edge_list), v, v, None))
        self._edges: Tuple[Edge, ...] = tuple(edge_list)
        if values is not None:
            values = tuple(values)
            if len(values) != n:
                raise ValueError(f"got {len(values)} values for {n} vertices")
        self._values: Optional[Tuple[Any, ...]] = values

        out: List[List[Edge]] = [[] for _ in range(n)]
        inn: List[List[Edge]] = [[] for _ in range(n)]
        for e in self._edges:
            out[e.source].append(e)
            inn[e.target].append(e)
        self._out: Tuple[Tuple[Edge, ...], ...] = tuple(tuple(es) for es in out)
        self._in: Tuple[Tuple[Edge, ...], ...] = tuple(tuple(es) for es in inn)
        # Port numbering: the ℓ-th out-edge of a vertex (in edge-list order)
        # is its port ℓ (0-based).  Static by construction.
        ports: Dict[int, int] = {}
        for v in range(n):
            for port, e in enumerate(self._out[v]):
                ports[e.index] = port
        self._out_ports: Dict[int, int] = ports
        # Content fingerprint, computed lazily by repro.core.memo; ``None``
        # until someone asks for it (most throwaway graphs never do).
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges, in construction order."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def values(self) -> Optional[Tuple[Any, ...]]:
        """The vertex valuation, or ``None`` if the graph is unvalued."""
        return self._values

    def value(self, v: int) -> Any:
        """The value at vertex ``v`` (``None`` when the graph is unvalued)."""
        if self._values is None:
            return None
        return self._values[v]

    def vertices(self) -> range:
        return range(self.n)

    def out_edges(self, v: int) -> Tuple[Edge, ...]:
        """Out-edges of ``v`` in port order."""
        return self._out[v]

    def in_edges(self, v: int) -> Tuple[Edge, ...]:
        return self._in[v]

    def out_neighbors(self, v: int) -> List[int]:
        """Targets of ``v``'s out-edges (with multiplicity)."""
        return [e.target for e in self._out[v]]

    def in_neighbors(self, v: int) -> List[int]:
        """Sources of ``v``'s in-edges (with multiplicity)."""
        return [e.source for e in self._in[v]]

    def outdegree(self, v: int) -> int:
        """Number of out-edges of ``v`` — the paper's ``d⁻``, self-loop included."""
        return len(self._out[v])

    def indegree(self, v: int) -> int:
        return len(self._in[v])

    def port_of(self, edge: Edge) -> int:
        """The output port (0-based) that ``edge`` occupies at its source."""
        return self._out_ports[edge.index]

    def edge_multiplicity(self, source: int, target: int) -> int:
        """Number of parallel ``source -> target`` edges."""
        return sum(1 for e in self._out[source] if e.target == target)

    def has_edge(self, source: int, target: int) -> bool:
        return any(e.target == target for e in self._out[source])

    def has_self_loop(self, v: int) -> bool:
        return self.has_edge(v, v)

    def all_have_self_loops(self) -> bool:
        return all(self.has_self_loop(v) for v in self.vertices())

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def edge_specs(self) -> List[Tuple[int, int, Hashable]]:
        """The edge list as plain tuples, suitable for re-construction."""
        return [(e.source, e.target, e.color) for e in self._edges]

    def with_values(self, values: Sequence[Any]) -> "DiGraph":
        """A copy of this graph carrying the given vertex valuation."""
        return DiGraph(self.n, self.edge_specs(), values=values)

    def without_values(self) -> "DiGraph":
        return DiGraph(self.n, self.edge_specs())

    def with_colors(self, color_fn: Callable[[Edge], Hashable]) -> "DiGraph":
        """A copy with each edge re-colored by ``color_fn(edge)``."""
        specs = [(e.source, e.target, color_fn(e)) for e in self._edges]
        return DiGraph(self.n, specs, values=self._values)

    def with_port_colors(self) -> "DiGraph":
        """Color every edge with its output port at the source.

        This realizes the *output port awareness* structure ``G_op`` of
        Section 3: a local output labelling where the out-edges of each
        vertex get distinct labels ``0 .. d⁻-1``.
        """
        return self.with_colors(self.port_of)

    def with_outdegree_values(self) -> "DiGraph":
        """The valued graph ``G_od``: each vertex valued with its outdegree."""
        return self.with_values([self.outdegree(v) for v in self.vertices()])

    def with_pair_values(self, extra: Sequence[Any]) -> "DiGraph":
        """Value each vertex ``v`` with ``(current_value(v), extra[v])``."""
        if len(extra) != self.n:
            raise ValueError(f"got {len(extra)} extra values for {self.n} vertices")
        base = self._values if self._values is not None else (None,) * self.n
        return self.with_values([(base[v], extra[v]) for v in self.vertices()])

    def reverse(self) -> "DiGraph":
        """The graph with every edge reversed (colors preserved)."""
        specs = [(e.target, e.source, e.color) for e in self._edges]
        return DiGraph(self.n, specs, values=self._values)

    def symmetric_closure(self) -> "DiGraph":
        """Add the reverse of every edge that lacks one (simple semantics).

        Parallel-edge multiplicities are not matched; this is the closure of
        the *support* relation, used to turn arbitrary graphs into members
        of the symmetric network class.
        """
        present = {(e.source, e.target) for e in self._edges}
        specs = self.edge_specs()
        for (s, t) in sorted(present):
            if (t, s) not in present:
                specs.append((t, s, None))
        return DiGraph(self.n, specs, values=self._values)

    def simple_support(self) -> "DiGraph":
        """The simple graph with one edge per distinct ``(source, target)``."""
        seen = set()
        specs = []
        for e in self._edges:
            key = (e.source, e.target)
            if key not in seen:
                seen.add(key)
                specs.append((e.source, e.target, None))
        return DiGraph(self.n, specs, values=self._values)

    # ------------------------------------------------------------------ #
    # matrices
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self) -> List[List[int]]:
        """``A[i][j]`` = number of edges ``i -> j`` (pure-Python ints)."""
        a = [[0] * self.n for _ in range(self.n)]
        for e in self._edges:
            a[e.source][e.target] += 1
        return a

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        valued = "" if self._values is None else ", valued"
        return f"DiGraph(n={self.n}, m={self.num_edges}{valued})"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same vertex count, edge multiset, values.

        This is equality *on the nose* (vertex ids matter); for equality up
        to renaming use :func:`repro.graphs.isomorphism.are_isomorphic`.
        """
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self.n != other.n or self._values != other._values:
            return False
        mine = sorted((e.source, e.target, repr(e.color)) for e in self._edges)
        theirs = sorted((e.source, e.target, repr(e.color)) for e in other._edges)
        return mine == theirs

    def __hash__(self) -> int:
        mine = tuple(sorted((e.source, e.target, repr(e.color)) for e in self._edges))
        return hash((self.n, self._values, mine))

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices())

    def degree_signature(self) -> List[Tuple[int, int]]:
        """Per-vertex ``(indegree, outdegree)`` pairs."""
        return [(self.indegree(v), self.outdegree(v)) for v in self.vertices()]
