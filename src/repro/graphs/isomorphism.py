"""Isomorphism of valued, colored directed multigraphs.

Network classes are closed under isomorphism (Section 2.1), and the minimum
base is unique only *up to isomorphism* (Section 3.2), so tests and the
analysis harness constantly need an exact isomorphism check.  Graphs in this
library are small (tens of vertices), so a color-refinement preprocessing
followed by backtracking search is entirely adequate.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.graphs.digraph import DiGraph


def _refine_classes(g: DiGraph) -> List[int]:
    """Color refinement taking values, colors, directions, multiplicities into account.

    Returns a stable class id per vertex.  Vertices in different classes are
    never related by an isomorphism; vertices in the same class might be.
    """
    # Initial classes: vertex value + degree signature.  Class ids are
    # assigned in sorted-signature order so they are canonical: isomorphic
    # graphs produce corresponding ids at every iteration.
    seeds = [
        (repr(g.value(v)), g.indegree(v), g.outdegree(v))
        for v in g.vertices()
    ]
    palette: Dict[object, int] = {s: i for i, s in enumerate(sorted(set(seeds)))}
    classes = [palette[s] for s in seeds]

    while True:
        signatures = []
        for v in g.vertices():
            ins = Counter((classes[e.source], repr(e.color)) for e in g.in_edges(v))
            outs = Counter((classes[e.target], repr(e.color)) for e in g.out_edges(v))
            signatures.append(
                (classes[v], tuple(sorted(ins.items())), tuple(sorted(outs.items())))
            )
        palette = {s: i for i, s in enumerate(sorted(set(signatures)))}
        new_classes = [palette[s] for s in signatures]
        if new_classes == classes or _same_partition(classes, new_classes):
            return new_classes
        classes = new_classes


def _same_partition(a: List[int], b: List[int]) -> bool:
    fwd: Dict[int, int] = {}
    bwd: Dict[int, int] = {}
    for x, y in zip(a, b):
        if fwd.setdefault(x, y) != y or bwd.setdefault(y, x) != x:
            return False
    return True


def _class_histogram(classes: List[int]) -> Counter:
    return Counter(classes)


def _edge_key(g: DiGraph, source: int, target: int) -> Counter:
    """Multiset of colors on the parallel edges ``source -> target``."""
    return Counter(repr(e.color) for e in g.out_edges(source) if e.target == target)


def find_isomorphism(g: DiGraph, h: DiGraph) -> Optional[List[int]]:
    """An isomorphism ``g -> h`` as a vertex mapping list, or ``None``.

    The mapping ``m`` satisfies: ``m`` is a bijection, values correspond
    (``g.value(v) == h.value(m[v])``), and for every ordered pair the
    multiset of edge colors is preserved.
    """
    if g.n != h.n or g.num_edges != h.num_edges:
        return None
    gc = _refine_classes(g)
    hc = _refine_classes(h)
    # Refinement class ids are deterministic given the signature history, so
    # isomorphic graphs receive identical histograms; cheap early exit.
    if sorted(_class_histogram(gc).values()) != sorted(_class_histogram(hc).values()):
        return None

    # Match refinement classes across the two graphs by their invariants:
    # recompute a canonical per-class invariant from stable signatures.
    def class_invariants(graph: DiGraph, classes: List[int]) -> Dict[int, Tuple]:
        inv = {}
        for v in graph.vertices():
            ins = Counter((classes[e.source], repr(e.color)) for e in graph.in_edges(v))
            outs = Counter((classes[e.target], repr(e.color)) for e in graph.out_edges(v))
            key = (repr(graph.value(v)), tuple(sorted(ins.items())), tuple(sorted(outs.items())))
            if classes[v] in inv and inv[classes[v]] != key:
                # classes are stable so this cannot happen
                raise AssertionError("unstable refinement")
            inv[classes[v]] = key
        return inv

    # Class ids may differ between graphs; candidate targets for v are the
    # h-vertices whose full invariant matches v's.
    g_inv = class_invariants(g, gc)
    h_inv = class_invariants(h, hc)
    candidates: List[List[int]] = []
    for v in g.vertices():
        key = g_inv[gc[v]]
        cands = [w for w in h.vertices() if h_inv[hc[w]] == key]
        if not cands:
            return None
        candidates.append(cands)

    order = sorted(g.vertices(), key=lambda v: len(candidates[v]))
    mapping: List[Optional[int]] = [None] * g.n
    used = [False] * h.n

    def consistent(v: int, w: int) -> bool:
        if repr(g.value(v)) != repr(h.value(w)):
            return False
        for u in g.vertices():
            mu = mapping[u]
            if mu is None:
                continue
            if _edge_key(g, v, u) != _edge_key(h, w, mu):
                return False
            if _edge_key(g, u, v) != _edge_key(h, mu, w):
                return False
        return _edge_key(g, v, v) == _edge_key(h, w, w)

    def backtrack(pos: int) -> bool:
        if pos == len(order):
            return True
        v = order[pos]
        for w in candidates[v]:
            if used[w] or not consistent(v, w):
                continue
            mapping[v] = w
            used[w] = True
            if backtrack(pos + 1):
                return True
            mapping[v] = None
            used[w] = False
        return False

    if backtrack(0):
        return [m for m in mapping if m is not None] if None not in mapping else None
    return None


def are_isomorphic(g: DiGraph, h: DiGraph) -> bool:
    """True iff the valued, colored multigraphs are isomorphic."""
    return find_isomorphism(g, h) is not None
