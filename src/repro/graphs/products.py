"""Graph composition — the product ``G1 ∘ G2`` of dynamic-network theory.

Section 2.1 (footnote 3) composes communication graphs over consecutive
rounds: there is an edge ``i -> j`` in ``G1 ∘ G2`` exactly when some relay
``k`` satisfies ``i -> k`` in ``G1`` and ``k -> j`` in ``G2`` — information
flows along a path that uses one edge per round.  (The footnote's displayed
set swaps the pair order; the convention used throughout the paper — "for
every pair of vertices i, j ... there is a dynamic path ... connecting i to
j" — is the forward composition implemented here.)

The *dynamic diameter* ``D`` of a dynamic graph is the smallest ``D`` such
that every window ``G(t) ∘ ... ∘ G(t+D-1)`` is the complete graph; see
:mod:`repro.dynamics.diameter` for its computation on dynamic graphs.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.graphs.digraph import DiGraph


def graph_product(g1: DiGraph, g2: DiGraph) -> DiGraph:
    """The composition ``g1 ∘ g2`` (simple graph on the common vertex set)."""
    if g1.n != g2.n:
        raise ValueError(f"product needs a common vertex set, got n={g1.n} and n={g2.n}")
    edges: Set[Tuple[int, int]] = set()
    # For each relay k, connect every in-neighbor of k in g1 to every
    # out-neighbor of k in g2.
    for k in g1.vertices():
        sources = {e.source for e in g1.in_edges(k)}
        targets = {e.target for e in g2.out_edges(k)}
        for i in sources:
            for j in targets:
                edges.add((i, j))
    return DiGraph(g1.n, sorted(edges))


def iterated_product(graphs: Iterable[DiGraph]) -> DiGraph:
    """``G(1) ∘ G(2) ∘ ... ∘ G(k)`` for a nonempty sequence of graphs."""
    graphs = list(graphs)
    if not graphs:
        raise ValueError("iterated product of an empty sequence is undefined")
    acc = graphs[0]
    for g in graphs[1:]:
        acc = graph_product(acc, g)
    return acc


def reachability_closure(graphs: Iterable[DiGraph]) -> List[DiGraph]:
    """Prefix products ``[G1, G1∘G2, G1∘G2∘G3, ...]`` — handy in tests."""
    out: List[DiGraph] = []
    acc = None
    for g in graphs:
        acc = g if acc is None else graph_product(acc, g)
        out.append(acc)
    return out
