"""Structural predicates and distances on directed multigraphs."""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.graphs.digraph import DiGraph


def _bfs_distances(g: DiGraph, source: int) -> List[Optional[int]]:
    """Directed BFS distances from ``source`` (``None`` = unreachable)."""
    dist: List[Optional[int]] = [None] * g.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in g.out_neighbors(v):
            if dist[w] is None:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def is_strongly_connected(g: DiGraph) -> bool:
    """True iff every vertex reaches every other by a directed path."""
    if g.n == 1:
        return True
    if any(d is None for d in _bfs_distances(g, 0)):
        return False
    return all(d is not None for d in _bfs_distances(g.reverse(), 0))


def diameter(g: DiGraph) -> int:
    """The directed diameter; raises ``ValueError`` if not strongly connected."""
    worst = 0
    for v in g.vertices():
        dist = _bfs_distances(g, v)
        for d in dist:
            if d is None:
                raise ValueError("diameter undefined: graph is not strongly connected")
            worst = max(worst, d)
    return worst


def distances(g: DiGraph, source: int) -> List[Optional[int]]:
    """Public BFS wrapper: directed distances from ``source``."""
    return _bfs_distances(g, source)


def is_symmetric(g: DiGraph) -> bool:
    """True iff the *support* of the edge relation is symmetric.

    Per Section 2.1, a symmetric network has ``(i, j) ∈ E_t`` iff
    ``(j, i) ∈ E_t``; multiplicities of parallel edges are not compared.
    """
    present = {(e.source, e.target) for e in g.edges}
    return all((t, s) in present for (s, t) in present)


def is_complete(g: DiGraph) -> bool:
    """True iff every ordered pair (including self-loops) is an edge."""
    present = {(e.source, e.target) for e in g.edges}
    return all((i, j) in present for i in g.vertices() for j in g.vertices())


def outdegree_sequence(g: DiGraph) -> Tuple[int, ...]:
    return tuple(g.outdegree(v) for v in g.vertices())


def indegree_sequence(g: DiGraph) -> Tuple[int, ...]:
    return tuple(g.indegree(v) for v in g.vertices())


def is_regular(g: DiGraph) -> bool:
    """True iff all vertices share the same in- and outdegree."""
    outs = set(outdegree_sequence(g))
    ins = set(indegree_sequence(g))
    return len(outs) == 1 and len(ins) == 1


def strongly_connected_components(g: DiGraph) -> List[List[int]]:
    """Tarjan's algorithm, iterative; components in reverse topological order."""
    index = [0] * g.n
    low = [0] * g.n
    on_stack = [False] * g.n
    visited = [False] * g.n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [1]

    for root in g.vertices():
        if visited[root]:
            continue
        # Iterative DFS with explicit frames: (vertex, neighbor iterator).
        work = [(root, iter(g.out_neighbors(root)))]
        visited[root] = True
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if not visited[w]:
                    visited[w] = True
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(g.out_neighbors(w))))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                components.append(comp)
    return components
