"""Hash-consed in-views ``T_i^t`` (Boldi–Vigna universal structures).

After ``t`` rounds, everything an anonymous agent can possibly know about
the network is its *view of depth t*: a tree whose root is labelled with the
agent's own observable data, and whose children are the depth ``t-1`` views
of its in-neighbors, one per in-edge, tagged with the edge color (the output
port, in the port-awareness model).  Views are the backbone of both the
distributed minimum-base algorithm (Section 3.2 / 4.2) and of the
impossibility machinery: two agents have equal views forever iff they lie in
the same fibre of the minimum-base fibration.

A depth-``t`` view has up to ``n^t`` tree nodes, but only at most ``n``
distinct subtrees per depth.  Interning (hash-consing) subtrees therefore
keeps every view at O(n·t) memory, gives O(1) structural equality, and makes
the per-round view update linear.  Children are stored as a canonically
sorted tuple, so a :class:`View` *is* its multiset semantics: two views are
equal iff they are the same Python object.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple


class View:
    """An interned view node.

    Attributes
    ----------
    uid:
        Intern table index; equal views share a uid (within one builder).
    label:
        The root's observable data (input value, outdegree, ... — any
        hashable object).
    children:
        Canonically sorted tuple of ``(color, child_view)`` pairs, one per
        in-edge of the root; ``color`` is the edge color (``None`` outside
        the port model).
    depth:
        Height of the view: a leaf has depth 0.
    """

    __slots__ = ("uid", "label", "children", "depth")

    def __init__(self, uid: int, label: Hashable, children: Tuple[Tuple[Hashable, "View"], ...], depth: int):
        self.uid = uid
        self.label = label
        self.children = children
        self.depth = depth

    def __repr__(self) -> str:
        return f"View(uid={self.uid}, label={self.label!r}, depth={self.depth}, fanin={len(self.children)})"

    # Identity semantics: the builder guarantees structural equality implies
    # object identity, so default __eq__/__hash__ (by id) are correct *per
    # builder*.  Views from different builders must not be mixed.


def _canonical_child_key(pair: Tuple[Hashable, View]) -> Tuple[str, int]:
    color, child = pair
    return (repr(color), child.uid)


class ViewBuilder:
    """Intern table for :class:`View` nodes.

    One builder corresponds to one "universe" of views; a simulation or an
    analysis run should use a single builder throughout so that equal views
    are identical objects.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple, View] = {}
        self._trunc_cache: Dict[Tuple[int, int], View] = {}

    def __len__(self) -> int:
        return len(self._table)

    def leaf(self, label: Hashable) -> View:
        return self.node(label, ())

    def node(self, label: Hashable, children: Iterable[Tuple[Hashable, View]]) -> View:
        """The interned view with this root label and child multiset."""
        kids = tuple(sorted(children, key=_canonical_child_key))
        key = (label, tuple((repr(c), ch.uid) for (c, ch) in kids))
        found = self._table.get(key)
        if found is not None:
            return found
        depth = 1 + max((ch.depth for (_c, ch) in kids), default=-1)
        view = View(len(self._table), label, kids, depth)
        self._table[key] = view
        return view

    def truncate(self, view: View, depth: int) -> View:
        """The view cut off below ``depth`` (identity if already shallower)."""
        if depth < 0:
            raise ValueError("truncation depth must be >= 0")
        if view.depth <= depth:
            return view
        cached = self._trunc_cache.get((view.uid, depth))
        if cached is not None:
            return cached
        if depth == 0:
            result = self.leaf(view.label)
        else:
            result = self.node(
                view.label,
                ((c, self.truncate(ch, depth - 1)) for (c, ch) in view.children),
            )
        self._trunc_cache[(view.uid, depth)] = result
        return result


def view_of(
    g: "Any",
    vertex: int,
    depth: int,
    builder: Optional[ViewBuilder] = None,
    include_ports: bool = False,
) -> View:
    """The depth-``depth`` in-view of ``vertex`` in the static graph ``g``.

    Labels are the vertex values of ``g`` (``None`` if unvalued).  With
    ``include_ports`` the child edges carry the *sender's* output-port
    number, matching the output-port-awareness model; otherwise they carry
    the raw edge colors.

    Computed bottom-up over all vertices simultaneously, so requesting one
    view costs the same as requesting all of them — callers who need every
    view should simply call this ``n`` times; interning makes repeats free.
    """
    if builder is None:
        builder = ViewBuilder()
    current: List[View] = [builder.leaf(g.value(v)) for v in g.vertices()]
    for _level in range(depth):
        nxt: List[View] = []
        for v in g.vertices():
            children = []
            for e in g.in_edges(v):
                color = g.port_of(e) if include_ports else e.color
                children.append((color, current[e.source]))
            nxt.append(builder.node(g.value(v), children))
        current = nxt
    return current[vertex]


def all_views(
    g: "Any",
    depth: int,
    builder: Optional[ViewBuilder] = None,
    include_ports: bool = False,
) -> List[View]:
    """Depth-``depth`` views of every vertex, sharing one intern table."""
    if builder is None:
        builder = ViewBuilder()
    current: List[View] = [builder.leaf(g.value(v)) for v in g.vertices()]
    for _level in range(depth):
        nxt: List[View] = []
        for v in g.vertices():
            children = []
            for e in g.in_edges(v):
                color = g.port_of(e) if include_ports else e.color
                children.append((color, current[e.source]))
            nxt.append(builder.node(g.value(v), children))
        current = nxt
    return current


def dag_size(view: View) -> int:
    """Number of *distinct* nodes reachable from ``view`` — the DAG size."""
    seen: Set[int] = set()
    stack = [view]
    while stack:
        v = stack.pop()
        if v.uid in seen:
            continue
        seen.add(v.uid)
        stack.extend(ch for (_c, ch) in v.children)
    return len(seen)


def tree_size(view: View) -> int:
    """Number of nodes of the *unfolded* tree (exponential in general)."""
    memo: Dict[int, int] = {}

    def size(v: View) -> int:
        got = memo.get(v.uid)
        if got is not None:
            return got
        s = 1 + sum(size(ch) for (_c, ch) in v.children)
        memo[v.uid] = s
        return s

    return size(view)


def nodes_within_levels(view: View, max_level: int) -> List[Tuple[int, View]]:
    """All ``(level, node)`` pairs with ``level <= max_level``, deduplicated.

    A node reachable at several levels is reported once, at its *smallest*
    level (BFS order).  Level 0 is the root.
    """
    seen: Set[int] = set()
    out: List[Tuple[int, View]] = []
    frontier = [view]
    seen.add(view.uid)
    out.append((0, view))
    for level in range(1, max_level + 1):
        nxt: List[View] = []
        for v in frontier:
            for (_c, ch) in v.children:
                if ch.uid not in seen:
                    seen.add(ch.uid)
                    nxt.append(ch)
                    out.append((level, ch))
        frontier = nxt
    return out
