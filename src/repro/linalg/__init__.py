"""Linear algebra for the paper's two regimes.

:mod:`.exact` — exact rational/integer elimination for the static pipeline
("Gaussian elimination over the Euclidean ring ℤ", §4.2); :mod:`.perron` —
the Perron–Frobenius analysis of the fibre matrix ``M``; :mod:`.stochastic`
— column-stochastic matrices, backward products, α-safety, and Dobrushin's
ergodic coefficient for the dynamic pipeline (§5).
"""

from repro.linalg.exact import (
    gcd_list,
    integer_kernel_vector,
    kernel_basis,
    lcm_list,
    rational_rank,
)
from repro.linalg.perron import fibre_matrix, perron_root, kernel_dimension_is_one
from repro.linalg.stochastic import (
    alpha_safety,
    backward_product,
    dobrushin_coefficient,
    is_column_stochastic,
    is_row_stochastic,
    metropolis_matrix,
    push_sum_matrix,
)

__all__ = [
    "alpha_safety",
    "backward_product",
    "dobrushin_coefficient",
    "fibre_matrix",
    "gcd_list",
    "integer_kernel_vector",
    "is_column_stochastic",
    "is_row_stochastic",
    "kernel_basis",
    "kernel_dimension_is_one",
    "lcm_list",
    "metropolis_matrix",
    "perron_root",
    "push_sum_matrix",
    "rational_rank",
]
