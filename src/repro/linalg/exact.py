"""Exact rational elimination and integer kernels (§4.2).

The static algorithm solves ``M z = 0`` for the fibre-cardinality vector,
where ``M`` is a small integer matrix derived from the minimum base.  The
paper's agents use "Gaussian elimination over the Euclidean ring ℤ"; we
perform fraction-free-equivalent elimination with ``fractions.Fraction``
(exact, no overflow in Python) and scale the kernel basis back to the
primitive integer vector with coprime entries.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Tuple


Matrix = Sequence[Sequence[int]]


def gcd_list(xs: Sequence[int]) -> int:
    g = 0
    for x in xs:
        g = gcd(g, abs(x))
    return g


def lcm_list(xs: Sequence[int]) -> int:
    out = 1
    for x in xs:
        if x == 0:
            raise ValueError("lcm of zero is undefined")
        out = out * abs(x) // gcd(out, abs(x))
    return out


def _to_fractions(matrix: Matrix) -> List[List[Fraction]]:
    return [[Fraction(x) for x in row] for row in matrix]


def _rref(rows: List[List[Fraction]]) -> Tuple[List[List[Fraction]], List[int]]:
    """Reduced row echelon form; returns (rref, pivot column indices)."""
    if not rows:
        return rows, []
    n_cols = len(rows[0])
    pivots: List[int] = []
    r = 0
    for c in range(n_cols):
        pivot_row = next((i for i in range(r, len(rows)) if rows[i][c] != 0), None)
        if pivot_row is None:
            continue
        rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        inv = rows[r][c]
        rows[r] = [x / inv for x in rows[r]]
        for i in range(len(rows)):
            if i != r and rows[i][c] != 0:
                factor = rows[i][c]
                rows[i] = [a - factor * b for a, b in zip(rows[i], rows[r])]
        pivots.append(c)
        r += 1
        if r == len(rows):
            break
    return rows, pivots


def rational_rank(matrix: Matrix) -> int:
    """The rank of an integer matrix over ℚ (exact)."""
    _rows, pivots = _rref(_to_fractions(matrix))
    return len(pivots)


def kernel_basis(matrix: Matrix) -> List[List[Fraction]]:
    """A basis of ``ker`` (right null space) over ℚ, exact."""
    rows = _to_fractions(matrix)
    if not rows:
        return []
    n_cols = len(rows[0])
    rref, pivots = _rref(rows)
    free_cols = [c for c in range(n_cols) if c not in pivots]
    basis: List[List[Fraction]] = []
    for fc in free_cols:
        vec = [Fraction(0)] * n_cols
        vec[fc] = Fraction(1)
        for r, pc in enumerate(pivots):
            vec[pc] = -rref[r][fc]
        basis.append(vec)
    return basis


def primitive_integer_vector(vec: Sequence[Fraction]) -> List[int]:
    """Scale a rational vector to coprime integers (sign: first nonzero > 0)."""
    denoms = [f.denominator for f in vec]
    scale = lcm_list(denoms) if denoms else 1
    ints = [int(f * scale) for f in vec]
    g = gcd_list(ints)
    if g:
        ints = [x // g for x in ints]
    first = next((x for x in ints if x != 0), 0)
    if first < 0:
        ints = [-x for x in ints]
    return ints


def integer_kernel_vector(matrix: Matrix) -> Optional[List[int]]:
    """The primitive integer kernel vector, when ``ker`` has dimension one.

    Returns ``None`` when the kernel dimension differs from one.  For the
    fibre matrix of Theorem 4.1 the kernel is one-dimensional and spanned
    by a positive vector (the fibre cardinalities up to a common factor);
    callers should check positivity if they rely on it.
    """
    basis = kernel_basis(matrix)
    if len(basis) != 1:
        return None
    return primitive_integer_vector(basis[0])


def matvec(matrix: Matrix, vec: Sequence[int]) -> List[int]:
    """Integer matrix-vector product (exact)."""
    return [sum(a * x for a, x in zip(row, vec)) for row in matrix]
