"""Perron–Frobenius analysis of the fibre matrix (Theorem 4.1, §4.2).

The minimum base determines the integer matrix ``M`` with
``M[i][j] = d_{i,j}`` off the diagonal and ``M[i][i] = d_{i,i} - b_i`` on
it, where ``d_{i,j}`` counts base edges ``i -> j`` and ``b_i`` is the
(common) outdegree of the vertices in fibre ``i``.  The paper's key lemma —
proved with a Perron–Frobenius argument for matrices with possibly negative
diagonal — is that ``ker M`` has dimension exactly one and is spanned by
the positive vector of fibre cardinalities.  This module builds ``M``,
checks the rank property exactly, and exposes the spectral quantities used
in the proof (for tests and the ablation benchmark).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.linalg.exact import rational_rank


def fibre_matrix(base: DiGraph, fibre_outdegrees: Sequence[int]) -> List[List[int]]:
    """The matrix ``M`` of §4.2 from a minimum base and its ``b`` valuation.

    ``fibre_outdegrees[i]`` is ``b_i``: the outdegree *in the original
    graph G* of the vertices collapsed onto base vertex ``i`` (which may
    differ from ``i``'s outdegree in the base — footnote 5).
    """
    m = base.n
    if len(fibre_outdegrees) != m:
        raise ValueError(f"need one outdegree per base vertex, got {len(fibre_outdegrees)} for {m}")
    mat = [[0] * m for _ in range(m)]
    for e in base.edges:
        mat[e.source][e.target] += 1
    for i in range(m):
        mat[i][i] -= fibre_outdegrees[i]
    return mat


def kernel_dimension_is_one(matrix: Sequence[Sequence[int]]) -> bool:
    """Exact check that ``ker M`` has dimension one (rank ``m - 1``)."""
    m = len(matrix)
    return rational_rank(matrix) == m - 1


def perron_root(nonnegative: np.ndarray, iterations: int = 10_000, tol: float = 1e-13) -> Tuple[float, np.ndarray]:
    """Spectral radius and positive eigenvector of an irreducible ``P >= 0``.

    Power iteration on ``P`` (whose diagonal is positive in our usage, so
    the iteration is primitive and converges geometrically).  Returns
    ``(ρ, x)`` with ``x`` normalized to sum 1.
    """
    p = np.asarray(nonnegative, dtype=float)
    if (p < 0).any():
        raise ValueError("perron_root needs a nonnegative matrix")
    m = p.shape[0]
    x = np.full(m, 1.0 / m)
    rho = 0.0
    for _ in range(iterations):
        y = p @ x
        norm = y.sum()
        if norm == 0:
            raise ValueError("matrix annihilates the positive cone; not irreducible")
        y /= norm
        if np.max(np.abs(y - x)) < tol:
            x = y
            rho = float((p @ x).sum() / x.sum())
            break
        x = y
    else:
        rho = float((p @ x).sum() / x.sum())
    return rho, x


def shifted_matrix(matrix: Sequence[Sequence[int]], alpha: float = None) -> np.ndarray:
    """``P = M + αI`` with α exceeding ``-min(diagonal)`` (the proof's shift)."""
    m = np.asarray(matrix, dtype=float)
    if alpha is None:
        alpha = float(-m.diagonal().min()) + 1.0
    if alpha <= -m.diagonal().min() - 1e-12:
        raise ValueError("alpha must exceed -min diagonal entry")
    return m + alpha * np.eye(m.shape[0])


def dominant_kernel_vector(matrix: Sequence[Sequence[int]]) -> np.ndarray:
    """The positive kernel direction of ``M`` via the paper's shift argument.

    Since ``λ = 0`` is the Perron value of ``M`` (Theorem 4.1 proof), the
    Perron vector of ``P = M + αI`` spans ``ker M``.  Used as a floating
    cross-check against the exact integer kernel.
    """
    p = shifted_matrix(matrix)
    _rho, x = perron_root(p)
    return x
