"""Stochastic matrices for the dynamic-network algorithms (§5.2–5.3).

The Push-Sum update is multiplication by the column-stochastic matrix
``A(t)`` with ``A[i][j] = 1/d⁻_j(t)`` whenever ``(j, i) ∈ E(t)``; the
Metropolis update uses a doubly-stochastic symmetric matrix.  This module
builds both from communication graphs and provides the analysis quantities
of Lemma 5.1 and Theorem 5.2: α-safety, backward products, and Dobrushin's
ergodic coefficient δ(P).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphs.digraph import DiGraph


def push_sum_matrix(g: DiGraph) -> np.ndarray:
    """The column-stochastic ``A`` of Theorem 5.2's proof.

    ``A[i, j] = (# edges j -> i) / d⁻_j`` — each sender splits its mass
    equally over its out-edges (self-loop included, so no mass is lost).
    Column-stochastic by construction.
    """
    n = g.n
    a = np.zeros((n, n))
    for e in g.edges:
        a[e.target, e.source] += 1.0 / g.outdegree(e.source)
    return a


def metropolis_matrix(g: DiGraph, lazy: bool = False) -> np.ndarray:
    """The Metropolis weight matrix of a *symmetric* graph.

    ``W[i, j] = 1 / (1 + max(deg_i, deg_j))`` on (distinct) neighbors,
    diagonal set to preserve row sums — doubly stochastic, symmetric, with
    positive diagonal.  ``lazy=True`` halves off-diagonal weights (the Lazy
    Metropolis variant of Olshevsky used for finite-dynamic-diameter
    symmetric networks).

    Degrees exclude the self-loop: the paper's Metropolis weights are over
    the neighbor relation.
    """
    n = g.n
    support = {(e.source, e.target) for e in g.edges if e.source != e.target}
    for (i, j) in support:
        if (j, i) not in support:
            raise ValueError("metropolis_matrix needs a symmetric graph")
    deg = [0] * n
    neighbors = [set() for _ in range(n)]
    for (i, j) in support:
        neighbors[i].add(j)
    for v in range(n):
        deg[v] = len(neighbors[v])
    w = np.zeros((n, n))
    scale = 2.0 if lazy else 1.0
    for (i, j) in support:
        w[i, j] = 1.0 / (scale * (1.0 + max(deg[i], deg[j])))
    for v in range(n):
        w[v, v] = 1.0 - w[v].sum()
    return w


def is_column_stochastic(a: np.ndarray, tol: float = 1e-9) -> bool:
    return bool((a >= -tol).all() and np.allclose(a.sum(axis=0), 1.0, atol=tol))


def is_row_stochastic(a: np.ndarray, tol: float = 1e-9) -> bool:
    return bool((a >= -tol).all() and np.allclose(a.sum(axis=1), 1.0, atol=tol))


def alpha_safety(a: np.ndarray) -> float:
    """The largest α such that ``a`` is α-safe (min positive entry)."""
    positive = a[a > 0]
    if positive.size == 0:
        raise ValueError("matrix has no positive entry")
    return float(positive.min())


def backward_product(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """``A(t') · ... · A(t)`` for matrices given in time order ``t .. t'``.

    The *later* matrix multiplies on the left, matching the paper's
    ``A(t' : t)`` notation.
    """
    out = None
    for a in matrices:
        out = a.copy() if out is None else a @ out
    if out is None:
        raise ValueError("backward product of an empty sequence is undefined")
    return out


def dobrushin_coefficient(p: np.ndarray) -> float:
    """Dobrushin's ergodic coefficient δ(P) of a row-stochastic matrix.

    ``δ(P) = 1 - min_{i≠j} Σ_k min(P[i,k], P[j,k])`` ∈ [0, 1]; it is
    sub-multiplicative and contracts the max-min seminorm (§5.3).
    """
    n = p.shape[0]
    if n == 1:
        return 0.0
    worst = 1.0
    for i in range(n):
        for j in range(i + 1, n):
            overlap = float(np.minimum(p[i], p[j]).sum())
            worst = min(worst, overlap)
    return 1.0 - worst


def seminorm_spread(x: np.ndarray) -> float:
    """The seminorm ``δ(x) = max x - min x`` contracted by δ(P)."""
    return float(x.max() - x.min())
