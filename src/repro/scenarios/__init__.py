"""``repro.scenarios`` — the declarative scenario DSL.

Experiments as config files instead of bespoke Python glue: a JSON/TOML
document names a workload (one of the paper's tables, or a grid of graph
families × sizes × seeds × probes under one communication model), a
validating loader normalizes it into a :class:`~repro.scenarios.schema.Scenario`,
and the runner compiles it onto the existing engine — ``BatchJob`` /
``run_batch``, the plan cache, the quotient/vector/parallel backends,
and the PR-5 durable store.

Entry points::

    python -m repro run configs/table1.json           # CLI
    python -m repro store --root exp submit scenario --config cfg.json

    from repro.scenarios import load_scenario, run_scenario, document_bytes
    doc = run_scenario(load_scenario("configs/onebit_counting.json"))

Every failure mode is typed (:class:`ScenarioError` and subclasses) and
names the offending file — and, for schema violations, the offending key.
Documents are deterministic byte-for-byte across engine modes;
``configs/table1.json`` / ``table2.json`` reproduce the hard-coded paths
exactly (asserted by the golden-config tests).
"""

from repro.scenarios.errors import (
    ScenarioError,
    ScenarioFileError,
    ScenarioSchemaError,
)
from repro.scenarios.registry import GRAPH_FAMILIES, INPUT_PATTERNS, PROBES
from repro.scenarios.schema import (
    EngineFlags,
    GraphSpec,
    Scenario,
    validate_scenario,
)
from repro.scenarios.loader import load_scenario, parse_scenario_text
from repro.scenarios.runner import (
    compute_grid_row,
    document_bytes,
    format_scenario_document,
    grid_units,
    run_scenario,
    scenario_document,
)

__all__ = [
    "EngineFlags",
    "GRAPH_FAMILIES",
    "GraphSpec",
    "INPUT_PATTERNS",
    "PROBES",
    "Scenario",
    "ScenarioError",
    "ScenarioFileError",
    "ScenarioSchemaError",
    "compute_grid_row",
    "document_bytes",
    "format_scenario_document",
    "grid_units",
    "load_scenario",
    "parse_scenario_text",
    "run_scenario",
    "scenario_document",
    "validate_scenario",
]
