"""Typed failures of the scenario DSL.

Every error carries its *source* (the config file path, or a synthetic
label like ``"<dict>"`` for in-memory configs) and renders it into the
message, so a failing ``python -m repro run`` names the file the user has
to fix — never a bare traceback.  Schema errors additionally carry the
offending key.
"""

from __future__ import annotations


class ScenarioError(Exception):
    """Base of every scenario-DSL failure (file or schema)."""

    def __init__(self, source, message: str):
        self.source = str(source)
        super().__init__(f"{self.source}: {message}")


class ScenarioFileError(ScenarioError):
    """The config file cannot be read or parsed (malformed JSON/TOML,
    unsupported format, missing file, TOML on a Python without tomllib)."""


class ScenarioSchemaError(ScenarioError):
    """The parsed config violates the scenario schema.

    ``key`` names the offending config key (dotted / indexed for nested
    locations, e.g. ``"engine.workers"`` or ``"graphs[1].sizes"``;
    ``"<root>"`` when the document as a whole is the problem).
    """

    def __init__(self, source, key: str, message: str):
        self.key = key
        super().__init__(source, f"config key {key!r}: {message}")
