"""Loading scenario configs from disk: JSON always, TOML when available.

Parsing failures never escape as parser tracebacks: a missing file, an
unsupported suffix, malformed JSON/TOML, and TOML-on-Python-3.10-or-older
all raise :class:`~repro.scenarios.errors.ScenarioFileError` with the
file path in the message, which ``python -m repro run`` turns into a
one-line stderr diagnostic.

TOML support rides the standard library's ``tomllib`` (Python 3.11+).
The repository supports 3.9, so the import is gated — JSON configs work
everywhere, TOML configs fail with a clear message rather than an
``ImportError`` on older interpreters.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.scenarios.errors import ScenarioFileError
from repro.scenarios.schema import Scenario, validate_scenario

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 CI legs
    tomllib = None


def parse_scenario_text(text: str, fmt: str, source: str) -> Any:
    """Parse raw config text (``fmt`` is ``"json"`` or ``"toml"``) into
    the document the schema validates; typed errors on malformed input."""
    if fmt == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioFileError(source, f"malformed JSON: {exc}") from None
    if fmt == "toml":
        if tomllib is None:
            raise ScenarioFileError(
                source,
                "TOML configs need Python 3.11+ (tomllib is unavailable); "
                "rewrite the config as JSON",
            )
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioFileError(source, f"malformed TOML: {exc}") from None
    raise ScenarioFileError(source, f"unsupported config format {fmt!r}")


def load_scenario(path) -> Scenario:
    """Read, parse, and validate one scenario config file.

    The format comes from the suffix (``.json`` / ``.toml``); everything
    else is rejected up front.  Returns the normalized
    :class:`~repro.scenarios.schema.Scenario`.
    """
    source = os.fspath(path)
    suffix = os.path.splitext(source)[1].lower()
    if suffix not in (".json", ".toml"):
        raise ScenarioFileError(
            source, f"unsupported config suffix {suffix or '(none)'!r}; use .json or .toml"
        )
    try:
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ScenarioFileError(source, f"cannot read config: {exc.strerror or exc}") from None
    raw = parse_scenario_text(text, suffix[1:], source)
    return validate_scenario(raw, source=source)
