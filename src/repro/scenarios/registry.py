"""What a scenario config may name: graph families, input patterns, probes.

The schema layer validates config strings against these tables (so every
typo fails at load time with the key and file in the message), and the
runner compiles the validated names back into graphs, input vectors, and
:class:`~repro.core.engine.batch.BatchJob` algorithms.  Everything here
is deterministic in ``(n, seed)`` — the registries introduce no
randomness of their own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.models import CommunicationModel


# ---------------------------------------------------------------------- #
# graph families
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class GraphFamily:
    """One buildable topology family: ``build(n, seed)`` plus an optional
    per-size constraint (``check_size(n)`` returns an error message or
    ``None``)."""

    name: str
    build: Callable[[int, int], Any]
    check_size: Optional[Callable[[int], Optional[str]]] = None


def _build_complete(n: int, seed: int):
    from repro.graphs.builders import complete_graph

    return complete_graph(n)


def _build_ring(n: int, seed: int):
    from repro.graphs.builders import bidirectional_ring

    return bidirectional_ring(n)


def _build_directed_ring(n: int, seed: int):
    from repro.graphs.builders import directed_ring

    return directed_ring(n)


def _build_star(n: int, seed: int):
    from repro.graphs.builders import star_graph

    return star_graph(n)


def _build_hypercube(n: int, seed: int):
    from repro.graphs.builders import hypercube

    return hypercube(n.bit_length() - 1)


def _check_hypercube(n: int) -> Optional[str]:
    if n < 2 or n & (n - 1):
        return f"hypercube sizes must be powers of two >= 2, got {n}"
    return None


def _build_random(n: int, seed: int):
    from repro.graphs.builders import random_strongly_connected

    return random_strongly_connected(n, seed=seed)


GRAPH_FAMILIES: Dict[str, GraphFamily] = {
    family.name: family
    for family in (
        GraphFamily("complete", _build_complete),
        GraphFamily("ring", _build_ring),
        GraphFamily("directed-ring", _build_directed_ring),
        GraphFamily("star", _build_star),
        GraphFamily("hypercube", _build_hypercube, _check_hypercube),
        GraphFamily("random", _build_random),
    )
}


# ---------------------------------------------------------------------- #
# input patterns
# ---------------------------------------------------------------------- #

def _bits_alternating(n: int, seed: int) -> List[int]:
    return [i % 2 for i in range(n)]


def _bits_one_hot(n: int, seed: int) -> List[int]:
    return [1 if i == 0 else 0 for i in range(n)]


def _bits_zeros(n: int, seed: int) -> List[int]:
    return [0] * n


def _bits_seeded(n: int, seed: int) -> List[int]:
    rng = random.Random(seed * 1_000_003 + 17)
    return [rng.randint(0, 1) for _ in range(n)]


INPUT_PATTERNS: Dict[str, Callable[[int, int], List[int]]] = {
    "alternating": _bits_alternating,
    "one-hot": _bits_one_hot,
    "zeros": _bits_zeros,
    "seeded": _bits_seeded,
}


# ---------------------------------------------------------------------- #
# probes
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class Probe:
    """One grid probe: the algorithm, its model, the convergence target
    as a function of the inputs, and the oracle saying where the probe is
    *expected* to converge (a row is ``consistent`` when measurement and
    oracle agree — including expected failures)."""

    name: str
    model: CommunicationModel
    factory: Callable[[], Any]
    target: Callable[[List[int], int], Any]
    oracle: Callable[[str, int], bool]


def _make_or_flood():
    from repro.algorithms.onebit import OneBitFloodingAlgorithm

    return OneBitFloodingAlgorithm()


def _make_census():
    from repro.algorithms.onebit import OneBitCensusAlgorithm

    return OneBitCensusAlgorithm()


def _make_gossip_max():
    from repro.algorithms.gossip import GossipAlgorithm

    return GossipAlgorithm(max)


PROBES: Dict[str, Probe] = {
    probe.name: probe
    for probe in (
        # OR-flooding converges to the disjunction on every strongly
        # connected network — the model pack's positive probe.
        Probe(
            "or-flood",
            CommunicationModel.ONE_BIT_BROADCAST,
            _make_or_flood,
            target=lambda bits, n: max(bits) if bits else 0,
            oracle=lambda family, n: True,
        ),
        # The census counts ones exactly when indegree == n, i.e. on
        # complete graphs with self-loops — everywhere else the expected
        # verdict is failure (one bit per round does not carry a global
        # multiset through a bottleneck).
        Probe(
            "census",
            CommunicationModel.ONE_BIT_BROADCAST,
            _make_census,
            target=lambda bits, n: (n, sum(bits)),
            oracle=lambda family, n: family == "complete",
        ),
        # Plain set-flooding gossip under simple broadcast — proves the
        # grid kind is not one-bit-specific.
        Probe(
            "gossip-max",
            CommunicationModel.SIMPLE_BROADCAST,
            _make_gossip_max,
            target=lambda bits, n: max(bits) if bits else 0,
            oracle=lambda family, n: True,
        ),
    )
}
