"""Compiling validated scenarios onto the engine and running them.

A ``"table"`` scenario compiles to the existing cell machinery
(:func:`repro.analysis.tables.paper_table_document`), so its document is
byte-identical to the hard-coded ``reproduce_table1/2`` paths and to the
durable table jobs — the golden-config tests pin exactly that.

A ``"grid"`` scenario compiles each (graph family × size × seed × probe)
unit to one :class:`~repro.core.engine.batch.BatchJob` driven by the δ0
detector, sharing one :class:`~repro.core.engine.plan.PlanCache` across
the grid sequentially or fanning units over the process pool when the
config (or ``REPRO_PARALLEL``) asks for it.  Rows are served from the
durable :class:`~repro.store.cache.ResultStore` when one is configured
— row keys bind the unit parameters and the engine generation, never the
engine flags, so accelerated and direct runs share one cache.

Documents are pure functions of the rows (no timestamps, no hostnames);
:func:`document_bytes` is the single canonical serialization everything
— CLI, tests, CI artifacts — emits.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import ENGINE_VERSION, BatchJob, PlanCache, run_batch
from repro.scenarios.registry import GRAPH_FAMILIES, INPUT_PATTERNS, PROBES
from repro.scenarios.schema import Scenario


def document_bytes(document: Dict[str, Any]) -> bytes:
    """The canonical byte serialization of a scenario document (sorted
    keys, two-space indent, trailing newline) — what ``python -m repro
    run`` writes and the golden tests compare."""
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")


def grid_units(scenario: Scenario) -> List[Tuple[str, int, int, str]]:
    """The (family, n, seed, probe) units of a grid scenario, in document
    order — the unit list both the runner and the durable job iterate."""
    return [
        (graph.family, n, seed, probe)
        for graph in scenario.graphs
        for n in graph.sizes
        for seed in scenario.seeds
        for probe in scenario.probes
    ]


def _json_safe(value: Any) -> Any:
    """Tuples become lists so computed rows match their store round-trip."""
    if isinstance(value, tuple):
        return [_json_safe(v) for v in value]
    return value


def _row_params(scenario: Scenario, family: str, n: int, seed: int, probe: str) -> Dict[str, Any]:
    """The store-key parameters of one grid row: everything that
    determines the row's content, nothing that only picks an engine mode
    (and not the scenario name — configs sharing units share cache)."""
    return {
        "model": scenario.model.value,
        "knowledge": None if scenario.knowledge is None else scenario.knowledge.value,
        "rounds": scenario.rounds,
        "inputs": scenario.inputs,
        "graph": family,
        "n": n,
        "seed": seed,
        "probe": probe,
    }


def compute_grid_row(
    scenario: Scenario,
    family: str,
    n: int,
    seed: int,
    probe_name: str,
    plan_cache: Optional[PlanCache] = None,
    store=None,
    quotient: Optional[bool] = None,
    vector: Optional[bool] = None,
    on_trace: Optional[Callable[[Dict[str, Any], List[Dict[str, Any]]], None]] = None,
) -> Dict[str, Any]:
    """One grid unit: build the graph and inputs, run the probe under the
    δ0 detector, compare the verdict with the probe's oracle.  Served
    from ``store`` when warm (same fetch-or-compute contract as table
    cells).

    ``on_trace(unit, snapshots)`` — when given — receives the unit's
    round-level :class:`~repro.core.engine.trace.Tracer` metric snapshots
    (one dict per round, wall-clock fields dropped) after the unit runs.
    Tracing rides the PR-3 no-interference contract, so the row — and
    hence the document and its store key — is byte-identical with or
    without it.  Units served from the store run no rounds and report no
    snapshots.
    """
    probe = PROBES[probe_name]

    def compute() -> Dict[str, Any]:
        graph = GRAPH_FAMILIES[family].build(n, seed)
        bits = INPUT_PATTERNS[scenario.inputs](n, seed)
        target = probe.target(bits, n)
        job = BatchJob(
            probe.factory(),
            graph,
            inputs=bits,
            runner="stable",
            rounds=scenario.rounds,
            patience=2,
            target=target,
            label=f"{probe_name}@{family}/n={n}/seed={seed}",
        )
        tracer = None
        if on_trace is not None:
            from repro.core.engine.trace import Tracer

            tracer = Tracer()
            job.observers.append(tracer)
        (result,) = run_batch(
            [job], plan_cache=plan_cache, quotient=quotient, vector=vector
        )
        if tracer is not None:
            on_trace(
                {"graph": family, "n": n, "seed": seed, "probe": probe_name},
                [
                    {"round": event.round, **event.deterministic_fields()}
                    for event in tracer.events
                    if event.kind == "round"
                ],
            )
        report = result.report
        expected = probe.oracle(family, n)
        return {
            "probe": probe_name,
            "graph": family,
            "n": n,
            "seed": seed,
            "inputs": scenario.inputs,
            "target": _json_safe(target),
            "converged": report.converged,
            "stabilization_round": report.stabilization_round,
            "rounds_run": report.rounds_run,
            "expected_convergence": expected,
            "consistent": report.converged == expected,
        }

    if store is None:
        return compute()
    from repro.store.cache import fetch_or_compute

    return fetch_or_compute(
        store,
        "scenario-row",
        _row_params(scenario, family, n, seed, probe_name),
        compute,
        lambda row: row,
        lambda payload: payload,
    )


def _grid_task(spec) -> Dict[str, Any]:
    """One grid row from a picklable spec — the unit the pool fans out.
    Mirrors :func:`repro.analysis.tables._cell_task`: workers open the
    same on-disk store by root (atomic writes make concurrent fills
    safe) and keep their own plan caches."""
    scenario, family, n, seed, probe, store_root, quotient, vector = spec
    store = None
    if store_root:
        from repro.store.cache import ResultStore

        store = ResultStore(store_root)
    return compute_grid_row(
        scenario, family, n, seed, probe, store=store, quotient=quotient,
        vector=vector,
    )


def scenario_document(scenario: Scenario, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble the deterministic document of one grid scenario — same
    discipline as :func:`repro.store.jobs.table_document`: a pure
    function of the rows, so interrupted-and-resumed runs emit the same
    bytes as clean ones."""
    consistent = sum(1 for row in rows if row["consistent"])
    return {
        "kind": "scenario",
        "engine_version": ENGINE_VERSION,
        "scenario": scenario.name,
        "parameters": scenario.identity(),
        "rows": rows,
        "summary": {
            "rows": len(rows),
            "consistent": consistent,
            "verdict": "PASS" if consistent == len(rows) else "FAIL",
        },
    }


def run_scenario(
    scenario: Scenario,
    store=None,
    progress: Optional[Callable[[int, int], None]] = None,
    on_trace: Optional[Callable[[Dict[str, Any], List[Dict[str, Any]]], None]] = None,
) -> Dict[str, Any]:
    """Execute a validated scenario; returns its deterministic document.

    ``store`` follows the harness convention (``None`` defers to
    ``REPRO_STORE``; a path or :class:`~repro.store.cache.ResultStore`
    makes units durable).  ``progress(done, total)`` is called after each
    finished unit on the sequential path — the durable scenario job
    heartbeats its lease there (it forces sequential execution, exactly
    like the table jobs).  ``on_trace`` forwards each computed grid
    unit's round-level tracer snapshots (see :func:`compute_grid_row`);
    like ``progress`` it forces the sequential path, and it is ignored
    for table scenarios (their cells ride the table machinery, which
    reports unit progress only).
    """
    from repro.store.cache import resolve_store

    store = resolve_store(store)
    engine = scenario.engine
    if scenario.kind == "table":
        from repro.analysis.tables import paper_table_document

        return paper_table_document(
            scenario.table,
            n=scenario.n,
            seed=scenario.seed,
            parallel=engine.parallel,
            workers=engine.workers,
            store=store,
            quotient=engine.quotient,
            vector=engine.vector,
            progress=progress,
        )

    units = grid_units(scenario)
    parallel = engine.parallel
    if parallel is None:
        from repro.core.engine.batch import parallel_enabled_by_env

        parallel = parallel_enabled_by_env()
    if parallel and progress is None and on_trace is None:
        from repro.core.engine.parallel import parallel_map

        root = getattr(store, "root", None)
        rows = parallel_map(
            _grid_task,
            [
                (scenario, family, n, seed, probe, root, engine.quotient, engine.vector)
                for family, n, seed, probe in units
            ],
            workers=engine.workers,
        )
    else:
        plan_cache = PlanCache()
        rows = []
        for done, (family, n, seed, probe) in enumerate(units, start=1):
            rows.append(
                compute_grid_row(
                    scenario, family, n, seed, probe, plan_cache=plan_cache,
                    store=store, quotient=engine.quotient, vector=engine.vector,
                    on_trace=on_trace,
                )
            )
            if progress is not None:
                progress(done, len(units))
    return scenario_document(scenario, rows)


def format_scenario_document(document: Dict[str, Any]) -> str:
    """Render a scenario document for humans (``python -m repro run
    --pretty``): the paper-table grid for table documents, one row per
    grid unit otherwise."""
    if document["kind"] in ("table1", "table2"):
        from repro.analysis.tables import cell_from_payload, format_results

        titles = {
            "table1": "Table 1 — static strongly connected networks",
            "table2": "Table 2 — dynamic networks with finite dynamic diameter",
        }
        results = [cell_from_payload(cell) for cell in document["cells"]]
        return format_results(results, titles[document["kind"]])
    from repro.analysis.reporting import render_table

    headers = ["probe", "graph", "n", "seed", "converged", "expected", "verdict"]
    rows = [
        [
            row["probe"],
            row["graph"],
            str(row["n"]),
            str(row["seed"]),
            "yes" if row["converged"] else "no",
            "yes" if row["expected_convergence"] else "no",
            "✓" if row["consistent"] else "✗",
        ]
        for row in document["rows"]
    ]
    title = document["parameters"].get("title") or document["scenario"]
    return render_table(headers, rows, title=title)
