"""The scenario schema: validation and the normalized :class:`Scenario`.

A scenario config is a JSON/TOML document describing one declarative
workload.  Two kinds exist:

* ``"table"`` — reproduce one of the paper's tables through the existing
  cell machinery.  Keys: ``table`` (1 or 2), ``seed`` (required), ``n``
  (optional, paper defaults 6/5).
* ``"grid"`` — a (graph family × size × seed × probe) grid under one
  communication model.  Keys: ``model``, ``rounds``, ``seeds``,
  ``graphs`` (list of ``{family, sizes}``), ``probes``, ``inputs``,
  optional ``knowledge`` (centralized-help level, recorded in the
  document) and ``output.title``.

Both kinds take an optional ``engine`` block (``parallel`` / ``workers``
/ ``quotient`` / ``vector``) selecting *how* the scenario runs, never
what it computes: engine flags are excluded from :meth:`Scenario.identity`
— and hence from store keys and emitted documents — so every engine mode
produces byte-identical output.

Validation is strict and total: unknown keys, wrong types, out-of-range
values, unknown registry names, and incoherent engine-flag combinations
each raise a :class:`~repro.scenarios.errors.ScenarioSchemaError` naming
the offending key and the source file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.models import CommunicationModel
from repro.core.network_class import Knowledge
from repro.scenarios.errors import ScenarioSchemaError
from repro.scenarios.registry import GRAPH_FAMILIES, INPUT_PATTERNS, PROBES

_COMMON_KEYS = frozenset({"scenario", "kind", "engine", "output"})
_TABLE_KEYS = frozenset({"table", "n", "seed"})
_GRID_KEYS = frozenset(
    {"model", "knowledge", "rounds", "seeds", "graphs", "probes", "inputs"}
)
_ENGINE_KEYS = frozenset({"parallel", "workers", "quotient", "vector"})
_OUTPUT_KEYS = frozenset({"title"})


@dataclass(frozen=True)
class EngineFlags:
    """How a scenario executes.  ``None`` defers to the environment
    defaults (``REPRO_PARALLEL`` / ``REPRO_QUOTIENT`` / ``REPRO_VECTOR``),
    exactly like the harness entry points."""

    parallel: Optional[bool] = None
    workers: Optional[int] = None
    quotient: Optional[bool] = None
    vector: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in ("parallel", "workers", "quotient", "vector"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


@dataclass(frozen=True)
class GraphSpec:
    """One validated ``graphs`` entry: a family and its sizes."""

    family: str
    sizes: Tuple[int, ...]


@dataclass(frozen=True)
class Scenario:
    """A validated, normalized scenario — what the runner executes."""

    name: str
    kind: str
    source: str
    engine: EngineFlags
    # table kind
    table: Optional[int] = None
    n: Optional[int] = None
    seed: Optional[int] = None
    # grid kind
    model: Optional[CommunicationModel] = None
    knowledge: Optional[Knowledge] = None
    rounds: Optional[int] = None
    seeds: Tuple[int, ...] = ()
    graphs: Tuple[GraphSpec, ...] = ()
    probes: Tuple[str, ...] = ()
    inputs: Optional[str] = None
    title: Optional[str] = None

    def identity(self) -> Dict[str, Any]:
        """The canonical parameter dict — everything that determines the
        scenario's *results*, nothing that only picks an engine mode.
        This is what store keys and emitted documents are built from, so
        object, vector-fallback, quotient, and parallel runs of the same
        config share one cache and one byte-exact document."""
        if self.kind == "table":
            return {
                "kind": "table",
                "scenario": self.name,
                "table": self.table,
                "n": self.n,
                "seed": self.seed,
            }
        return {
            "kind": "grid",
            "scenario": self.name,
            "model": self.model.value,
            "knowledge": None if self.knowledge is None else self.knowledge.value,
            "rounds": self.rounds,
            "seeds": list(self.seeds),
            "graphs": [
                {"family": g.family, "sizes": list(g.sizes)} for g in self.graphs
            ],
            "probes": list(self.probes),
            "inputs": self.inputs,
            "title": self.title,
        }

    def normalized(self) -> Dict[str, Any]:
        """The full canonical config, engine flags included — the form a
        scenario job carries in its queue parameters.  Round-trips
        through :func:`validate_scenario` (the title moves back under
        ``output``, where the schema wants it)."""
        out = self.identity()
        out.pop("title", None)
        if self.title is not None:
            out["output"] = {"title": self.title}
        engine = self.engine.to_dict()
        if engine:
            out["engine"] = engine
        return out


# ---------------------------------------------------------------------- #
# validation helpers
# ---------------------------------------------------------------------- #

def _fail(source, key: str, message: str) -> None:
    raise ScenarioSchemaError(source, key, message)


def _plain_int(value: Any) -> bool:
    """True for ints that are not booleans (JSON/TOML ``true`` is a bool
    in Python and must not pass where a number is required)."""
    return type(value) is int


def _required(raw: Dict[str, Any], key: str, source) -> Any:
    if key not in raw:
        _fail(source, key, "required key is missing")
    return raw[key]


def _int_in(source, key: str, value: Any, minimum: int) -> int:
    if not _plain_int(value):
        _fail(source, key, f"expected an integer, got {value!r}")
    if value < minimum:
        _fail(source, key, f"must be an integer >= {minimum}, got {value}")
    return value


def _validate_engine(raw: Any, source) -> EngineFlags:
    if raw is None:
        return EngineFlags()
    if not isinstance(raw, dict):
        _fail(source, "engine", f"expected a table/object, got {raw!r}")
    for key in sorted(raw):
        if key not in _ENGINE_KEYS:
            _fail(
                source,
                f"engine.{key}",
                f"unknown engine flag; known flags: {', '.join(sorted(_ENGINE_KEYS))}",
            )
    flags: Dict[str, Any] = {}
    for name in ("parallel", "quotient", "vector"):
        if name in raw:
            value = raw[name]
            if not isinstance(value, bool):
                _fail(source, f"engine.{name}", f"expected true or false, got {value!r}")
            flags[name] = value
    if "workers" in raw and raw["workers"] is not None:
        flags["workers"] = _int_in(source, "engine.workers", raw["workers"], 1)
    if flags.get("quotient") and flags.get("vector"):
        _fail(
            source,
            "engine",
            "engine.quotient and engine.vector cannot both be forced on — "
            "a quotient-active run already simulates only the base; pick one",
        )
    if flags.get("workers") is not None and flags.get("parallel") is False:
        _fail(
            source,
            "engine.workers",
            "engine.workers only applies when engine.parallel is not false",
        )
    return EngineFlags(**flags)


def _validate_title(raw: Any, source) -> Optional[str]:
    if raw is None:
        return None
    if not isinstance(raw, dict):
        _fail(source, "output", f"expected a table/object, got {raw!r}")
    for key in sorted(raw):
        if key not in _OUTPUT_KEYS:
            _fail(source, f"output.{key}", "unknown output key; known keys: title")
    title = raw.get("title")
    if title is not None and not isinstance(title, str):
        _fail(source, "output.title", f"expected a string, got {title!r}")
    return title


def _validate_graphs(raw: Any, source) -> Tuple[GraphSpec, ...]:
    if not isinstance(raw, list) or not raw:
        _fail(source, "graphs", "expected a non-empty list of {family, sizes} entries")
    specs = []
    for i, entry in enumerate(raw):
        where = f"graphs[{i}]"
        if not isinstance(entry, dict):
            _fail(source, where, f"expected a {{family, sizes}} entry, got {entry!r}")
        for key in sorted(entry):
            if key not in ("family", "sizes"):
                _fail(source, f"{where}.{key}", "unknown key; known keys: family, sizes")
        if "family" not in entry:
            _fail(source, f"{where}.family", "required key is missing")
        family = entry["family"]
        if not isinstance(family, str) or family not in GRAPH_FAMILIES:
            _fail(
                source,
                f"{where}.family",
                f"unknown graph family {family!r}; known families: "
                f"{', '.join(sorted(GRAPH_FAMILIES))}",
            )
        sizes = entry.get("sizes")
        if not isinstance(sizes, list) or not sizes:
            _fail(source, f"{where}.sizes", "expected a non-empty list of sizes >= 2")
        checked = []
        check = GRAPH_FAMILIES[family].check_size
        for j, size in enumerate(sizes):
            size = _int_in(source, f"{where}.sizes[{j}]", size, 2)
            if check is not None:
                problem = check(size)
                if problem:
                    _fail(source, f"{where}.sizes[{j}]", problem)
            checked.append(size)
        specs.append(GraphSpec(family, tuple(checked)))
    return tuple(specs)


# ---------------------------------------------------------------------- #
# the validator
# ---------------------------------------------------------------------- #

def validate_scenario(raw: Any, source: str = "<dict>") -> Scenario:
    """Validate a parsed config document into a :class:`Scenario`.

    Raises :class:`~repro.scenarios.errors.ScenarioSchemaError` — whose
    message names ``source`` and the offending key — on the first
    violation found.
    """
    if not isinstance(raw, dict):
        _fail(source, "<root>", f"a scenario config must be a table/object, got {raw!r}")

    name = _required(raw, "scenario", source)
    if not isinstance(name, str) or not name.strip():
        _fail(source, "scenario", f"expected a non-empty string, got {name!r}")
    kind = _required(raw, "kind", source)
    if kind not in ("table", "grid"):
        _fail(source, "kind", f"unknown scenario kind {kind!r}; pick 'table' or 'grid'")

    allowed = _COMMON_KEYS | (_TABLE_KEYS if kind == "table" else _GRID_KEYS)
    for key in sorted(raw):
        if key not in allowed:
            other = _GRID_KEYS if kind == "table" else _TABLE_KEYS
            if key in other:
                _fail(source, key, f"not a {kind!r}-kind key")
            _fail(source, key, "unknown key; not part of the scenario schema")

    engine = _validate_engine(raw.get("engine"), source)
    title = _validate_title(raw.get("output"), source)

    if kind == "table":
        table = _required(raw, "table", source)
        if not _plain_int(table) or table not in (1, 2):
            _fail(source, "table", f"expected 1 or 2, got {table!r}")
        seed = _int_in(source, "seed", _required(raw, "seed", source), 0)
        n = raw.get("n")
        if n is None:
            n = 6 if table == 1 else 5
        else:
            n = _int_in(source, "n", n, 2)
        return Scenario(
            name=name, kind="table", source=str(source), engine=engine,
            table=table, n=n, seed=seed, title=title,
        )

    model_raw = _required(raw, "model", source)
    try:
        model = CommunicationModel(model_raw)
    except ValueError:
        known = ", ".join(sorted(m.value for m in CommunicationModel))
        _fail(source, "model", f"unknown communication model {model_raw!r}; known models: {known}")
    knowledge = None
    if raw.get("knowledge") is not None:
        try:
            knowledge = Knowledge(raw["knowledge"])
        except ValueError:
            known = ", ".join(sorted(k.value for k in Knowledge))
            _fail(
                source,
                "knowledge",
                f"unknown help level {raw['knowledge']!r}; known levels: {known}",
            )
    rounds = _required(raw, "rounds", source)
    if not _plain_int(rounds) or rounds < 1:
        _fail(source, "rounds", f"must be a positive integer, got {rounds!r}")
    seeds_raw = _required(raw, "seeds", source)
    if not isinstance(seeds_raw, list) or not seeds_raw:
        _fail(source, "seeds", f"expected a non-empty list of seeds, got {seeds_raw!r}")
    seeds = tuple(
        _int_in(source, f"seeds[{i}]", s, 0) for i, s in enumerate(seeds_raw)
    )
    graphs = _validate_graphs(_required(raw, "graphs", source), source)
    probes_raw = _required(raw, "probes", source)
    if not isinstance(probes_raw, list) or not probes_raw:
        _fail(source, "probes", f"expected a non-empty list of probes, got {probes_raw!r}")
    for i, probe in enumerate(probes_raw):
        if not isinstance(probe, str) or probe not in PROBES:
            _fail(
                source,
                f"probes[{i}]",
                f"unknown probe {probe!r}; known probes: {', '.join(sorted(PROBES))}",
            )
        if PROBES[probe].model is not model:
            _fail(
                source,
                f"probes[{i}]",
                f"probe {probe!r} runs under {PROBES[probe].model.value!r}, "
                f"not {model.value!r}",
            )
    inputs = _required(raw, "inputs", source)
    if not isinstance(inputs, str) or inputs not in INPUT_PATTERNS:
        _fail(
            source,
            "inputs",
            f"unknown input pattern {inputs!r}; known patterns: "
            f"{', '.join(sorted(INPUT_PATTERNS))}",
        )
    return Scenario(
        name=name, kind="grid", source=str(source), engine=engine,
        model=model, knowledge=knowledge, rounds=rounds, seeds=seeds,
        graphs=graphs, probes=tuple(probes_raw), inputs=inputs, title=title,
    )
