"""``repro.service`` — the experiment service over the sharded store.

Three modules, stdlib only:

* :mod:`repro.service.http` — the HTTP/1.1 layer: an incremental,
  segment-agnostic request parser, response framing, SSE framing;
* :mod:`repro.service.app` — :class:`ExperimentService` (the routes)
  and :func:`serve_async` (the orchestrator-embedding run mode behind
  ``python -m repro serve``);
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  ``http.client`` counterpart tests, CI, and benchmarks drive.

Attributes resolve lazily (PEP 562), matching :mod:`repro.store`.
"""

from __future__ import annotations

_EXPORTS = {
    # http
    "DEFAULT_MAX_BODY": "repro.service.http",
    "DEFAULT_MAX_HEAD": "repro.service.http",
    "HttpError": "repro.service.http",
    "Request": "repro.service.http",
    "RequestReader": "repro.service.http",
    "error_response": "repro.service.http",
    "json_response": "repro.service.http",
    "response_bytes": "repro.service.http",
    "sse_comment": "repro.service.http",
    "sse_event": "repro.service.http",
    "sse_headers": "repro.service.http",
    # app
    "DEFAULT_BACKLOG": "repro.service.app",
    "DEFAULT_PORT": "repro.service.app",
    "SERVICE_BACKLOG_ENV": "repro.service.app",
    "SERVICE_PORT_ENV": "repro.service.app",
    "ExperimentService": "repro.service.app",
    "publish_service_metrics": "repro.service.app",
    "serve": "repro.service.app",
    "serve_async": "repro.service.app",
    "service_backlog": "repro.service.app",
    "service_port": "repro.service.app",
    # client
    "ServiceClient": "repro.service.client",
    "ServiceError": "repro.service.client",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
