"""The experiment service: an asyncio HTTP API over the sharded store.

One :class:`ExperimentService` owns a listening socket and its own
queue/store handles over a scheduler root — the same
filesystem-coordination discipline every other process in the subsystem
uses, so the service composes freely with workers, orchestrators, and
the CLI operating on the same root.  Routes:

* ``POST /v1/runs`` — submit work: either a raw ``{"kind", "params"}``
  job or a bare scenario config (disambiguated by ``kind``: scenario
  configs say ``"table"``/``"grid"``, jobs say one of
  :data:`~repro.store.jobs.JOB_KINDS` — the two vocabularies are
  disjoint by construction).  A submission whose predicted document key
  is already in the store short-circuits to ``303 See Other``.
* ``GET /v1/runs/{id}`` — the job record, progress, heartbeat age.
* ``GET /v1/runs/{id}/events`` — live SSE feed (see
  :meth:`ExperimentService._stream_events`).
* ``GET /v1/results/{key}`` — canonical entry bytes straight off disk
  (:meth:`~repro.store.cache.ResultStore.get_bytes` — no re-encode),
  with ``ETag``/``If-None-Match`` conditional serving: result keys are
  content addresses, so the ETag *is* the key and entries are immutable.
* ``GET /v1/store/stats`` — :func:`~repro.store.jobs.store_status_payload`,
  byte-compatible with ``python -m repro store status --json``.
* ``GET /healthz`` — liveness, request counters, embedded-orchestrator
  stats when serving with one.

Everything that touches disk runs in the event loop's default thread
executor; handler coroutines themselves never block.  No handler spawns
tasks: an SSE stream lives entirely inside its connection's handler
coroutine, so a client disconnect unwinds the coroutine and leaves the
loop exactly as it found it — the test suite asserts this through
``asyncio.all_tasks()``.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
from typing import Any, Callable, Dict, Optional, Union

from repro.envflags import env_int
from repro.service.http import (
    DEFAULT_MAX_BODY,
    DEFAULT_MAX_HEAD,
    HttpError,
    Request,
    RequestReader,
    error_response,
    json_response,
    sse_comment,
    sse_event,
    sse_headers,
)
from repro.store.events import JobEventLog
from repro.store.jobs import (
    JOB_KINDS,
    expected_result_key,
    open_queue,
    open_store,
    store_status_payload,
)

#: Environment knobs for the listener (parsed via ``env_int`` — unset,
#: empty, unparsable, and out-of-range values fall back to the default).
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"
SERVICE_BACKLOG_ENV = "REPRO_SERVICE_BACKLOG"

#: Documented defaults behind the knobs.  Port 0 is legitimate — it
#: binds an ephemeral port, reported back via :attr:`ExperimentService.port`.
DEFAULT_PORT = 8765
DEFAULT_BACKLOG = 128

#: Scenario-config kinds, disjoint from JOB_KINDS by construction.
_SCENARIO_CONFIG_KINDS = ("table", "grid")

_RESULT_KEY_RE = re.compile(r"^[0-9a-f]{32}$")

#: Terminal job states (mirrors the scheduler's vocabulary).
_TERMINAL = ("done", "failed")


def service_port(default: int = DEFAULT_PORT) -> int:
    """The configured listener port, from ``REPRO_SERVICE_PORT=...``."""
    return env_int(SERVICE_PORT_ENV, default, minimum=0, maximum=65_535)


def service_backlog(default: int = DEFAULT_BACKLOG) -> int:
    """The configured accept backlog, from ``REPRO_SERVICE_BACKLOG=...``."""
    return env_int(SERVICE_BACKLOG_ENV, default, minimum=1)


def _etag_matches(header: Optional[str], key: str) -> bool:
    """RFC 9110 ``If-None-Match``, narrowed to our immutable entries:
    ``*`` matches anything on disk, and weak tags compare equal to
    strong ones (a byte-identical entry is the only thing a key can
    name)."""
    if header is None:
        return False
    if header.strip() == "*":
        return True
    for raw in header.split(","):
        tag = raw.strip()
        if tag.startswith("W/"):
            tag = tag[2:]
        if tag.strip('"') == key:
            return True
    return False


class ExperimentService:
    """The HTTP face of one scheduler root."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        queue=None,
        store=None,
        shards: Optional[int] = None,
        max_head: int = DEFAULT_MAX_HEAD,
        max_body: int = DEFAULT_MAX_BODY,
        poll_interval: float = 0.15,
        keepalive_interval: float = 15.0,
    ):
        self.root = os.fspath(root)
        self.store = store if store is not None else open_store(self.root)
        self.queue = queue if queue is not None else open_queue(self.root, shards=shards)
        self.events = JobEventLog(self.store.root)
        self.poll_interval = float(poll_interval)
        self.keepalive_interval = float(keepalive_interval)
        self.max_head = int(max_head)
        self.max_body = int(max_body)
        #: Embedded orchestrator (when serving with one); its live
        #: ``stats`` dict is surfaced in ``/healthz``.
        self.orchestrator = None
        self.counters: Dict[str, int] = {
            "requests": 0,
            "submitted": 0,
            "dedup_cached": 0,
            "results_served": 0,
            "results_not_modified": 0,
            "sse_streams": 0,
            "sse_events": 0,
            "errors": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------- #

    async def start(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        backlog: Optional[int] = None,
    ) -> "ExperimentService":
        """Bind and start accepting.  ``port=None`` defers to
        ``REPRO_SERVICE_PORT=...``; port 0 binds ephemerally and the
        real port is read back off the socket."""
        if port is None:
            port = service_port()
        if backlog is None:
            backlog = service_backlog()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, backlog=backlog
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() the service first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        host = self.host or "?"
        if ":" in host:  # IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    # -- connection loop ------------------------------------------------- #

    async def _handle_connection(self, reader, writer) -> None:
        parser = RequestReader(reader, max_head=self.max_head, max_body=self.max_body)
        try:
            while True:
                try:
                    request = await parser.read_request()
                except HttpError as exc:
                    self.counters["errors"] += 1
                    writer.write(error_response(exc, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                self.counters["requests"] += 1
                keep_alive = request.keep_alive
                try:
                    streamed = await self._route(request, reader, writer)
                except HttpError as exc:
                    self.counters["errors"] += 1
                    keep_alive = keep_alive and not exc.close
                    writer.write(error_response(exc, keep_alive=keep_alive))
                except Exception as exc:  # noqa: BLE001 - handler bug, not protocol
                    self.counters["errors"] += 1
                    writer.write(
                        error_response(
                            HttpError(500, f"internal error: {exc!r}"),
                            keep_alive=False,
                        )
                    )
                    keep_alive = False
                    streamed = False
                else:
                    if streamed:
                        # An SSE stream consumed the connection; its
                        # response advertised Connection: close.
                        break
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to clean up beyond the writer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing --------------------------------------------------------- #

    async def _route(self, request: Request, reader, writer) -> bool:
        """Dispatch one request; returns True when the handler streamed
        the response itself (SSE) and the connection is spent."""
        path = request.path
        if path == "/healthz":
            self._expect(request, "GET")
            writer.write(self._healthz(request))
            return False
        if path == "/v1/store/stats":
            self._expect(request, "GET")
            payload = await self._in_executor(
                store_status_payload, self.queue, self.store
            )
            writer.write(json_response(200, payload, keep_alive=request.keep_alive))
            return False
        if path == "/v1/runs":
            self._expect(request, "POST")
            writer.write(await self._submit(request))
            return False
        match = re.fullmatch(r"/v1/runs/([A-Za-z0-9_.-]+)", path)
        if match:
            self._expect(request, "GET")
            writer.write(await self._run_status(request, match.group(1)))
            return False
        match = re.fullmatch(r"/v1/runs/([A-Za-z0-9_.-]+)/events", path)
        if match:
            self._expect(request, "GET")
            await self._stream_events(request, match.group(1), reader, writer)
            return True
        match = re.fullmatch(r"/v1/results/([A-Za-z0-9_.-]+)", path)
        if match:
            self._expect(request, "GET")
            writer.write(await self._result(request, match.group(1)))
            return False
        raise HttpError(404, f"no route for {request.method} {path}")

    @staticmethod
    def _expect(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405,
                f"{request.method} not allowed on {request.path}",
                headers={"Allow": method},
            )

    @staticmethod
    async def _in_executor(fn: Callable, *args) -> Any:
        """Run one blocking (filesystem-bound) call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(None, fn, *args)

    # -- handlers -------------------------------------------------------- #

    def _healthz(self, request: Request) -> bytes:
        payload: Dict[str, Any] = {
            "status": "ok",
            "root": self.root,
            "counters": dict(self.counters),
            "orchestrator": (
                dict(self.orchestrator.stats) if self.orchestrator is not None else None
            ),
        }
        return json_response(200, payload, keep_alive=request.keep_alive)

    def _parse_submission(self, request: Request) -> Dict[str, Any]:
        """Normalize a POST body to ``{"kind", "params"}`` — accepting
        both the raw job form and a bare scenario config."""
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(422, "submission must be a JSON object")
        kind = body.get("kind")
        if kind in _SCENARIO_CONFIG_KINDS:
            # A scenario config, submitted directly.  Validation errors
            # are the user's (422 for schema violations, 400 for
            # anything else typed); the *validated, normalized* form
            # rides in the job record, same as CLI submission.
            scenario = self._validate_config(body)
            params: Dict[str, Any] = {"config": scenario.normalized()}
            if request.query.get("trace") in ("1", "true", "yes"):
                params["trace"] = True
            return {"kind": "scenario", "params": params}
        if kind in JOB_KINDS:
            params = body.get("params", {})
            if not isinstance(params, dict):
                raise HttpError(422, '"params" must be a JSON object')
            if kind == "scenario":
                config = params.get("config")
                if config is None:
                    raise HttpError(422, 'scenario jobs need params["config"]')
                scenario = self._validate_config(config)
                params = dict(params)
                params["config"] = scenario.normalized()
            return {"kind": kind, "params": params}
        raise HttpError(
            422,
            f"unknown kind {kind!r}; expected a job kind {list(JOB_KINDS)} "
            f"or a scenario config kind {list(_SCENARIO_CONFIG_KINDS)}",
        )

    @staticmethod
    def _validate_config(config: Any):
        from repro.scenarios import (
            ScenarioError,
            ScenarioSchemaError,
            validate_scenario,
        )

        try:
            return validate_scenario(config, source="http:POST /v1/runs")
        except ScenarioSchemaError as exc:
            raise HttpError(422, str(exc)) from exc
        except ScenarioError as exc:
            raise HttpError(400, str(exc)) from exc

    async def _submit(self, request: Request) -> bytes:
        job = self._parse_submission(request)
        kind, params = job["kind"], job["params"]
        key = expected_result_key(kind, params)
        if key is not None and await self._in_executor(
            self.store.__contains__, key
        ):
            self.counters["dedup_cached"] += 1
            location = f"/v1/results/{key}"
            return json_response(
                303,
                {"status": "cached", "result_key": key, "location": location},
                headers={"Location": location},
                keep_alive=request.keep_alive,
            )
        record = await self._in_executor(
            lambda: self.queue.submit(kind, params)
        )
        self.counters["submitted"] += 1
        location = f"/v1/runs/{record.id}"
        payload = record.to_dict()
        payload["links"] = {
            "self": location,
            "events": f"{location}/events",
            "expected_result": f"/v1/results/{key}" if key else None,
        }
        return json_response(
            202, payload, headers={"Location": location}, keep_alive=request.keep_alive
        )

    def _record_payload(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The status document of one job (blocking; run in executor)."""
        record = self.queue.get(job_id)
        if record is None:
            return None
        payload = record.to_dict()
        payload["heartbeat_age"] = self.queue.heartbeat_age(job_id)
        links = {"self": f"/v1/runs/{job_id}", "events": f"/v1/runs/{job_id}/events"}
        if record.status == "done" and record.result_key:
            links["result"] = f"/v1/results/{record.result_key}"
        payload["links"] = links
        return payload

    async def _run_status(self, request: Request, job_id: str) -> bytes:
        payload = await self._in_executor(self._record_payload, job_id)
        if payload is None:
            raise HttpError(404, f"no such run: {job_id}")
        return json_response(200, payload, keep_alive=request.keep_alive)

    async def _result(self, request: Request, key: str) -> bytes:
        if not _RESULT_KEY_RE.fullmatch(key):
            raise HttpError(404, f"no such result: {key!r} is not a result key")
        etag = f'"{key}"'
        if _etag_matches(request.header("if-none-match"), key):
            # Content-addressed entries are immutable: a matching tag
            # needs only an existence check, never a byte read.
            if await self._in_executor(self.store.__contains__, key):
                self.counters["results_not_modified"] += 1
                return json_response(
                    304,
                    {},
                    headers={"ETag": etag},
                    keep_alive=request.keep_alive,
                )
        raw = await self._in_executor(self.store.get_bytes, key)
        if raw is None:
            raise HttpError(404, f"no such result: {key}")
        self.counters["results_served"] += 1
        from repro.service.http import response_bytes

        return response_bytes(
            200,
            raw,
            headers={
                "Content-Type": "application/json; charset=utf-8",
                "ETag": etag,
                "Cache-Control": "public, max-age=31536000, immutable",
            },
            keep_alive=request.keep_alive,
        )

    # -- SSE ------------------------------------------------------------- #

    async def _stream_events(self, request, job_id: str, reader, writer) -> None:
        """The live feed of one run, as Server-Sent Events.

        Two species of event share the stream.  *Logged* events —
        ``progress`` updates and round-level ``trace`` metric snapshots,
        appended durably by whichever process runs the job — carry their
        log ids, so a client reconnecting with ``Last-Event-ID: n``
        resumes at ``n+1`` with no duplicates and no gaps.  *Synthesized*
        events — the opening ``snapshot`` of the job record, ``status``
        transitions observed while streaming, and the terminal ``end`` —
        are per-connection and carry **no** id, so they can never
        advance a client's resume cursor into skipping logged events.

        The stream lives entirely in this coroutine: polling the event
        log, watching the record, and watching the socket for client
        disconnect all interleave here, with no spawned tasks to leak.
        """
        payload = await self._in_executor(self._record_payload, job_id)
        if payload is None:
            raise HttpError(404, f"no such run: {job_id}")
        last_id = 0
        raw_resume = request.header("last-event-id")
        if raw_resume is not None:
            try:
                last_id = max(0, int(raw_resume))
            except ValueError:
                last_id = 0
        self.counters["sse_streams"] += 1
        writer.write(sse_headers(keep_alive=False))
        writer.write(sse_event(payload, event="snapshot"))
        await writer.drain()
        last_status = payload["status"]
        idle = 0.0
        while True:
            events = await self._in_executor(self.events.read, job_id, last_id)
            wrote = False
            for record in events:
                writer.write(
                    sse_event(
                        record["data"], event=record["event"], event_id=record["id"]
                    )
                )
                last_id = record["id"]
                self.counters["sse_events"] += 1
                wrote = True
            payload = await self._in_executor(self._record_payload, job_id)
            if payload is None:  # record GC'd mid-stream: treat as gone
                writer.write(sse_event({"status": "gone"}, event="end"))
                await writer.drain()
                return
            if payload["status"] != last_status:
                last_status = payload["status"]
                writer.write(sse_event(payload, event="status"))
                wrote = True
            if payload["status"] in _TERMINAL:
                # Drain anything the runner logged between our read and
                # the terminal transition, then close the feed.
                for record in await self._in_executor(
                    self.events.read, job_id, last_id
                ):
                    writer.write(
                        sse_event(
                            record["data"], event=record["event"], event_id=record["id"]
                        )
                    )
                    last_id = record["id"]
                    self.counters["sse_events"] += 1
                writer.write(sse_event(payload, event="end"))
                await writer.drain()
                return
            if wrote:
                idle = 0.0
                await writer.drain()
            elif idle >= self.keepalive_interval:
                idle = 0.0
                writer.write(sse_comment())
                await writer.drain()
            # Sleep on the *read* side of the socket: an SSE client
            # sends nothing more, so data means noise we ignore and EOF
            # means the client hung up — the prompt disconnect signal.
            try:
                data = await asyncio.wait_for(
                    reader.read(4096), timeout=self.poll_interval
                )
                if not data:
                    return  # client disconnected
            except asyncio.TimeoutError:
                idle += self.poll_interval
            if writer.is_closing():
                return


def publish_service_metrics(registry, counters: Dict[str, int]) -> None:
    """Fold service request counters into a ``MetricsRegistry``
    (``service_requests``, ``service_results_served``, ...) — the same
    convention as the orchestrator's and engine's publishers."""
    for name, value in counters.items():
        registry.counter(f"service_{name}").inc(int(value))


# -- embedded serve mode -------------------------------------------------- #


async def serve_async(
    root: Union[str, os.PathLike],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    backlog: Optional[int] = None,
    shards: Optional[int] = None,
    pools: int = 1,
    pool_workers: int = 1,
    window: Optional[int] = None,
    announce: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> None:
    """Serve one scheduler root until cancelled.

    With ``pools >= 1`` an :class:`~repro.store.orchestrator.Orchestrator`
    runs *in the same event loop* (``idle_exit=False`` — it naps when the
    queue drains instead of exiting), so a single ``python -m repro
    serve`` process both accepts submissions and executes them.
    ``pools=0`` serves the API only — submissions then wait for external
    workers on the same root.  ``announce`` receives one dict with the
    bound address once the socket is live (the CLI prints it as JSON so
    scripts can discover an ephemeral port).
    """
    service = ExperimentService(root, shards=shards)
    await service.start(host=host, port=port, backlog=backlog)
    orchestrator_task = None
    if pools >= 1:
        from repro.store.orchestrator import Orchestrator

        orchestrator = Orchestrator(
            root,
            shards=shards,
            pools=pools,
            pool_workers=pool_workers,
            window=window,
            idle_exit=False,
        )
        service.orchestrator = orchestrator
        orchestrator_task = asyncio.ensure_future(orchestrator.run())
    if announce is not None:
        announce(
            {
                "event": "serving",
                "host": service.host,
                "port": service.port,
                "root": service.root,
                "pools": pools,
                "pid": os.getpid(),
            }
        )
    # SIGTERM/SIGINT must run the shutdown path below, not kill the
    # process mid-flight: the embedded orchestrator owns process pools,
    # and an abrupt exit orphans their fork children (`terminate()`ing
    # a serve subprocess used to leak one worker per pool).
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    handled_signals = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            handled_signals.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix loop or nested loop: fall back to default
    serve_task = asyncio.ensure_future(service.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        for signum in handled_signals:
            loop.remove_signal_handler(signum)
        await service.close()
        if orchestrator_task is not None:
            # Cancelling lets Orchestrator.run()'s own finally block
            # drain in-flight dispatches and shut its pools down.
            orchestrator_task.cancel()
            try:
                await orchestrator_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass


def serve(root, **kwargs) -> int:
    """Blocking entry point for ``python -m repro serve``; returns an
    exit code (Ctrl-C is a clean shutdown, not a traceback)."""
    try:
        asyncio.run(serve_async(root, **kwargs))
    except KeyboardInterrupt:
        return 0
    return 0
