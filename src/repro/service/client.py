"""A thin stdlib client for the experiment service.

:class:`ServiceClient` wraps ``http.client`` — blocking, synchronous,
dependency-free — because that is what the callers look like: test
suites, CI scripts, benchmark drivers, and notebook cells that submit a
run and wait for its document.  One persistent keep-alive connection is
reused across calls and transparently reopened when the server drops it.

The client speaks exactly the service's API:

* :meth:`submit` posts a job or scenario config and returns the parsed
  response (a ``303`` cached short-circuit and a ``202`` accepted record
  are both normal outcomes, distinguished by ``"status"``);
* :meth:`wait` polls a run to a terminal state;
* :meth:`result_bytes` fetches canonical entry bytes, with optional
  conditional ``If-None-Match`` revalidation (``304`` returns ``None``);
* :meth:`events` generates the run's SSE feed — each yielded dict is one
  event, ids included, so a caller can resume after a disconnect by
  passing the last id it saw;
* :meth:`run` is the one-call convenience: submit, wait, fetch bytes.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple


class ServiceError(Exception):
    """An error response from the service, with its parsed body."""

    def __init__(self, status: int, payload: Any):
        message = payload
        if isinstance(payload, dict):
            message = payload.get("error", {}).get("message", payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """A persistent-connection client bound to one service address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -------------------------------------------------------- #

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request over the persistent connection, retried once on a
        dropped keep-alive socket (the server is allowed to close an
        idle connection between our calls)."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
                payload = response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
                continue
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                payload,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        ok: Tuple[int, ...] = (200,),
    ) -> Any:
        encoded = None
        headers = {}
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, _, payload = self._request(method, path, body=encoded, headers=headers)
        parsed = json.loads(payload.decode("utf-8")) if payload else None
        if status not in ok:
            raise ServiceError(status, parsed)
        return parsed

    # -- API ------------------------------------------------------------- #

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def store_stats(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/store/stats")

    def submit(self, job: Dict[str, Any], trace: bool = False) -> Dict[str, Any]:
        """Submit a raw job (``{"kind", "params"}``) or a bare scenario
        config.  Returns the ``202`` job record (``status: "queued"`` or
        later) or the ``303`` cache hit (``status: "cached"``, with its
        ``result_key``)."""
        path = "/v1/runs" + ("?trace=1" if trace else "")
        return self._json("POST", path, body=job, ok=(202, 303))

    def run_status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/runs/{job_id}")

    def result_bytes(self, key: str, etag: Optional[str] = None) -> Optional[bytes]:
        """The canonical entry bytes of one result key; ``None`` means
        the conditional request revalidated (``304 Not Modified``)."""
        headers = {}
        if etag is not None:
            headers["If-None-Match"] = etag if etag.startswith('"') else f'"{etag}"'
        status, _, payload = self._request(
            "GET", f"/v1/results/{key}", headers=headers
        )
        if status == 304:
            return None
        if status != 200:
            parsed = json.loads(payload.decode("utf-8")) if payload else None
            raise ServiceError(status, parsed)
        return payload

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll a run until it is ``done`` or ``failed``."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.run_status(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(poll)

    def run(self, job: Dict[str, Any], timeout: float = 120.0) -> bytes:
        """Submit, wait, fetch: the document bytes of one job — whether
        it was freshly computed or served straight from the store."""
        outcome = self.submit(job)
        if outcome.get("status") == "cached":
            result = self.result_bytes(outcome["result_key"])
            assert result is not None
            return result
        record = self.wait(outcome["id"], timeout=timeout)
        if record["status"] != "done":
            raise ServiceError(500, {"error": {"message": record.get("error")}})
        result = self.result_bytes(record["result_key"])
        assert result is not None
        return result

    # -- SSE ------------------------------------------------------------- #

    def events(
        self, job_id: str, last_event_id: int = 0, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, Any]]:
        """Generate the run's SSE feed as parsed events.

        Each yielded dict has ``event``, ``data`` (JSON-decoded), and
        ``id`` (``None`` for the service's synthesized per-connection
        events).  The generator ends when the service closes the feed —
        normally right after the terminal ``end`` event.  Uses its own
        connection: an SSE response has no Content-Length, so it cannot
        share the keep-alive socket.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )
        try:
            headers = {"Accept": "text/event-stream"}
            if last_event_id:
                headers["Last-Event-ID"] = str(last_event_id)
            conn.request("GET", f"/v1/runs/{job_id}/events", headers=headers)
            response = conn.getresponse()
            if response.status != 200:
                payload = response.read()
                parsed = json.loads(payload.decode("utf-8")) if payload else None
                raise ServiceError(response.status, parsed)
            event: Dict[str, Any] = {"event": "message", "data": None, "id": None}
            data_lines = []
            while True:
                raw = response.readline()
                if not raw:
                    return  # stream closed
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if data_lines:
                        event["data"] = json.loads("\n".join(data_lines))
                        yield event
                    event = {"event": "message", "data": None, "id": None}
                    data_lines = []
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                name, _, value = line.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if name == "event":
                    event["event"] = value
                elif name == "id":
                    try:
                        event["id"] = int(value)
                    except ValueError:
                        event["id"] = None
                elif name == "data":
                    data_lines.append(value)
        finally:
            conn.close()
