"""A small, tested HTTP/1.1 layer for the experiment service.

The repository takes no new dependencies — the service rides
``asyncio.start_server`` and this module supplies the missing pieces: an
incremental request parser that is honest about TCP (heads and bodies
arrive in arbitrary segments, several pipelined requests may share one
segment), response framing with the handful of status codes the API
uses, and Server-Sent-Events framing for the live run feed.

The parser is deliberately narrow.  It speaks exactly the HTTP the
service's clients emit — request line, header block, optional
``Content-Length`` body, keep-alive — and rejects everything else with
a precise status: an oversized head is ``431``, an oversized body
``413``, chunked transfer encoding ``501``, and any malformed framing
``400``.  Narrow is a feature here: every accepted byte sequence has one
meaning, and the error paths are enumerable enough to test one by one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, unquote, urlsplit

#: Largest request head (request line + headers) the reader accepts.
DEFAULT_MAX_HEAD = 16_384

#: Largest request body the reader accepts (scenario configs are small;
#: 4 MiB leaves generous headroom without inviting abuse).
DEFAULT_MAX_BODY = 4 * 1024 * 1024

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    303: "See Other",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Content Too Large",
    422: "Unprocessable Content",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol- or routing-level failure with a definite status code.

    Raised by the parser (400/413/431/501) and by route handlers
    (404/405/422/...); the connection loop turns it into a JSON error
    response.  ``close`` marks errors after which the connection state
    is unknowable (a half-parsed head) and must not be reused.
    """

    def __init__(self, status: int, message: str, close: bool = False,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.close = close
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    version: str
    headers: Dict[str, str]
    body: bytes = b""
    keep_alive: bool = True

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def json(self) -> Any:
        """The body decoded as JSON; malformed bodies are a 400."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


_TOKEN = frozenset(
    "!#$%&'*+-.^_`|~0123456789"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
)


def _parse_head(head: bytes) -> Request:
    """Parse one request head (everything before the blank line)."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head", close=True) from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {lines[0]!r}", close=True)
    method, target, version = parts
    if not method or not all(c in _TOKEN for c in method):
        raise HttpError(400, f"malformed method: {method!r}", close=True)
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version: {version!r}", close=True)
    if not target.startswith("/"):
        raise HttpError(400, f"unsupported request target: {target!r}", close=True)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or not all(
            c in _TOKEN for c in name
        ):
            raise HttpError(400, f"malformed header line: {line!r}", close=True)
        headers[name.lower()] = value.strip()
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    return Request(
        method=method,
        target=target,
        path=unquote(split.path),
        query=query,
        version=version,
        headers=headers,
        keep_alive=keep_alive,
    )


class RequestReader:
    """Incremental HTTP/1.1 request parsing over an asyncio stream.

    One instance per connection: bytes beyond the current request stay
    in the internal buffer, which is exactly what makes keep-alive and
    pipelining work — and what makes the parser indifferent to how the
    kernel segmented the bytes (the partial-read tests feed one byte at
    a time).  ``read_request`` returns ``None`` on a clean EOF between
    requests, and raises :class:`HttpError` for every protocol failure.
    """

    def __init__(self, reader, max_head: int = DEFAULT_MAX_HEAD,
                 max_body: int = DEFAULT_MAX_BODY):
        self._reader = reader
        self._buffer = bytearray()
        self.max_head = int(max_head)
        self.max_body = int(max_body)

    async def _fill(self) -> bool:
        """Pull one more segment off the wire; ``False`` means EOF."""
        chunk = await self._reader.read(65_536)
        if not chunk:
            return False
        self._buffer.extend(chunk)
        return True

    async def read_request(self) -> Optional[Request]:
        # -- head: everything up to the first blank line ----------------- #
        while True:
            idx = self._buffer.find(b"\r\n\r\n")
            if idx >= 0:
                break
            if len(self._buffer) > self.max_head:
                raise HttpError(
                    431,
                    f"request head exceeds {self.max_head} bytes",
                    close=True,
                )
            if not await self._fill():
                if self._buffer:
                    raise HttpError(400, "connection closed mid-head", close=True)
                return None
        if idx > self.max_head:
            raise HttpError(
                431, f"request head exceeds {self.max_head} bytes", close=True
            )
        head = bytes(self._buffer[:idx])
        del self._buffer[: idx + 4]
        request = _parse_head(head)

        # -- body: Content-Length only; chunked is out of scope ---------- #
        if "transfer-encoding" in request.headers:
            raise HttpError(
                501, "chunked transfer encoding is not supported", close=True
            )
        raw_length = request.headers.get("content-length")
        if raw_length is None:
            return request
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(
                400, f"malformed Content-Length: {raw_length!r}", close=True
            ) from None
        if length < 0:
            raise HttpError(
                400, f"malformed Content-Length: {raw_length!r}", close=True
            )
        if length > self.max_body:
            raise HttpError(
                413, f"request body exceeds {self.max_body} bytes", close=True
            )
        while len(self._buffer) < length:
            if not await self._fill():
                raise HttpError(400, "connection closed mid-body", close=True)
        request.body = bytes(self._buffer[:length])
        del self._buffer[:length]
        return request


# -- response framing ---------------------------------------------------- #


def response_bytes(
    status: int,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Frame one complete HTTP/1.1 response.

    ``Content-Length`` is always emitted (304 included — it then
    describes the entity that *would* have been sent, and more
    importantly keeps connection reuse unambiguous), so a keep-alive
    client always knows where the response ends.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    emitted = {"content-length", "connection"}
    for name, value in (headers or {}).items():
        if name.lower() in emitted:
            continue
        lines.append(f"{name}: {value}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Frame a JSON response (sorted keys — same discipline as every
    other machine-readable artifact in the repository)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    merged = {"Content-Type": "application/json; charset=utf-8"}
    merged.update(headers or {})
    return response_bytes(status, body, headers=merged, keep_alive=keep_alive)


def error_response(error: HttpError, keep_alive: bool = True) -> bytes:
    """The uniform JSON error body every failure route emits."""
    return json_response(
        error.status,
        {"error": {"status": error.status, "message": error.message}},
        headers=error.headers,
        keep_alive=keep_alive and not error.close,
    )


# -- Server-Sent Events framing ------------------------------------------ #


def sse_headers(keep_alive: bool = False) -> bytes:
    """The response head that opens an SSE stream (no Content-Length —
    the stream ends when the connection does)."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: " + ("keep-alive" if keep_alive else "close") + "\r\n"
        "\r\n"
    ).encode("latin-1")


def sse_event(
    data: Any, event: Optional[str] = None, event_id: Optional[int] = None
) -> bytes:
    """Frame one SSE event.  ``data`` is JSON-encoded (sorted keys);
    only events with an ``event_id`` advance a client's
    ``Last-Event-ID`` — id-less events are synthesized per-connection
    (snapshots, status transitions) and must never be replayed."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    encoded = json.dumps(data, sort_keys=True)
    for chunk in encoded.split("\n"):  # JSON never embeds raw newlines,
        lines.append(f"data: {chunk}")  # but the framing stays general
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def sse_comment(text: str = "keepalive") -> bytes:
    """An SSE comment line — the stream's heartbeat; clients ignore it,
    proxies and dead-peer detection see live bytes."""
    return f": {text}\n\n".encode("utf-8")
