"""``repro.store`` — the durable experiment subsystem.

Three layers, bottom-up:

* :mod:`repro.store.atomic` — crash-safe filesystem primitives
  (atomic replace-writes, line-atomic appends, temp-file sweeping);
* :mod:`repro.store.snapshot` — the versioned execution snapshot codec
  and checkpoint/resume (:func:`snapshot_execution`,
  :func:`restore_execution`, :class:`Checkpointer`);
* :mod:`repro.store.cache` + :mod:`repro.store.scheduler` +
  :mod:`repro.store.jobs` — the content-addressed result store, the
  lock-file-lease job queue, and the runners that bind the queue to the
  repository's workloads (tables, certificates, sweeps);
* :mod:`repro.store.shard` + :mod:`repro.store.orchestrator` — the
  consistent-hash sharded queue (manifest-agreed layout, per-shard
  cursors) and the asyncio dispatcher that keeps N process pools
  saturated from it.

Attributes resolve lazily (PEP 562): the job runners import the analysis
layer, which itself leans on :mod:`repro.store.atomic`, so eagerly
importing everything here would be a cycle.  ``from repro.store import
ResultStore`` works either way.
"""

from __future__ import annotations

_EXPORTS = {
    # atomic
    "atomic_write_bytes": "repro.store.atomic",
    "atomic_write_text": "repro.store.atomic",
    "append_line": "repro.store.atomic",
    "sweep_temp_files": "repro.store.atomic",
    # snapshot
    "SNAPSHOT_CODEC_VERSION": "repro.store.snapshot",
    "Snapshot": "repro.store.snapshot",
    "SnapshotError": "repro.store.snapshot",
    "SnapshotVersionError": "repro.store.snapshot",
    "SnapshotIntegrityError": "repro.store.snapshot",
    "Checkpointer": "repro.store.snapshot",
    "encode_states": "repro.store.snapshot",
    "decode_states": "repro.store.snapshot",
    "copy_states": "repro.store.snapshot",
    "snapshot_execution": "repro.store.snapshot",
    "restore_execution": "repro.store.snapshot",
    "resume_execution": "repro.store.snapshot",
    "write_snapshot": "repro.store.snapshot",
    "read_snapshot": "repro.store.snapshot",
    # cache
    "ResultStore": "repro.store.cache",
    "result_key": "repro.store.cache",
    "canonical_params": "repro.store.cache",
    "default_store": "repro.store.cache",
    "resolve_store": "repro.store.cache",
    "fetch_or_compute": "repro.store.cache",
    "fetch_or_compute_bytes": "repro.store.cache",
    "STORE_ENV": "repro.store.cache",
    # events
    "JobEventLog": "repro.store.events",
    "MAX_EVENTS_PER_JOB": "repro.store.events",
    # scheduler
    "JobQueue": "repro.store.scheduler",
    "JobRecord": "repro.store.scheduler",
    "LeaseBroken": "repro.store.scheduler",
    "job_id_for": "repro.store.scheduler",
    "default_heartbeat_seconds": "repro.store.scheduler",
    "default_lease_ttl": "repro.store.scheduler",
    # shard
    "ShardedJobQueue": "repro.store.shard",
    "ShardLayoutError": "repro.store.shard",
    "shard_for": "repro.store.shard",
    # orchestrator
    "Orchestrator": "repro.store.orchestrator",
    "orchestrate": "repro.store.orchestrator",
    "publish_orchestrator_metrics": "repro.store.orchestrator",
    # jobs
    "run_worker": "repro.store.jobs",
    "run_job": "repro.store.jobs",
    "open_store": "repro.store.jobs",
    "open_queue": "repro.store.jobs",
    "document_key": "repro.store.jobs",
    "table_document": "repro.store.jobs",
    "noop_document": "repro.store.jobs",
    "expected_result_key": "repro.store.jobs",
    "store_status_payload": "repro.store.jobs",
    "JOB_KINDS": "repro.store.jobs",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.store' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
