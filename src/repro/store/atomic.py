"""Atomic filesystem writes: a killed process never leaves a torn file.

Every durable artifact in this repository — snapshots, cached results,
job records, traces, certificates — goes through :func:`atomic_write_bytes`
or :func:`atomic_write_text`.  The recipe is the standard POSIX one:
write the full payload to a ``tempfile`` in the *destination directory*
(same filesystem, so the final step cannot degrade to a copy), flush,
``fsync``, then ``os.replace`` onto the target name.  Readers see either
the old bytes or the new bytes, never a prefix; a ``kill -9`` between any
two instructions leaves at worst an orphaned ``.tmp-*`` file, which
:func:`sweep_temp_files` (and ``python -m repro store gc``) reclaims.

This module deliberately imports nothing from the rest of the package:
the engine's trace exporter and the certificate writer route through it,
and they sit *below* the store in the import graph.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Union

#: Prefix of the temporary files the writers stage payloads in; the gc
#: sweeper only ever touches names carrying it.
TMP_PREFIX = ".tmp-"


def atomic_write_bytes(path: Union[str, os.PathLike], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (all-or-nothing)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=TMP_PREFIX, dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: Union[str, os.PathLike], text: str, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically (all-or-nothing)."""
    atomic_write_bytes(path, text.encode(encoding))


def append_line(path: Union[str, os.PathLike], line: str) -> None:
    """Append one newline-terminated line with a single ``O_APPEND`` write.

    POSIX guarantees small ``O_APPEND`` writes land contiguously, so a
    journal appended this way is torn at worst at a line boundary —
    readers skip a trailing partial line, never mid-record garbage.
    """
    if not line.endswith("\n"):
        line += "\n"
    fd = os.open(os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def sweep_temp_files(directory: Union[str, os.PathLike]) -> List[str]:
    """Delete orphaned ``.tmp-*`` staging files under ``directory``
    (recursively); returns the paths removed.  Safe to run while writers
    are live only if none is mid-write in that tree — the store's gc runs
    it on roots it owns."""
    removed: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(os.fspath(directory)):
        for name in filenames:
            if name.startswith(TMP_PREFIX):
                victim = os.path.join(dirpath, name)
                try:
                    os.unlink(victim)
                    removed.append(victim)
                except OSError:
                    pass
    return removed
