"""The content-addressed result store: compute once, serve from disk.

Every expensive artifact this repository regenerates — a Table 1/2 cell,
a proof-invariant sweep check, a whole certificate document — is a pure
function of its parameters and the engine generation.  The
:class:`ResultStore` persists those results on disk keyed by
:func:`result_key`, a SHA-256 over the canonical JSON of ``(kind,
params, ENGINE_VERSION)`` — the same deterministic-identity discipline
as the PR-3/PR-4 provenance fingerprints and memo caches, extended
across process lifetimes.  A warm store turns ``reproduce_table1`` into
16 file reads (``benchmarks/bench_store.py`` holds the ≥5× bar).

Durability discipline:

* **Atomic writes.**  Entries are staged with
  :func:`~repro.store.atomic.atomic_write_text`; a ``kill -9`` leaves
  either the old entry or the new one, never a torn file.
* **Corruption heals, never crashes.**  Every entry embeds a SHA-256 of
  its payload.  On read, undecodable JSON, a key mismatch, or a digest
  mismatch quarantines the entry (it is deleted and counted in
  ``stats()['healed']``) and reports a miss — the caller recomputes and
  re-persists.  A flipped bit costs one recomputation, not an exception.
* **Deterministic bytes.**  Entries carry no timestamps and serialize
  with sorted keys, so two runs that compute the same result write the
  same bytes — which is what makes the kill/resume scenario's
  byte-identity assertion possible.

Keys version with the engine: a new ``ENGINE_VERSION`` changes every
key, so stale generations are never served (``gc(prune_versions=True)``
reclaims their files).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.engine import ENGINE_VERSION
from repro.envflags import env_path
from repro.store.atomic import atomic_write_text, sweep_temp_files
from repro.store.snapshot import SNAPSHOT_CODEC_VERSION

#: Environment variable naming a store root that every harness entry
#: point (tables, sweeps, certificates, the CLI) consults by default.
STORE_ENV = "REPRO_STORE"


def canonical_params(params: Dict[str, Any]) -> str:
    """Canonical JSON for a parameter dict (sorted keys, no whitespace)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)


def result_key(kind: str, params: Dict[str, Any], engine_version: str = ENGINE_VERSION) -> str:
    """The content address of one result: 32 hex chars of SHA-256 over
    the canonical ``(kind, params, engine_version)`` triple."""
    payload = "\x1f".join([kind, engine_version, canonical_params(params)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class ResultStore:
    """An on-disk map from :func:`result_key` to a JSON payload.

    ``root`` is created on first use.  Entries live two directory levels
    deep (``results/<key[:2]>/<key>.json``) so large stores don't stack
    thousands of files in one directory; a newline-delimited journal
    (``journal.jsonl``, append-only, line-atomic) records every put for
    post-mortem inspection.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = os.fspath(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.healed = 0

    # -- layout --------------------------------------------------------- #

    @property
    def results_dir(self) -> str:
        return os.path.join(self.root, "results")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, "journal.jsonl")

    def entry_path(self, key: str) -> str:
        return os.path.join(self.results_dir, key[:2], f"{key}.json")

    def _ensure_dir(self, path: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)

    # -- the map -------------------------------------------------------- #

    def _read_entry(self, key: str) -> Optional[Tuple[bytes, Dict[str, Any]]]:
        """The shared read path of :meth:`get` and :meth:`get_bytes`:
        raw entry bytes plus the digest-verified payload, or ``None``.

        A corrupt entry — unreadable, undecodable, mis-keyed, or failing
        its digest — is quarantined (deleted) and reported as a miss, so
        callers always recompute their way back to a healthy store.
        """
        path = self.entry_path(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            self.misses += 1
            return None
        payload = self._validate(entry, key)
        if payload is None:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return raw, payload

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` (corrupt entries
        quarantine and read as misses — see :meth:`_read_entry`)."""
        entry = self._read_entry(key)
        return None if entry is None else entry[1]

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The *raw entry bytes* stored under ``key``, or ``None``.

        The zero-re-encode read path: the bytes returned are exactly the
        deterministic file contents :meth:`put` wrote (envelope included),
        digest-verified on the way out — what the experiment service
        serves for ``GET /v1/results/{key}`` so warm traffic never pays a
        JSON round-trip.  Corruption quarantines and reads as a miss,
        exactly like :meth:`get` (the two share :meth:`_read_entry`).
        """
        entry = self._read_entry(key)
        return None if entry is None else entry[0]

    def put(self, key: str, payload: Dict[str, Any], kind: str = "",
            params: Optional[Dict[str, Any]] = None) -> None:
        """Persist ``payload`` under ``key`` (atomic, deterministic bytes)."""
        entry = {
            "key": key,
            "kind": kind,
            "params": params or {},
            "engine_version": ENGINE_VERSION,
            "snapshot_codec": SNAPSHOT_CODEC_VERSION,
            "payload": payload,
            "payload_sha256": self._digest(payload),
        }
        path = self.entry_path(key)
        self._ensure_dir(path)
        atomic_write_text(path, json.dumps(entry, sort_keys=True, indent=1))
        self._journal({"op": "put", "key": key, "kind": kind})
        self.puts += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry (e.g. its payload failed to decode downstream)."""
        try:
            os.unlink(self.entry_path(key))
            self._journal({"op": "invalidate", "key": key})
            return True
        except OSError:
            return False

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.entry_path(key))

    # -- integrity ------------------------------------------------------ #

    @staticmethod
    def _digest(payload: Any) -> str:
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()

    def _validate(self, entry: Any, key: str) -> Optional[Dict[str, Any]]:
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        if entry.get("key") != key:
            return None
        if entry.get("payload_sha256") != self._digest(entry["payload"]):
            return None
        return entry["payload"]

    def _quarantine(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced or unwritable
            pass
        self.healed += 1
        self._journal({"op": "heal", "path": os.path.basename(path)})

    def _journal(self, record: Dict[str, Any]) -> None:
        from repro.store.atomic import append_line

        try:
            os.makedirs(self.root, exist_ok=True)
            append_line(self.journal_path, json.dumps(record, sort_keys=True))
        except OSError:  # pragma: no cover - journal is best-effort
            pass

    # -- maintenance ---------------------------------------------------- #

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(key, entry)`` for every readable entry file."""
        results = self.results_dir
        if not os.path.isdir(results):
            return
        for shard in sorted(os.listdir(results)):
            shard_dir = os.path.join(results, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                key = name[: -len(".json")]
                try:
                    with open(os.path.join(shard_dir, name), "r", encoding="utf-8") as fh:
                        yield key, json.load(fh)
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    continue

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "healed": self.healed,
            "entries": len(self),
        }

    def gc(self, prune_versions: bool = True) -> Dict[str, int]:
        """Reclaim junk: orphaned temp files, corrupt entries, and (by
        default) entries written by other engine generations or under an
        older snapshot codec (pre-quotient entries lack the
        ``snapshot_codec`` stamp entirely and are pruned too).  Returns
        counts of what was removed."""
        removed_tmp = len(sweep_temp_files(self.root)) if os.path.isdir(self.root) else 0
        removed_corrupt = 0
        removed_stale = 0
        removed_codec = 0
        results = self.results_dir
        if os.path.isdir(results):
            for shard in sorted(os.listdir(results)):
                shard_dir = os.path.join(results, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if not name.endswith(".json"):
                        continue
                    path = os.path.join(shard_dir, name)
                    key = name[: -len(".json")]
                    try:
                        with open(path, "r", encoding="utf-8") as fh:
                            entry = json.load(fh)
                    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                        self._quarantine(path)
                        removed_corrupt += 1
                        continue
                    if self._validate(entry, key) is None:
                        self._quarantine(path)
                        removed_corrupt += 1
                    elif prune_versions and entry.get("engine_version") != ENGINE_VERSION:
                        try:
                            os.unlink(path)
                            removed_stale += 1
                        except OSError:  # pragma: no cover
                            pass
                    elif (
                        prune_versions
                        and entry.get("snapshot_codec") != SNAPSHOT_CODEC_VERSION
                    ):
                        try:
                            os.unlink(path)
                            removed_codec += 1
                        except OSError:  # pragma: no cover
                            pass
        return {
            "temp_files": removed_tmp,
            "corrupt_entries": removed_corrupt,
            "stale_versions": removed_stale,
            "stale_codecs": removed_codec,
        }

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, {self.hits} hits, {self.misses} misses)"


# ---------------------------------------------------------------------- #
# resolution and the fetch-or-compute idiom
# ---------------------------------------------------------------------- #

def default_store() -> Optional[ResultStore]:
    """The store named by ``REPRO_STORE`` in the environment, or ``None``.

    This is what every harness entry point falls back to when no explicit
    ``store=`` argument is given, so exporting ``REPRO_STORE=/path`` makes
    tables, sweeps, and certificates durable without code changes.
    Empty or whitespace-only values mean "no store", via the shared
    :func:`repro.envflags.env_path` reading.
    """
    root = env_path(STORE_ENV)
    return ResultStore(root) if root else None


def resolve_store(store: Union[None, str, os.PathLike, ResultStore]) -> Optional[ResultStore]:
    """Normalize a ``store=`` argument: ``None`` defers to the
    environment, a path opens a store there, a store passes through."""
    if store is None:
        return default_store()
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)


def fetch_or_compute(
    store: Optional[ResultStore],
    kind: str,
    params: Dict[str, Any],
    compute: Callable[[], Any],
    encode: Callable[[Any], Dict[str, Any]],
    decode: Callable[[Dict[str, Any]], Any],
) -> Any:
    """The store's one consumption pattern: serve the cached result for
    ``(kind, params)`` if present and decodable, else compute, persist,
    and return.  With ``store=None`` this is just ``compute()``."""
    if store is None:
        return compute()
    key = result_key(kind, params)
    payload = store.get(key)
    if payload is not None:
        try:
            return decode(payload)
        except Exception:
            # A payload the current decoder rejects is as good as corrupt.
            store.invalidate(key)
            store.healed += 1
    value = compute()
    store.put(key, encode(value), kind=kind, params=params)
    return value


def fetch_or_compute_bytes(
    store: ResultStore,
    kind: str,
    params: Dict[str, Any],
    compute: Callable[[], Any],
    encode: Callable[[Any], Dict[str, Any]],
) -> bytes:
    """:func:`fetch_or_compute` for callers that only need *bytes*.

    A warm hit is one digest-checked file read (:meth:`ResultStore.get_bytes`)
    — no JSON decode of the payload, no re-encode.  A miss computes,
    persists, and returns the exact bytes now on disk, so the caller's
    view is always byte-identical to what every later hit will serve.
    Unlike :func:`fetch_or_compute` this requires a store: entry bytes
    only exist on disk.
    """
    key = result_key(kind, params)
    raw = store.get_bytes(key)
    if raw is not None:
        return raw
    store.put(key, encode(compute()), kind=kind, params=params)
    raw = store.get_bytes(key)
    if raw is None:  # pragma: no cover - put/read race with a deleter
        raise RuntimeError(f"store entry {key} vanished immediately after put")
    return raw
