"""Per-job event logs: the durable feed behind live run watching.

The experiment service streams a run's life over SSE — progress updates
as units finish, round-level tracer metric snapshots while they compute
— and an SSE stream must survive reconnects: a client that comes back
with ``Last-Event-ID: 17`` expects event 18 next, no duplicates, no
gaps.  That contract needs a durable, ordered record of what was already
emitted, which is exactly what a :class:`JobEventLog` is: one
append-only JSONL file per job under ``root/events/``, each line a
``{"id", "event", "data"}`` record with ids dense and increasing from 1.

Writers are the job runners (:mod:`repro.store.jobs`) — whichever
process they live in, a worker loop or an orchestrator pool child —
appending through the same line-atomic ``O_APPEND`` primitive as the
store journal, so a line is torn at worst at a record boundary and
readers simply skip a trailing partial line.  Readers are the service's
SSE handlers, polling :meth:`JobEventLog.read` with the last id they
delivered.

Ids are assigned by counting: a writer's first append for a job counts
the lines already on disk and continues from there.  Exactly one runner
holds a job's lease at a time (the scheduler's claim discipline), so
concurrent writers on one job's log don't happen in healthy operation;
a retried job appends after its predecessor's events with strictly
larger ids, which is what lets a watcher of the first attempt resume
into the second.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Union

from repro.store.atomic import append_line

#: Subdirectory of a store root holding the per-job event files.
EVENTS_DIR = "events"

#: Hard per-job cap a well-behaved writer should respect (the scenario
#: runner's round-level trace feed checks it): beyond this, appends are
#: dropped rather than letting one chatty job grow without bound.
MAX_EVENTS_PER_JOB = 10_000


class JobEventLog:
    """An append-only, resumable event feed per job id."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = os.fspath(root)
        self._next: Dict[str, int] = {}

    @property
    def events_dir(self) -> str:
        return os.path.join(self.root, EVENTS_DIR)

    def path(self, job_id: str) -> str:
        return os.path.join(self.events_dir, f"{job_id}.jsonl")

    # -- writing -------------------------------------------------------- #

    def _count(self, job_id: str) -> int:
        """Events already on disk (torn trailing line excluded)."""
        try:
            with open(self.path(job_id), "rb") as fh:
                data = fh.read()
        except OSError:
            return 0
        return data.count(b"\n")

    def append(self, job_id: str, event: str, data: Dict[str, Any]) -> Optional[int]:
        """Append one event; returns its id (1-based), or ``None`` when
        the per-job cap was reached and the event was dropped."""
        next_id = self._next.get(job_id)
        if next_id is None:
            next_id = self._count(job_id) + 1
        if next_id > MAX_EVENTS_PER_JOB:
            self._next[job_id] = next_id
            return None
        os.makedirs(self.events_dir, exist_ok=True)
        append_line(
            self.path(job_id),
            json.dumps(
                {"id": next_id, "event": event, "data": data}, sort_keys=True
            ),
        )
        self._next[job_id] = next_id + 1
        return next_id

    # -- reading -------------------------------------------------------- #

    def read(self, job_id: str, after: int = 0) -> List[Dict[str, Any]]:
        """Every event with id greater than ``after``, in id order.

        Torn or undecodable lines are skipped (a reader polling a live
        log may see a partial final line — the next poll gets it whole).
        """
        try:
            with open(self.path(job_id), "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return []
        events: List[Dict[str, Any]] = []
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict) or not isinstance(record.get("id"), int):
                continue
            if record["id"] > after:
                events.append(record)
        events.sort(key=lambda r: r["id"])
        return events

    def last_id(self, job_id: str) -> int:
        """The id of the newest event on disk (0 when the log is empty)."""
        events = self.read(job_id)
        return events[-1]["id"] if events else 0

    def __repr__(self) -> str:
        return f"JobEventLog({self.root!r})"
