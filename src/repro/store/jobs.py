"""Durable job runners: the scheduler's work vocabulary.

This module binds the generic :class:`~repro.store.scheduler.JobQueue`
to the repository's actual workloads.  Six job kinds are understood:

* ``table1`` / ``table2`` — reproduce a whole table, cell by cell;
* ``certificate`` — assemble the full reproduction certificate;
* ``sweep`` — check Theorem 5.2's proof invariants over a spec grid;
* ``scenario`` — run a declarative :mod:`repro.scenarios` config (its
  validated form rides in the job parameters, so the queue record is
  self-contained even if the config file later changes on disk);
* ``noop`` — a deterministic trivial document, the unit of scheduler
  benchmarks and fleet crash-recovery campaigns: all dispatch cost, no
  engine cost, yet still byte-comparable across runs.

Every runner computes its units *one at a time through the result
store*, heartbeating the job lease and updating the job's progress
record between units.  That interleaving is the whole crash-recovery
story: a worker killed mid-table has already persisted every finished
cell, so the retry (same job id, same store) replays only the remainder
— and because cell payloads and document assembly are deterministic, the
resumed document is byte-identical to an uninterrupted run's.

Layout: one ``root`` directory holds both halves of the subsystem — the
result store at the root itself and the queue under ``root/queue`` —
so a single path is all you hand to ``python -m repro store``.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from typing import Any, Dict, List, Optional, Union

from repro.core.engine import ENGINE_VERSION
from repro.store.cache import ResultStore, canonical_params, result_key
from repro.store.events import JobEventLog
from repro.store.scheduler import JobQueue, JobRecord
from repro.store.shard import MANIFEST_NAME, ShardedJobQueue, ShardLayoutError

#: Job kinds the worker loop knows how to run.
JOB_KINDS = ("table1", "table2", "certificate", "sweep", "scenario", "noop")


def open_store(root) -> ResultStore:
    """The result store of a scheduler root."""
    return ResultStore(root)


def open_queue(
    root, shards: Optional[int] = None, **kwargs
) -> Union[JobQueue, ShardedJobQueue]:
    """The job queue of a scheduler root (lives under ``root/queue``).

    Layout is discovered, not assumed: a queue carrying a shard manifest
    opens sharded (at its persisted count) whether or not ``shards`` is
    passed; a legacy flat queue opens as a plain :class:`JobQueue` when
    ``shards`` is ``None``, and refuses a ``shards=`` request outright —
    re-hashing a live flat queue in place would strand its jobs.  Only a
    brand-new root creates a layout from ``shards``.
    """
    queue_root = os.path.join(os.fspath(root), "queue")
    has_manifest = os.path.exists(os.path.join(queue_root, MANIFEST_NAME))
    if shards is None and not has_manifest:
        return JobQueue(queue_root, **kwargs)
    if shards is not None and not has_manifest and os.path.isdir(
        os.path.join(queue_root, "jobs")
    ):
        raise ShardLayoutError(
            f"queue at {queue_root!r} is a legacy flat layout; "
            f"open it without --shards or start a fresh root"
        )
    return ShardedJobQueue(queue_root, shards=shards, **kwargs)


def document_key(kind: str, params: Dict[str, Any]) -> str:
    """The store key under which a job's final document lands."""
    return result_key(f"{kind}-doc", params)


def store_status_payload(
    queue: Union[JobQueue, ShardedJobQueue], store: ResultStore
) -> Dict[str, Any]:
    """The machine-readable status of one scheduler root — queue counts,
    claim-path counters, cache stats, and (for sharded queues) the
    per-shard breakdown.  ``python -m repro store status --json`` and the
    service's ``GET /v1/store/stats`` both emit exactly this shape, so
    shell scripts and HTTP clients parse one schema."""
    payload: Dict[str, Any] = {
        "engine_version": ENGINE_VERSION,
        "queue": queue.counts(),
        "scheduler": queue.stats(),
        "store": store.stats(),
    }
    if hasattr(queue, "shard_stats"):
        payload["shards"] = queue.shard_stats()
    return payload


def _unit_progress(
    queue: JobQueue,
    log: JobEventLog,
    record: JobRecord,
    done: int,
    total: int,
) -> None:
    """The per-unit bookkeeping every multi-unit runner shares: refresh
    the lease, persist progress on the job record, and append a
    ``progress`` event to the job's durable event log (the SSE feed)."""
    queue.heartbeat(record.id)
    queue.update_progress(record.id, {"units_done": done, "units_total": total})
    log.append(
        record.id,
        "progress",
        {"kind": record.kind, "units_done": done, "units_total": total},
    )


def table_document(
    kind: str, n: int, seed: int, cells: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Assemble the deterministic document of one reproduced table.

    Pure function of the cell payloads — no timestamps, no hostnames —
    so interrupted-and-resumed runs emit the same bytes as clean ones.
    """
    return {
        "kind": kind,
        "engine_version": ENGINE_VERSION,
        "parameters": {"n": n, "seed": seed},
        "cells": cells,
        "summary": {
            "cells": len(cells),
            "consistent": sum(1 for c in cells if c["consistent"]),
            "verdict": "PASS" if all(c["consistent"] for c in cells) else "FAIL",
        },
    }


def _run_table_job(queue: JobQueue, store: ResultStore, record: JobRecord) -> str:
    from repro.analysis.tables import cell_to_payload, compute_cell, table_specs

    dynamic = record.kind == "table2"
    n = int(record.params.get("n", 5 if dynamic else 6))
    seed = int(record.params.get("seed", 0))
    # Quotient/vector acceleration changes how cells are computed, never
    # what they contain, so both ride in the job params but stay out of
    # the document key / cell store keys — warm caches serve every mode.
    quotient = record.params.get("quotient")
    vector = record.params.get("vector")
    specs = table_specs(dynamic, n, seed)
    log = JobEventLog(store.root)
    payloads: List[Dict[str, Any]] = []
    for done, (dyn, model, knowledge, cell_n, cell_seed) in enumerate(specs, start=1):
        result = compute_cell(
            dyn, model, knowledge, cell_n, cell_seed, store=store, quotient=quotient,
            vector=vector,
        )
        payloads.append(cell_to_payload(result))
        _unit_progress(queue, log, record, done, len(specs))
    params = {"n": n, "seed": seed}
    doc = table_document(record.kind, n, seed, payloads)
    key = document_key(record.kind, params)
    store.put(key, doc, kind=f"{record.kind}-doc", params=params)
    return key


def _run_certificate_job(queue: JobQueue, store: ResultStore, record: JobRecord) -> str:
    from repro.analysis.certificate import reproduction_certificate

    n = int(record.params.get("n", 6))
    seed = int(record.params.get("seed", 0))
    queue.heartbeat(record.id)
    # The certificate reuses every table cell already in the store, so a
    # retried certificate job recomputes nothing that survived the crash.
    doc = reproduction_certificate(
        n=n,
        seed=seed,
        parallel=False,
        store=store,
        quotient=record.params.get("quotient"),
        vector=record.params.get("vector"),
    )
    params = {"n": n, "seed": seed}
    key = document_key("certificate", params)
    store.put(key, doc, kind="certificate-doc", params=params)
    _unit_progress(queue, JobEventLog(store.root), record, 1, 1)
    return key


def _run_sweep_job(queue: JobQueue, store: ResultStore, record: JobRecord) -> str:
    from repro.analysis.rates import check_proof_invariants, proof_check_to_payload

    specs = [tuple(int(x) for x in s) for s in record.params.get("specs", [])]
    log = JobEventLog(store.root)
    payloads: List[Dict[str, Any]] = []
    for done, (n, d, seed, rounds) in enumerate(specs, start=1):
        check = check_proof_invariants(n, d, seed, rounds, store=store)
        payloads.append(proof_check_to_payload(check))
        _unit_progress(queue, log, record, done, len(specs))
    doc = {
        "kind": "sweep",
        "engine_version": ENGINE_VERSION,
        "parameters": {"specs": [list(s) for s in specs]},
        "checks": payloads,
        "summary": {
            "checks": len(payloads),
            "ok": sum(1 for p in payloads if not p["problems"]),
            "verdict": "PASS" if all(not p["problems"] for p in payloads) else "FAIL",
        },
    }
    params = dict(record.params)
    key = document_key("sweep", params)
    store.put(key, doc, kind="sweep-doc", params=params)
    return key


def _run_scenario_job(queue: JobQueue, store: ResultStore, record: JobRecord) -> str:
    import dataclasses

    from repro.scenarios import run_scenario, validate_scenario

    scenario = validate_scenario(
        record.params.get("config"), source=f"job:{record.id}"
    )
    # --quotient / --vector on submit ride beside the config, like the
    # table jobs; the config's own engine block wins when both are set.
    overrides = {
        flag: True
        for flag in ("quotient", "vector")
        if record.params.get(flag) and getattr(scenario.engine, flag) is None
    }
    if overrides:
        scenario = dataclasses.replace(
            scenario, engine=dataclasses.replace(scenario.engine, **overrides)
        )

    log = JobEventLog(store.root)

    def progress(done: int, total: int) -> None:
        _unit_progress(queue, log, record, done, total)

    # Round-level tracer metric snapshots are opt-in (submit with
    # "trace": true beside the config): each *computed* grid unit streams
    # its per-round metrics into the event log — store-served units have
    # no rounds to trace, and the document is byte-identical either way
    # (the PR-3 no-interference contract).  The trace flag deliberately
    # stays out of the scenario's identity, so traced and untraced
    # submissions share one document key.
    on_trace = None
    if record.params.get("trace"):

        def on_trace(unit: Dict[str, Any], snapshots: List[Dict[str, Any]]) -> None:
            for snapshot in snapshots:
                if log.append(record.id, "trace", {**unit, **snapshot}) is None:
                    return  # per-job event cap reached: drop the tail

    # A progress callback forces the sequential path, so the lease stays
    # heartbeaten between units — same discipline as the table jobs.
    doc = run_scenario(scenario, store=store, progress=progress, on_trace=on_trace)
    # The document key binds the scenario's identity (engine flags
    # excluded), so accelerated and direct submissions land on one entry.
    params = {"config": scenario.identity()}
    key = document_key("scenario", params)
    store.put(key, doc, kind="scenario-doc", params=params)
    return key


def _noop_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """A noop's identity: its params minus the engine-acceleration flags
    (which, as for tables, change nothing about the output)."""
    return {k: v for k, v in params.items() if k not in ("quotient", "vector")}


def noop_document(params: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic document of a ``noop`` job.

    Pure function of the (stripped) params — the digest gives the
    crash-recovery campaigns something content-like to byte-compare
    without dragging in the engine.
    """
    identity = _noop_params(params)
    canonical = canonical_params(identity)
    return {
        "kind": "noop",
        "engine_version": ENGINE_VERSION,
        "parameters": identity,
        "digest": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        "summary": {"cells": 1, "consistent": 1, "verdict": "PASS"},
    }


def _run_noop_job(queue: JobQueue, store: ResultStore, record: JobRecord) -> str:
    params = _noop_params(record.params)
    doc = noop_document(record.params)
    queue.heartbeat(record.id)
    key = document_key("noop", params)
    store.put(key, doc, kind="noop-doc", params=params)
    return key


_RUNNERS = {
    "table1": _run_table_job,
    "table2": _run_table_job,
    "certificate": _run_certificate_job,
    "sweep": _run_sweep_job,
    "scenario": _run_scenario_job,
    "noop": _run_noop_job,
}


def expected_result_key(kind: str, params: Dict[str, Any]) -> Optional[str]:
    """Predict the store key a job's document will land under, without
    running it — the orchestrator's dedup handle.

    Mirrors each runner's key derivation (including the default ``n`` /
    ``seed`` the table and certificate runners fill in, and the
    acceleration flags they exclude).  Returns ``None`` when the key
    cannot be predicted (unknown kind, invalid scenario config) — the
    orchestrator then simply dispatches without dedup.
    """
    try:
        if kind in ("table1", "table2"):
            dynamic = kind == "table2"
            return document_key(
                kind,
                {
                    "n": int(params.get("n", 5 if dynamic else 6)),
                    "seed": int(params.get("seed", 0)),
                },
            )
        if kind == "certificate":
            return document_key(
                kind,
                {"n": int(params.get("n", 6)), "seed": int(params.get("seed", 0))},
            )
        if kind == "sweep":
            return document_key(kind, dict(params))
        if kind == "noop":
            return document_key(kind, _noop_params(params))
        if kind == "scenario":
            from repro.scenarios import validate_scenario

            scenario = validate_scenario(params.get("config"), source="dedup")
            return document_key(kind, {"config": scenario.identity()})
    except Exception:
        return None
    return None


def run_job(queue: JobQueue, store: ResultStore, record: JobRecord) -> str:
    """Execute one claimed job; returns the store key of its document."""
    runner = _RUNNERS.get(record.kind)
    if runner is None:
        raise ValueError(
            f"unknown job kind {record.kind!r}; expected one of {JOB_KINDS}"
        )
    return runner(queue, store, record)


def run_worker(
    root,
    max_jobs: Optional[int] = None,
    idle_exit: bool = True,
    poll_interval: float = 0.2,
    queue: Optional[JobQueue] = None,
    store: Optional[ResultStore] = None,
) -> int:
    """The worker loop: claim → run → complete/fail, until the queue is
    drained (``idle_exit=True``) or ``max_jobs`` jobs have been taken.

    Returns the number of jobs processed.  A job that raises is recorded
    via :meth:`~repro.store.scheduler.JobQueue.fail`, which requeues it
    with capped exponential backoff until its attempt budget runs out.
    """
    queue = queue if queue is not None else open_queue(root)
    store = store if store is not None else open_store(root)
    processed = 0
    while max_jobs is None or processed < max_jobs:
        record = queue.claim()
        if record is None:
            if idle_exit:
                break
            time.sleep(poll_interval)
            continue
        processed += 1
        try:
            key = run_job(queue, store, record)
        except Exception:
            queue.fail(record.id, traceback.format_exc(limit=8))
        else:
            queue.complete(record.id, result_key=key)
    return processed
