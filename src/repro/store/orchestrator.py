"""An asyncio dispatcher that keeps N process pools fed from the queue.

:func:`run_worker` is one process pulling one job at a time — fine for a
laptop, wasteful for a fleet: between finishing a job and claiming the
next, the worker does queue I/O while its CPU idles.  The
:class:`Orchestrator` inverts that: a single asyncio event loop owns the
claim path and streams leased jobs into ``N`` local
:class:`~concurrent.futures.ProcessPoolExecutor` pools, so the
(filesystem-bound) dispatch work and the (CPU-bound) job work overlap.

The loop maintains a bounded **in-flight window** (claimed-but-unfinished
jobs).  Whenever the window has room it claims a whole batch — one
directory listing amortized over many claims, the sharded queue's
cheapest unit of work — and dispatches each job to the least-loaded
pool.  A pool that has stopped finishing work (no completion for
``stall_timeout`` seconds while jobs are in flight) is marked stalled
and routed around until it produces a completion; that is the whole
rebalancing story — no migration of already-dispatched jobs, just no new
work for a wedged pool.

Leases never expire under a live orchestrator: a heartbeat task refreshes
every in-flight lease each ``heartbeat_interval`` (default from
``REPRO_HEARTBEAT_SECONDS=...``) from the event loop, so a job may run
arbitrarily long without being stolen — while a SIGKILLed orchestrator
stops heartbeating everything at once, and its whole window is recovered
by surviving claimants after ``REPRO_LEASE_STALE_SECONDS=...``.

Dedup rides the content-addressed store: before dispatching, the
orchestrator predicts the job's document key
(:func:`~repro.store.jobs.expected_result_key`).  A key already in the
store completes the job immediately without dispatch; a key already in
flight parks the duplicate until the first copy lands, then completes it
from the store.  Identical work dispatches once per fleet, not once per
submission.

Child processes run :func:`~repro.store.jobs.run_job` against their own
``JobQueue`` handle *sharing the parent's owner token*, so in-runner
heartbeats and the parent's heartbeat task refresh the same lease
identity.  Pools use the platform default start method; on fork
platforms the child inherits the parent's imported modules — the PR-2
payload discipline — and pools are pre-warmed before the event loop
spins up its own helper threads.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Union

from repro.store.cache import ResultStore
from repro.store.jobs import expected_result_key, open_queue, open_store, run_job
from repro.store.scheduler import (
    JobQueue,
    JobRecord,
    LeaseBroken,
    default_heartbeat_seconds,
)
from repro.store.shard import ShardedJobQueue

#: How long a pool may go without completing anything (while loaded)
#: before new work is routed around it.
DEFAULT_STALL_TIMEOUT = 30.0


def _pool_execute(root: str, owner: str, record_data: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job inside a pool worker.

    Opens its own queue/store handles (layout is rediscovered from the
    shard manifest, so parent and child agree) under the *parent's*
    owner token, so the runner's own heartbeats refresh the lease the
    orchestrator holds.  Completion/failure is recorded here, in the
    child, keeping the record transition adjacent to the work.
    """
    queue = open_queue(root, owner=owner)
    store = open_store(root)
    record = JobRecord.from_dict(record_data)
    try:
        key = run_job(queue, store, record)
    except Exception as exc:  # noqa: BLE001 - the job's failure, not ours
        import traceback

        queue.fail(record.id, traceback.format_exc(limit=8))
        return {"id": record.id, "ok": False, "error": repr(exc), "result_key": None}
    queue.complete(record.id, result_key=key)
    return {"id": record.id, "ok": True, "error": None, "result_key": key}


class _Pool:
    """One executor plus the load/stall bookkeeping routing decisions use."""

    __slots__ = ("executor", "inflight", "last_done", "stalled")

    def __init__(self, executor: ProcessPoolExecutor):
        self.executor = executor
        self.inflight = 0
        self.last_done = time.monotonic()
        self.stalled = False


class Orchestrator:
    """Claim from the (sharded) queue, saturate N process pools."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        queue: Optional[Union[JobQueue, ShardedJobQueue]] = None,
        store: Optional[ResultStore] = None,
        shards: Optional[int] = None,
        pools: int = 2,
        pool_workers: int = 1,
        window: Optional[int] = None,
        heartbeat_interval: Optional[float] = None,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        poll_interval: float = 0.05,
        max_jobs: Optional[int] = None,
        idle_exit: bool = True,
    ):
        self.root = os.fspath(root)
        if queue is not None:
            # Adopt the queue's owner token so the leases it acquired,
            # the heartbeat task here, and the in-runner heartbeats in
            # pool children all refresh one lease identity.
            self.queue = queue
            self._owner = getattr(queue, "_owner", f"{socket.gethostname()}:{os.getpid()}")
        else:
            self._owner = f"{socket.gethostname()}:{os.getpid()}:orchestrator"
            self.queue = open_queue(self.root, shards=shards, owner=self._owner)
        self.store = store if store is not None else open_store(self.root)
        if pools < 1:
            raise ValueError(f"need at least one pool, got {pools}")
        self.n_pools = int(pools)
        self.pool_workers = max(1, int(pool_workers))
        self.window = (
            int(window) if window is not None else self.n_pools * self.pool_workers * 4
        )
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else default_heartbeat_seconds()
        )
        self.stall_timeout = float(stall_timeout)
        self.poll_interval = float(poll_interval)
        self.max_jobs = max_jobs
        self.idle_exit = bool(idle_exit)
        self._pools: List[_Pool] = []
        self._rr = 0
        self._inflight_ids: Dict[str, JobRecord] = {}
        self._inflight_keys: Dict[str, str] = {}  # result_key -> job id
        self._waiters: Dict[str, List[JobRecord]] = {}
        self._dispatch_tasks: "set" = set()
        self._wake = asyncio.Event()
        self.stats: Dict[str, int] = {
            "claimed": 0,
            "dispatched": 0,
            "completed": 0,
            "failed": 0,
            "dedup_store": 0,
            "dedup_inflight": 0,
            "rebalanced": 0,
            "pool_stalls": 0,
            "pool_failures": 0,
            "heartbeats": 0,
            "lease_lost": 0,
        }

    # -- pool routing --------------------------------------------------- #

    def _refresh_stall_flags(self) -> None:
        now = time.monotonic()
        for pool in self._pools:
            wedged = pool.inflight > 0 and now - pool.last_done > self.stall_timeout
            if wedged and not pool.stalled:
                self.stats["pool_stalls"] += 1
            pool.stalled = wedged

    def _choose_pool(self) -> _Pool:
        """Least-loaded healthy pool, round-robin among ties.

        Sorting key: stalled pools last, then by in-flight load, then by
        round-robin distance so equal-load pools take turns.  Choosing a
        pool other than the round-robin next (because it was loaded or
        stalled) counts as a rebalance.
        """
        self._refresh_stall_flags()
        n = len(self._pools)
        rr_next = self._rr % n

        def rank(i: int):
            pool = self._pools[i]
            return (pool.stalled, pool.inflight, (i - rr_next) % n)

        choice = min(range(n), key=rank)
        if choice != rr_next:
            self.stats["rebalanced"] += 1
        self._rr = choice + 1
        return self._pools[choice]

    # -- admission and dispatch ----------------------------------------- #

    def _inflight_total(self) -> int:
        return len(self._inflight_ids) + sum(len(w) for w in self._waiters.values())

    def _admit(self, record: JobRecord) -> None:
        """Route one freshly leased job: complete from the store, park
        behind an identical in-flight job, or dispatch to a pool."""
        key = expected_result_key(record.kind, record.params)
        if key is not None and key in self.store:
            self.queue.complete(record.id, result_key=key)
            self.stats["dedup_store"] += 1
            self.stats["completed"] += 1
            return
        if key is not None and key in self._inflight_keys:
            self._waiters.setdefault(key, []).append(record)
            self.stats["dedup_inflight"] += 1
            return
        if key is not None:
            self._inflight_keys[key] = record.id
        self._inflight_ids[record.id] = record
        task = asyncio.ensure_future(self._dispatch(record, key))
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(self, record: JobRecord, key: Optional[str]) -> None:
        loop = asyncio.get_running_loop()
        pool = self._choose_pool()
        pool.inflight += 1
        self.stats["dispatched"] += 1
        try:
            outcome = await loop.run_in_executor(
                pool.executor, _pool_execute, self.root, self._owner, record.to_dict()
            )
        except Exception as exc:  # noqa: BLE001 - pool plumbing, not the job
            # BrokenProcessPool and friends: the *pool* died, not the job
            # logic.  Fail the job from the parent (requeue-with-backoff)
            # and let routing steer around the broken pool via its stall.
            self.stats["pool_failures"] += 1
            outcome = {"id": record.id, "ok": False, "error": repr(exc), "result_key": None}
            try:
                self.queue.fail(record.id, f"pool execution failed: {exc!r}")
            except Exception:
                pass
        finally:
            pool.inflight -= 1
            pool.last_done = time.monotonic()
        self._inflight_ids.pop(record.id, None)
        if key is not None:
            self._inflight_keys.pop(key, None)
        if outcome.get("ok"):
            self.stats["completed"] += 1
        else:
            self.stats["failed"] += 1
        if key is not None:
            # Whatever happened to the winner, re-admit the parked
            # duplicates: a success completes them straight from the
            # store; a failure re-dispatches one of them.
            for waiter in self._waiters.pop(key, []):
                self._admit(waiter)
        self._wake.set()

    # -- lease upkeep --------------------------------------------------- #

    def _heartbeat_all(self) -> None:
        ids = list(self._inflight_ids)
        for waiters in self._waiters.values():
            ids.extend(w.id for w in waiters)
        for job_id in ids:
            try:
                self.queue.heartbeat(job_id)
                self.stats["heartbeats"] += 1
            except LeaseBroken:
                self.stats["lease_lost"] += 1
            except OSError:
                pass

    async def _heartbeat_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            await loop.run_in_executor(None, self._heartbeat_all)

    # -- main loop ------------------------------------------------------ #

    async def run(self) -> Dict[str, int]:
        """Claim → dispatch → complete until the queue drains (or
        ``max_jobs`` have been admitted); returns the stats dict."""
        loop = asyncio.get_running_loop()
        self._pools = [
            _Pool(ProcessPoolExecutor(max_workers=self.pool_workers))
            for _ in range(self.n_pools)
        ]
        # Pre-warm: force every pool to fork its workers *before* the
        # loop's default thread executor spins up helper threads.
        for pool in self._pools:
            for fut in [pool.executor.submit(os.getpid) for _ in range(self.pool_workers)]:
                fut.result()
        heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        try:
            while True:
                room = self.window - self._inflight_total()
                if self.max_jobs is not None:
                    room = min(room, self.max_jobs - self.stats["claimed"])
                claimed: List[JobRecord] = []
                if room > 0:
                    claimed = await loop.run_in_executor(
                        None, self.queue.claim_batch, room
                    )
                    self.stats["claimed"] += len(claimed)
                    for record in claimed:
                        self._admit(record)
                if not claimed and self._inflight_total() == 0:
                    budget_spent = (
                        self.max_jobs is not None
                        and self.stats["claimed"] >= self.max_jobs
                    )
                    if self.idle_exit or budget_spent:
                        break
                    await asyncio.sleep(self.poll_interval)
                    continue
                if self._inflight_total() >= self.window or not claimed:
                    # Window full (or queue momentarily empty): sleep
                    # until a dispatch completes, or briefly.
                    self._wake.clear()
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(), timeout=self.poll_interval * 4
                        )
                    except asyncio.TimeoutError:
                        pass
        finally:
            heartbeat_task.cancel()
            # Let in-flight dispatch tasks finish recording outcomes.
            # Only *our* tasks: gathering asyncio.all_tasks() here
            # deadlocks when run() is embedded in a larger application
            # (the host task awaiting our cancellation is in that set).
            pending = [t for t in list(self._dispatch_tasks) if not t.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            for pool in self._pools:
                pool.executor.shutdown(wait=True)
        result = dict(self.stats)
        result["pools"] = self.n_pools
        result["window"] = self.window
        return result


def orchestrate(root, **kwargs) -> Dict[str, int]:
    """Run an :class:`Orchestrator` to completion; returns its stats."""
    return asyncio.run(Orchestrator(root, **kwargs).run())


def publish_orchestrator_metrics(
    registry, stats: Dict[str, Any], queue_stats: Optional[Dict[str, Any]] = None
) -> None:
    """Fold orchestrator stats — and optionally the queue's claim-path
    counters — into a ``MetricsRegistry`` (``orchestrator_dispatched``,
    ``scheduler_claims``, ``scheduler_takeovers``, ...)."""
    for name in (
        "claimed",
        "dispatched",
        "completed",
        "failed",
        "dedup_store",
        "dedup_inflight",
        "rebalanced",
        "pool_stalls",
        "pool_failures",
        "lease_lost",
    ):
        registry.counter(f"orchestrator_{name}").inc(int(stats.get(name, 0)))
    if queue_stats:
        for name in ("claims", "takeovers", "lease_conflicts", "listings"):
            registry.counter(f"scheduler_{name}").inc(int(queue_stats.get(name, 0)))
