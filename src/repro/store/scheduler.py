"""A crash-safe, disk-backed job scheduler over lock-file leases.

The queue is a directory: one JSON record per job under ``jobs/``, one
lease file per *running* job under ``leases/``.  No daemon, no socket,
no database — any number of worker processes sharing the filesystem
cooperate through two primitives:

* **Atomic job records.**  Job state transitions rewrite the record via
  :func:`~repro.store.atomic.atomic_write_text`, so a record is always a
  complete JSON document in exactly one state.
* **Exclusive lease files.**  Claiming a job creates
  ``leases/<job_id>.lock`` with ``O_CREAT | O_EXCL`` — the POSIX
  test-and-set.  The holder refreshes the lease's heartbeat field
  periodically; a lease whose heartbeat is older than ``lease_ttl``
  seconds belongs to a dead worker (``kill -9`` leaves exactly this
  residue) and is broken by the next claimant, which re-runs the job.
  Breaking a stale lease is itself atomic: the claimant ``rename``s the
  dead lease aside before re-acquiring, and POSIX guarantees exactly one
  renamer wins — two workers racing on the same corpse resolve to one
  owner, never two.

Claiming is incremental, not a full rescan: one directory listing per
claim pass (names only — records are read lazily, not re-``stat``-ed en
masse), job ids already observed ``done`` are skipped without touching
disk again, and a rotating cursor resumes each pass where the previous
one stopped so concurrent workers fan out across the queue instead of
herding on the lexicographically first job.

Failure policy: a job that raises is requeued with capped exponential
backoff (``retry_base * 2^(attempts-1)``, capped at ``retry_cap``) until
``max_attempts`` is exhausted, then parked as ``failed`` with the error
recorded.  Because the runners persist every finished cell into the
:class:`~repro.store.cache.ResultStore` as they go, a re-run — whether
after a crash or a retry — resumes from the last completed unit instead
of starting over.

Job identity is content-addressed (SHA-256 of kind + canonical params),
so resubmitting the same work is idempotent: you get the same job id and
at most one execution of each cell, ever.

Timing knobs come from the environment via the shared
:mod:`repro.envflags` parser: ``REPRO_LEASE_STALE_SECONDS=...`` sets the
default lease TTL (how long a silent lease stays credible) and
``REPRO_HEARTBEAT_SECONDS=...`` the default heartbeat interval the
orchestrator refreshes in-flight leases at; invalid or absurd values
fall back to the documented defaults.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Union

from repro.envflags import env_float
from repro.store.atomic import TMP_PREFIX, atomic_write_text, sweep_temp_files
from repro.store.cache import canonical_params

#: Job lifecycle states, in the order they normally occur.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
_STATES = (QUEUED, RUNNING, DONE, FAILED)

#: Environment variables configuring the scheduler's two clocks.
HEARTBEAT_ENV = "REPRO_HEARTBEAT_SECONDS"
LEASE_STALE_ENV = "REPRO_LEASE_STALE_SECONDS"

#: Documented defaults behind the environment knobs.
DEFAULT_HEARTBEAT_SECONDS = 5.0
DEFAULT_LEASE_TTL = 30.0


def default_heartbeat_seconds() -> float:
    """How often lease holders should refresh their heartbeat, from
    ``REPRO_HEARTBEAT_SECONDS=...`` (validated; floor 0.05 s)."""
    return env_float(HEARTBEAT_ENV, DEFAULT_HEARTBEAT_SECONDS, minimum=0.05)


def default_lease_ttl() -> float:
    """How long a silent lease stays credible before takeover, from
    ``REPRO_LEASE_STALE_SECONDS=...`` (validated; floor 0.1 s)."""
    return env_float(LEASE_STALE_ENV, DEFAULT_LEASE_TTL, minimum=0.1)


def job_id_for(kind: str, params: Dict[str, Any]) -> str:
    """Deterministic job identity: same work → same id (idempotent submit)."""
    payload = kind + "\x1f" + canonical_params(params)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobRecord:
    """One unit of schedulable work and its durable lifecycle state."""

    id: str
    kind: str
    params: Dict[str, Any]
    status: str = QUEUED
    attempts: int = 0
    max_attempts: int = 3
    not_before: float = 0.0
    error: Optional[str] = None
    result_key: Optional[str] = None
    progress: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "error": self.error,
            "result_key": self.result_key,
            "progress": self.progress,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobRecord":
        if d.get("status") not in _STATES:
            raise ValueError(f"job record has unknown status {d.get('status')!r}")
        return cls(
            id=d["id"],
            kind=d["kind"],
            params=dict(d.get("params") or {}),
            status=d["status"],
            attempts=int(d.get("attempts", 0)),
            max_attempts=int(d.get("max_attempts", 3)),
            not_before=float(d.get("not_before", 0.0)),
            error=d.get("error"),
            result_key=d.get("result_key"),
            progress=dict(d.get("progress") or {}),
        )


class LeaseBroken(RuntimeError):
    """Raised on heartbeat/complete when the caller no longer holds the
    lease (another worker broke it after the TTL lapsed)."""


class JobQueue:
    """The disk-backed queue: submit, claim, heartbeat, complete, retry."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        lease_ttl: Optional[float] = None,
        retry_base: float = 1.0,
        retry_cap: float = 60.0,
        owner: Optional[str] = None,
    ):
        self.root = os.fspath(root)
        self.lease_ttl = float(lease_ttl) if lease_ttl is not None else default_lease_ttl()
        self.retry_base = float(retry_base)
        self.retry_cap = float(retry_cap)
        self._owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        # Claim-pass bookkeeping: ids observed DONE are never re-read
        # (a done record is immutable), and the cursor rotates each pass
        # so concurrent claimants spread over the queue.  FAILED ids are
        # *not* cached — a failed job can be revived at any time.
        self._seen_done: Set[str] = set()
        self._cursor: Optional[str] = None
        self.counters: Dict[str, int] = {
            "claims": 0,
            "takeovers": 0,
            "lease_conflicts": 0,
            "listings": 0,
            "records_read": 0,
            "done_skips": 0,
        }

    # -- layout --------------------------------------------------------- #

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.root, "jobs")

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, "leases")

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def lease_path(self, job_id: str) -> str:
        return os.path.join(self.leases_dir, f"{job_id}.lock")

    def _write(self, record: JobRecord) -> None:
        os.makedirs(self.jobs_dir, exist_ok=True)
        # Any state transition written through this instance invalidates
        # its done-cache for the id (e.g. a done job forced back to
        # queued must become claimable again).
        self._seen_done.discard(record.id)
        atomic_write_text(
            self.job_path(record.id), json.dumps(record.to_dict(), sort_keys=True, indent=1)
        )

    def _read(self, job_id: str) -> Optional[JobRecord]:
        self.counters["records_read"] += 1
        try:
            with open(self.job_path(job_id), "r", encoding="utf-8") as fh:
                return JobRecord.from_dict(json.load(fh))
        except (OSError, json.JSONDecodeError, ValueError, KeyError):
            return None

    # -- submit --------------------------------------------------------- #

    def submit(self, kind: str, params: Dict[str, Any], max_attempts: int = 3) -> JobRecord:
        """Enqueue work; idempotent on ``(kind, params)``.

        A finished or in-flight duplicate is returned as-is; a previously
        *failed* duplicate is revived with a fresh attempt budget.
        """
        job_id = job_id_for(kind, params)
        existing = self._read(job_id)
        if existing is not None:
            if existing.status != FAILED:
                return existing
            existing.status = QUEUED
            existing.attempts = 0
            existing.not_before = 0.0
            existing.error = None
            self._write(existing)
            return existing
        record = JobRecord(id=job_id, kind=kind, params=dict(params), max_attempts=max_attempts)
        self._write(record)
        return record

    def revive(self, job_id: Optional[str] = None) -> int:
        """Requeue FAILED job(s) with a fresh attempt budget.

        With ``job_id`` revives that job; without, every failed job.
        Returns the number of jobs revived.
        """
        if job_id is not None:
            targets = [job_id]
        else:
            targets = [r.id for r in self.jobs() if r.status == FAILED]
        revived = 0
        for target in targets:
            record = self._read(target)
            if record is None or record.status != FAILED:
                continue
            record.status = QUEUED
            record.attempts = 0
            record.not_before = 0.0
            record.error = None
            self._write(record)
            revived += 1
        return revived

    # -- leases --------------------------------------------------------- #

    def _try_acquire_lease(self, job_id: str) -> bool:
        os.makedirs(self.leases_dir, exist_ok=True)
        path = self.lease_path(job_id)
        payload = json.dumps(
            {"owner": self._owner, "heartbeat": time.time()}, sort_keys=True
        )
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def _lease_info(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.lease_path(job_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _lease_stale(self, job_id: str) -> bool:
        info = self._lease_info(job_id)
        if info is None:
            # Unreadable lease: age it by file mtime; missing file = stale.
            try:
                mtime = os.path.getmtime(self.lease_path(job_id))
            except OSError:
                return True
            return time.time() - mtime > self.lease_ttl
        return time.time() - float(info.get("heartbeat", 0.0)) > self.lease_ttl

    def _break_lease(self, job_id: str) -> bool:
        """Atomically retire a stale lease: rename it aside, then unlink.

        ``os.rename`` succeeds for exactly one caller — the second racer
        gets ``ENOENT`` and backs off — so two workers spotting the same
        corpse can never both proceed to re-acquire.  The tombstone name
        carries :data:`~repro.store.atomic.TMP_PREFIX` so a crash between
        rename and unlink leaves only gc-sweepable residue.
        """
        tombstone = os.path.join(
            self.leases_dir,
            f"{TMP_PREFIX}broken-{job_id}-{os.getpid()}-{time.monotonic_ns()}",
        )
        try:
            os.rename(self.lease_path(job_id), tombstone)
        except OSError:
            return False
        try:
            os.unlink(tombstone)
        except OSError:  # pragma: no cover - sweep_temp_files reclaims it
            pass
        return True

    def _release_lease(self, job_id: str) -> None:
        try:
            os.unlink(self.lease_path(job_id))
        except OSError:
            pass

    def lease_info(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The public read of a job's lease: the ``{"owner", "heartbeat"}``
        record of whoever currently holds it, or ``None`` when the job is
        not leased (queued, finished, or between claims).  The experiment
        service's status endpoint reads liveness through here instead of
        poking at lease files."""
        return self._lease_info(job_id)

    def heartbeat_age(self, job_id: str) -> Optional[float]:
        """Seconds since the lease holder last heartbeat, or ``None``
        when the job is not leased.  An age beyond ``lease_ttl`` means
        the holder is presumed dead and the next claimant will take the
        job over."""
        info = self.lease_info(job_id)
        if info is None:
            return None
        return max(0.0, time.time() - float(info.get("heartbeat", 0.0)))

    def heartbeat(self, job_id: str) -> None:
        """Refresh the lease; raises :class:`LeaseBroken` if this worker
        no longer holds it (the job was handed to someone else)."""
        info = self._lease_info(job_id)
        if info is None or info.get("owner") != self._owner:
            raise LeaseBroken(f"lease on {job_id} is not held by {self._owner}")
        atomic_write_text(
            self.lease_path(job_id),
            json.dumps({"owner": self._owner, "heartbeat": time.time()}, sort_keys=True),
        )

    # -- claim ---------------------------------------------------------- #

    def _candidate_ids(self) -> List[str]:
        """One directory listing's worth of claim candidates: names only,
        known-done ids dropped without disk access, rotated to start just
        past the cursor so successive passes (and concurrent workers)
        walk different stretches of the queue."""
        self.counters["listings"] += 1
        try:
            names = sorted(
                name[: -len(".json")]
                for name in os.listdir(self.jobs_dir)
                if name.endswith(".json")
            )
        except OSError:
            return []
        if self._seen_done:
            kept = [name for name in names if name not in self._seen_done]
            self.counters["done_skips"] += len(names) - len(kept)
            names = kept
        if self._cursor is not None and names:
            pivot = bisect.bisect_right(names, self._cursor)
            names = names[pivot:] + names[:pivot]
        return names

    def _claim_queued(self, job_id: str, now: float) -> Optional[JobRecord]:
        if not self._try_acquire_lease(job_id):
            # A queued record with a lease is either a rival claim in
            # flight (fresh lease — back off) or the residue of a worker
            # that died between acquiring the lease and writing the
            # running record.  That residue would wedge the job forever,
            # since stale-lease takeover only inspects *running*
            # records: break the corpse and take its place.
            if not self._lease_stale(job_id) or not self._break_lease(job_id):
                self.counters["lease_conflicts"] += 1
                return None
            if not self._try_acquire_lease(job_id):
                self.counters["lease_conflicts"] += 1
                return None
            self.counters["takeovers"] += 1
        fresh = self._read(job_id)  # re-read under the lease
        if fresh is None or fresh.status != QUEUED or fresh.not_before > now:
            self._release_lease(job_id)
            return None
        fresh.status = RUNNING
        self._write(fresh)
        self.counters["claims"] += 1
        return fresh

    def _claim_stale(self, job_id: str) -> Optional[JobRecord]:
        if os.path.exists(self.lease_path(job_id)):
            if not self._break_lease(job_id):
                return None  # another worker broke it first
        if not self._try_acquire_lease(job_id):
            self.counters["lease_conflicts"] += 1
            return None
        fresh = self._read(job_id)
        if fresh is None or fresh.status != RUNNING:
            self._release_lease(job_id)
            return None
        fresh.attempts += 1
        self.counters["takeovers"] += 1
        if fresh.attempts >= fresh.max_attempts:
            fresh.status = FAILED
            fresh.error = "worker died (lease expired) and retries exhausted"
            self._write(fresh)
            self._release_lease(fresh.id)
            return None
        self._write(fresh)
        self.counters["claims"] += 1
        return fresh

    def claim_batch(self, limit: int = 1) -> List[JobRecord]:
        """Take up to ``limit`` runnable jobs from one listing pass.

        Runnable means: ``queued`` with its backoff window expired, or
        ``running`` under a lease whose holder stopped heartbeating for
        longer than ``lease_ttl`` (a crashed worker — the claim breaks
        the dead lease and re-runs the job).  Amortizing one listing
        over a whole batch is what the orchestrator's dispatch window
        leans on: at 10k queued jobs the listing, not the lease work,
        is the dominant cost of a single claim.
        """
        claimed: List[JobRecord] = []
        if limit <= 0:
            return claimed
        now = time.time()
        for job_id in self._candidate_ids():
            self._cursor = job_id
            record = self._read(job_id)
            if record is None:
                continue  # torn or vanished record: never fatal
            if record.status == DONE:
                self._seen_done.add(job_id)
                continue
            if record.status == QUEUED and record.not_before <= now:
                taken = self._claim_queued(job_id, now)
            elif record.status == RUNNING and self._lease_stale(job_id):
                taken = self._claim_stale(job_id)
            else:
                continue
            if taken is not None:
                claimed.append(taken)
                if len(claimed) >= limit:
                    break
        return claimed

    def claim(self) -> Optional[JobRecord]:
        """Take one runnable job, or ``None`` (see :meth:`claim_batch`)."""
        batch = self.claim_batch(1)
        return batch[0] if batch else None

    # -- outcomes ------------------------------------------------------- #

    def update_progress(self, job_id: str, progress: Dict[str, Any]) -> None:
        record = self._read(job_id)
        if record is None:
            return
        record.progress.update(progress)
        self._write(record)

    def complete(self, job_id: str, result_key: Optional[str] = None) -> None:
        record = self._read(job_id)
        if record is None:
            raise LeaseBroken(f"job {job_id} vanished")
        record.status = DONE
        record.error = None
        record.result_key = result_key
        self._write(record)
        self._release_lease(job_id)

    def fail(self, job_id: str, error: str) -> JobRecord:
        """Record a failure: requeue with capped exponential backoff, or
        park as ``failed`` once the attempt budget is spent."""
        record = self._read(job_id)
        if record is None:
            raise LeaseBroken(f"job {job_id} vanished")
        record.attempts += 1
        record.error = error
        if record.attempts >= record.max_attempts:
            record.status = FAILED
        else:
            record.status = QUEUED
            backoff = min(self.retry_cap, self.retry_base * (2 ** (record.attempts - 1)))
            record.not_before = time.time() + backoff
        self._write(record)
        self._release_lease(job_id)
        return record

    # -- introspection and maintenance ---------------------------------- #

    def jobs(self) -> List[JobRecord]:
        """Every job record, sorted by id (stable across listings)."""
        if not os.path.isdir(self.jobs_dir):
            return []
        records = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if name.endswith(".json"):
                record = self._read(name[: -len(".json")])
                if record is not None:
                    records.append(record)
        return records

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._read(job_id)

    def counts(self) -> Dict[str, int]:
        tally = {state: 0 for state in _STATES}
        for record in self.jobs():
            tally[record.status] += 1
        return tally

    def stats(self) -> Dict[str, int]:
        """Process-local claim-path counters (claims, takeovers, lease
        conflicts, listings, record reads, done-skips)."""
        return dict(self.counters)

    def gc(self, keep_terminal: Optional[float] = None) -> Dict[str, int]:
        """Break stale leases, drop leases of finished jobs, and sweep
        orphaned temp files; returns counts.

        ``keep_terminal`` (seconds) additionally prunes COMPLETED/FAILED
        job *records* whose file is older than the retention window —
        the queue-side mirror of :meth:`ResultStore.gc`.  ``None`` (the
        default) keeps every record; ``0`` prunes all terminal records.
        Result documents are untouched either way — they live in the
        store, keyed by content, not by job.
        """
        broken = 0
        if os.path.isdir(self.leases_dir):
            for name in sorted(os.listdir(self.leases_dir)):
                if not name.endswith(".lock"):
                    continue
                job_id = name[: -len(".lock")]
                record = self._read(job_id)
                finished = record is not None and record.status in (DONE, FAILED)
                if finished or self._lease_stale(job_id):
                    self._release_lease(job_id)
                    broken += 1
        pruned = 0
        if keep_terminal is not None and os.path.isdir(self.jobs_dir):
            horizon = time.time() - max(float(keep_terminal), 0.0)
            for name in sorted(os.listdir(self.jobs_dir)):
                if not name.endswith(".json"):
                    continue
                job_id = name[: -len(".json")]
                record = self._read(job_id)
                if record is None or record.status not in (DONE, FAILED):
                    continue
                path = self.job_path(job_id)
                try:
                    if os.path.getmtime(path) > horizon:
                        continue
                    os.unlink(path)
                except OSError:
                    continue
                self._release_lease(job_id)
                self._seen_done.discard(job_id)
                pruned += 1
        swept = len(sweep_temp_files(self.root)) if os.path.isdir(self.root) else 0
        return {"leases_broken": broken, "temp_files": swept, "jobs_pruned": pruned}
