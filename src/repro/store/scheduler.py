"""A crash-safe, disk-backed job scheduler over lock-file leases.

The queue is a directory: one JSON record per job under ``jobs/``, one
lease file per *running* job under ``leases/``.  No daemon, no socket,
no database — any number of worker processes sharing the filesystem
cooperate through two primitives:

* **Atomic job records.**  Job state transitions rewrite the record via
  :func:`~repro.store.atomic.atomic_write_text`, so a record is always a
  complete JSON document in exactly one state.
* **Exclusive lease files.**  Claiming a job creates
  ``leases/<job_id>.lock`` with ``O_CREAT | O_EXCL`` — the POSIX
  test-and-set.  The holder refreshes the lease's heartbeat field
  periodically; a lease whose heartbeat is older than ``lease_ttl``
  seconds belongs to a dead worker (``kill -9`` leaves exactly this
  residue) and is broken by the next claimant, which re-runs the job.

Failure policy: a job that raises is requeued with capped exponential
backoff (``retry_base * 2^(attempts-1)``, capped at ``retry_cap``) until
``max_attempts`` is exhausted, then parked as ``failed`` with the error
recorded.  Because the runners persist every finished cell into the
:class:`~repro.store.cache.ResultStore` as they go, a re-run — whether
after a crash or a retry — resumes from the last completed unit instead
of starting over.

Job identity is content-addressed (SHA-256 of kind + canonical params),
so resubmitting the same work is idempotent: you get the same job id and
at most one execution of each cell, ever.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.store.atomic import atomic_write_text, sweep_temp_files
from repro.store.cache import canonical_params

#: Job lifecycle states, in the order they normally occur.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
_STATES = (QUEUED, RUNNING, DONE, FAILED)


def job_id_for(kind: str, params: Dict[str, Any]) -> str:
    """Deterministic job identity: same work → same id (idempotent submit)."""
    payload = kind + "\x1f" + canonical_params(params)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobRecord:
    """One unit of schedulable work and its durable lifecycle state."""

    id: str
    kind: str
    params: Dict[str, Any]
    status: str = QUEUED
    attempts: int = 0
    max_attempts: int = 3
    not_before: float = 0.0
    error: Optional[str] = None
    result_key: Optional[str] = None
    progress: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "error": self.error,
            "result_key": self.result_key,
            "progress": self.progress,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobRecord":
        if d.get("status") not in _STATES:
            raise ValueError(f"job record has unknown status {d.get('status')!r}")
        return cls(
            id=d["id"],
            kind=d["kind"],
            params=dict(d.get("params") or {}),
            status=d["status"],
            attempts=int(d.get("attempts", 0)),
            max_attempts=int(d.get("max_attempts", 3)),
            not_before=float(d.get("not_before", 0.0)),
            error=d.get("error"),
            result_key=d.get("result_key"),
            progress=dict(d.get("progress") or {}),
        )


class LeaseBroken(RuntimeError):
    """Raised on heartbeat/complete when the caller no longer holds the
    lease (another worker broke it after the TTL lapsed)."""


class JobQueue:
    """The disk-backed queue: submit, claim, heartbeat, complete, retry."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        lease_ttl: float = 30.0,
        retry_base: float = 1.0,
        retry_cap: float = 60.0,
    ):
        self.root = os.fspath(root)
        self.lease_ttl = float(lease_ttl)
        self.retry_base = float(retry_base)
        self.retry_cap = float(retry_cap)
        self._owner = f"{socket.gethostname()}:{os.getpid()}"

    # -- layout --------------------------------------------------------- #

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.root, "jobs")

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, "leases")

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def lease_path(self, job_id: str) -> str:
        return os.path.join(self.leases_dir, f"{job_id}.lock")

    def _write(self, record: JobRecord) -> None:
        os.makedirs(self.jobs_dir, exist_ok=True)
        atomic_write_text(
            self.job_path(record.id), json.dumps(record.to_dict(), sort_keys=True, indent=1)
        )

    def _read(self, job_id: str) -> Optional[JobRecord]:
        try:
            with open(self.job_path(job_id), "r", encoding="utf-8") as fh:
                return JobRecord.from_dict(json.load(fh))
        except (OSError, json.JSONDecodeError, ValueError, KeyError):
            return None

    # -- submit --------------------------------------------------------- #

    def submit(self, kind: str, params: Dict[str, Any], max_attempts: int = 3) -> JobRecord:
        """Enqueue work; idempotent on ``(kind, params)``.

        A finished or in-flight duplicate is returned as-is; a previously
        *failed* duplicate is revived with a fresh attempt budget.
        """
        job_id = job_id_for(kind, params)
        existing = self._read(job_id)
        if existing is not None:
            if existing.status != FAILED:
                return existing
            existing.status = QUEUED
            existing.attempts = 0
            existing.not_before = 0.0
            existing.error = None
            self._write(existing)
            return existing
        record = JobRecord(id=job_id, kind=kind, params=dict(params), max_attempts=max_attempts)
        self._write(record)
        return record

    # -- leases --------------------------------------------------------- #

    def _try_acquire_lease(self, job_id: str) -> bool:
        os.makedirs(self.leases_dir, exist_ok=True)
        path = self.lease_path(job_id)
        payload = json.dumps(
            {"owner": self._owner, "heartbeat": time.time()}, sort_keys=True
        )
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def _lease_info(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.lease_path(job_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _lease_stale(self, job_id: str) -> bool:
        info = self._lease_info(job_id)
        if info is None:
            # Unreadable lease: age it by file mtime; missing file = stale.
            try:
                mtime = os.path.getmtime(self.lease_path(job_id))
            except OSError:
                return True
            return time.time() - mtime > self.lease_ttl
        return time.time() - float(info.get("heartbeat", 0.0)) > self.lease_ttl

    def _release_lease(self, job_id: str) -> None:
        try:
            os.unlink(self.lease_path(job_id))
        except OSError:
            pass

    def heartbeat(self, job_id: str) -> None:
        """Refresh the lease; raises :class:`LeaseBroken` if this worker
        no longer holds it (the job was handed to someone else)."""
        info = self._lease_info(job_id)
        if info is None or info.get("owner") != self._owner:
            raise LeaseBroken(f"lease on {job_id} is not held by {self._owner}")
        atomic_write_text(
            self.lease_path(job_id),
            json.dumps({"owner": self._owner, "heartbeat": time.time()}, sort_keys=True),
        )

    # -- claim ---------------------------------------------------------- #

    def claim(self) -> Optional[JobRecord]:
        """Take one runnable job, or ``None``.

        Runnable means: ``queued`` with its backoff window expired, or
        ``running`` under a lease whose holder stopped heartbeating for
        longer than ``lease_ttl`` (a crashed worker — the claim breaks
        the dead lease and re-runs the job).
        """
        now = time.time()
        for record in self.jobs():
            if record.status == QUEUED and record.not_before <= now:
                if self._try_acquire_lease(record.id):
                    fresh = self._read(record.id)  # re-read under the lease
                    if fresh is None or fresh.status != QUEUED or fresh.not_before > now:
                        self._release_lease(record.id)
                        continue
                    fresh.status = RUNNING
                    self._write(fresh)
                    return fresh
            elif record.status == RUNNING and self._lease_stale(record.id):
                self._release_lease(record.id)
                if self._try_acquire_lease(record.id):
                    fresh = self._read(record.id)
                    if fresh is None or fresh.status != RUNNING:
                        self._release_lease(record.id)
                        continue
                    fresh.attempts += 1
                    if fresh.attempts >= fresh.max_attempts:
                        fresh.status = FAILED
                        fresh.error = "worker died (lease expired) and retries exhausted"
                        self._write(fresh)
                        self._release_lease(fresh.id)
                        continue
                    self._write(fresh)
                    return fresh
        return None

    # -- outcomes ------------------------------------------------------- #

    def update_progress(self, job_id: str, progress: Dict[str, Any]) -> None:
        record = self._read(job_id)
        if record is None:
            return
        record.progress.update(progress)
        self._write(record)

    def complete(self, job_id: str, result_key: Optional[str] = None) -> None:
        record = self._read(job_id)
        if record is None:
            raise LeaseBroken(f"job {job_id} vanished")
        record.status = DONE
        record.error = None
        record.result_key = result_key
        self._write(record)
        self._release_lease(job_id)

    def fail(self, job_id: str, error: str) -> JobRecord:
        """Record a failure: requeue with capped exponential backoff, or
        park as ``failed`` once the attempt budget is spent."""
        record = self._read(job_id)
        if record is None:
            raise LeaseBroken(f"job {job_id} vanished")
        record.attempts += 1
        record.error = error
        if record.attempts >= record.max_attempts:
            record.status = FAILED
        else:
            record.status = QUEUED
            backoff = min(self.retry_cap, self.retry_base * (2 ** (record.attempts - 1)))
            record.not_before = time.time() + backoff
        self._write(record)
        self._release_lease(job_id)
        return record

    # -- introspection and maintenance ---------------------------------- #

    def jobs(self) -> List[JobRecord]:
        """Every job record, sorted by id (stable across listings)."""
        if not os.path.isdir(self.jobs_dir):
            return []
        records = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if name.endswith(".json"):
                record = self._read(name[: -len(".json")])
                if record is not None:
                    records.append(record)
        return records

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._read(job_id)

    def counts(self) -> Dict[str, int]:
        tally = {state: 0 for state in _STATES}
        for record in self.jobs():
            tally[record.status] += 1
        return tally

    def gc(self) -> Dict[str, int]:
        """Break stale leases, drop leases of finished jobs, and sweep
        orphaned temp files; returns counts."""
        broken = 0
        if os.path.isdir(self.leases_dir):
            for name in sorted(os.listdir(self.leases_dir)):
                if not name.endswith(".lock"):
                    continue
                job_id = name[: -len(".lock")]
                record = self._read(job_id)
                finished = record is not None and record.status in (DONE, FAILED)
                if finished or self._lease_stale(job_id):
                    self._release_lease(job_id)
                    broken += 1
        swept = len(sweep_temp_files(self.root)) if os.path.isdir(self.root) else 0
        return {"leases_broken": broken, "temp_files": swept}
