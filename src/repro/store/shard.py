"""Consistent-hash sharding over per-directory job queues.

A :class:`ShardedJobQueue` is ``K`` independent PR-5
:class:`~repro.store.scheduler.JobQueue` directories under one root::

    queue/
      shards.json          <- manifest: layout contract between hosts
      shard-0000/jobs/ ... <- each shard is a complete JobQueue
      shard-0000/leases/
      shard-0001/...

Every job id is routed to exactly one shard by hashing the id
(:func:`shard_for` — SHA-256, not Python's per-process-salted ``hash``),
so two hosts that agree on the shard *count* agree on the placement of
every job without coordination.  The count itself is the only piece of
shared configuration, and it is persisted once in ``shards.json`` at
queue creation (atomically, via ``O_CREAT | O_EXCL`` — the same
test-and-set the leases use, so two hosts racing to create the queue
cannot write conflicting manifests).  Later openers *discover* the count
from the manifest; an explicit ``shards=`` that contradicts it is a hard
:class:`ShardLayoutError`, never a silent re-layout — re-hashing in
place would strand every queued job in a directory no router looks at.

Why shard at all: a flat directory makes each claim pass O(queue depth)
in listing cost and makes every worker race on the same lease files.
With K shards, a claim pass lists one shard (depth/K names) and workers
visiting shards in per-instance randomized order rarely collide.  The
per-shard claim cursors (inherited from ``JobQueue``) then spread
repeated passes across each shard's keyspace.  Dispatch throughput is
measured by ``benchmarks/bench_scheduler.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import socket
from typing import Any, Dict, List, Optional, Union

from repro.store.atomic import atomic_write_text
from repro.store.scheduler import (
    FAILED,
    JobQueue,
    JobRecord,
    _STATES,
    default_lease_ttl,
    job_id_for,
)

#: The manifest file recording the layout contract.
MANIFEST_NAME = "shards.json"
MANIFEST_VERSION = 1

#: Sanity bounds on shard counts (4096 shards of one job each is already
#: pathological; beyond that it's certainly a typo).
MIN_SHARDS = 1
MAX_SHARDS = 4096


class ShardLayoutError(RuntimeError):
    """The on-disk shard layout contradicts what the caller asked for
    (or is missing/corrupt where one is required)."""


def shard_for(job_id: str, count: int) -> int:
    """The shard owning ``job_id`` under a ``count``-shard layout.

    Uses the first 8 bytes of SHA-256 so every process — and every host —
    computes the same placement (builtin ``hash`` is salted per process).
    """
    digest = hashlib.sha256(job_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count


def shard_name(index: int) -> str:
    return f"shard-{index:04d}"


class ShardedJobQueue:
    """K consistent-hashed :class:`JobQueue` shards behind one API.

    Drop-in for ``JobQueue`` everywhere the runners touch it: ``submit``,
    ``claim`` / ``claim_batch``, ``heartbeat``, ``update_progress``,
    ``complete``, ``fail``, ``get``, ``jobs``, ``counts``, ``revive``,
    ``gc``.  Single-job operations route by :func:`shard_for`;
    whole-queue operations fan out and aggregate.  Claiming visits
    shards in a freshly shuffled order per pass so a fleet of workers
    doesn't herd on shard 0.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        shards: Optional[int] = None,
        lease_ttl: Optional[float] = None,
        retry_base: float = 1.0,
        retry_cap: float = 60.0,
        owner: Optional[str] = None,
        rng: Optional[int] = None,
    ):
        self.root = os.fspath(root)
        self.shard_count = self._resolve_layout(shards)
        self.lease_ttl = float(lease_ttl) if lease_ttl is not None else default_lease_ttl()
        self._owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        self._rng = random.Random(rng)
        self.shards: List[JobQueue] = [
            JobQueue(
                os.path.join(self.root, shard_name(i)),
                lease_ttl=self.lease_ttl,
                retry_base=retry_base,
                retry_cap=retry_cap,
                owner=self._owner,
            )
            for i in range(self.shard_count)
        ]

    # -- layout --------------------------------------------------------- #

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _resolve_layout(self, requested: Optional[int]) -> int:
        """Discover the shard count from the manifest, or create it.

        Creation is ``O_CREAT | O_EXCL``: when two hosts race to open a
        brand-new queue, exactly one writes the manifest and the other
        reads it back — they cannot end up with different layouts.
        """
        existing = self._read_manifest()
        if existing is not None:
            if requested is not None and int(requested) != existing:
                raise ShardLayoutError(
                    f"queue at {self.root!r} is laid out as {existing} shard(s); "
                    f"refusing to open it as {requested} (re-sharding in place "
                    f"would strand queued jobs)"
                )
            return existing
        if requested is None:
            # No manifest and no request: a legacy flat queue (bare
            # jobs/ directory) keeps working as one shard only through
            # plain JobQueue — here we default to a fresh 1-shard layout.
            requested = 1
        count = int(requested)
        if not (MIN_SHARDS <= count <= MAX_SHARDS):
            raise ShardLayoutError(
                f"shard count must be in [{MIN_SHARDS}, {MAX_SHARDS}], got {count}"
            )
        if os.path.isdir(os.path.join(self.root, "jobs")):
            raise ShardLayoutError(
                f"queue at {self.root!r} holds a legacy flat jobs/ directory; "
                f"open it without shards (plain JobQueue) or migrate it first"
            )
        os.makedirs(self.root, exist_ok=True)
        payload = json.dumps(
            {"version": MANIFEST_VERSION, "shards": count}, sort_keys=True
        )
        try:
            fd = os.open(self.manifest_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            # Lost the creation race: the winner's manifest is the law.
            reread = self._read_manifest()
            if reread is None:
                raise ShardLayoutError(f"unreadable shard manifest at {self.manifest_path!r}")
            if reread != count:
                raise ShardLayoutError(
                    f"queue at {self.root!r} was concurrently created with "
                    f"{reread} shard(s), not {count}"
                )
            return reread
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return count

    def _read_manifest(self) -> Optional[int]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            raise ShardLayoutError(f"unreadable shard manifest at {self.manifest_path!r}")
        count = data.get("shards")
        if not isinstance(count, int) or not (MIN_SHARDS <= count <= MAX_SHARDS):
            raise ShardLayoutError(
                f"shard manifest at {self.manifest_path!r} declares invalid count {count!r}"
            )
        return count

    def shard_of(self, job_id: str) -> JobQueue:
        return self.shards[shard_for(job_id, self.shard_count)]

    # -- routed single-job operations ----------------------------------- #

    def submit(self, kind: str, params: Dict[str, Any], max_attempts: int = 3) -> JobRecord:
        job_id = job_id_for(kind, params)
        return self.shard_of(job_id).submit(kind, params, max_attempts=max_attempts)

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.shard_of(job_id).get(job_id)

    def heartbeat(self, job_id: str) -> None:
        self.shard_of(job_id).heartbeat(job_id)

    def lease_info(self, job_id: str) -> Optional[Dict[str, Any]]:
        return self.shard_of(job_id).lease_info(job_id)

    def heartbeat_age(self, job_id: str) -> Optional[float]:
        return self.shard_of(job_id).heartbeat_age(job_id)

    def update_progress(self, job_id: str, progress: Dict[str, Any]) -> None:
        self.shard_of(job_id).update_progress(job_id, progress)

    def complete(self, job_id: str, result_key: Optional[str] = None) -> None:
        self.shard_of(job_id).complete(job_id, result_key=result_key)

    def fail(self, job_id: str, error: str) -> JobRecord:
        return self.shard_of(job_id).fail(job_id, error)

    def _write(self, record: JobRecord) -> None:
        # Test/tooling hook, mirroring JobQueue._write's routing.
        self.shard_of(record.id)._write(record)

    # -- claiming ------------------------------------------------------- #

    def claim_batch(self, limit: int = 1) -> List[JobRecord]:
        """Take up to ``limit`` runnable jobs across shards.

        Shard order is reshuffled every pass; each shard contributes via
        its own cursor-rotated :meth:`JobQueue.claim_batch`, so a fleet
        of claimants naturally spreads over shards *and* over each
        shard's keyspace.
        """
        claimed: List[JobRecord] = []
        if limit <= 0:
            return claimed
        order = list(range(self.shard_count))
        self._rng.shuffle(order)
        for index in order:
            claimed.extend(self.shards[index].claim_batch(limit - len(claimed)))
            if len(claimed) >= limit:
                break
        return claimed

    def claim(self) -> Optional[JobRecord]:
        batch = self.claim_batch(1)
        return batch[0] if batch else None

    # -- fanned whole-queue operations ---------------------------------- #

    def jobs(self) -> List[JobRecord]:
        records: List[JobRecord] = []
        for shard in self.shards:
            records.extend(shard.jobs())
        records.sort(key=lambda r: r.id)
        return records

    def counts(self) -> Dict[str, int]:
        tally = {state: 0 for state in _STATES}
        for shard in self.shards:
            for state, n in shard.counts().items():
                tally[state] += n
        return tally

    def revive(self, job_id: Optional[str] = None) -> int:
        if job_id is not None:
            return self.shard_of(job_id).revive(job_id)
        return sum(shard.revive() for shard in self.shards)

    def gc(self, keep_terminal: Optional[float] = None) -> Dict[str, int]:
        report = {"leases_broken": 0, "temp_files": 0, "jobs_pruned": 0}
        for shard in self.shards:
            for key, n in shard.gc(keep_terminal=keep_terminal).items():
                report[key] += n
        return report

    def stats(self) -> Dict[str, Any]:
        """Aggregated claim-path counters plus a per-shard breakdown."""
        total: Dict[str, int] = {}
        per_shard = []
        for i, shard in enumerate(self.shards):
            counters = shard.stats()
            per_shard.append({"shard": i, **counters})
            for key, n in counters.items():
                total[key] = total.get(key, 0) + n
        total["shards"] = self.shard_count
        total["per_shard"] = per_shard
        return total

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard job-state tallies (the CI artifact): how evenly the
        hash spread the campaign and where failures, if any, landed."""
        rows = []
        for i, shard in enumerate(self.shards):
            row: Dict[str, Any] = {"shard": i, "name": shard_name(i)}
            row.update(shard.counts())
            rows.append(row)
        return rows
