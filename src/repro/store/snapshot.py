"""The snapshot codec: checkpoint and resume live executions.

A running :class:`~repro.core.execution.Execution` is four pieces of
state: the round number, the per-agent local states, the position of the
per-execution scramble RNG stream, and (when tracers are attached) their
metric counters.  A :class:`Snapshot` captures all four in a versioned,
JSON-enveloped record such that *resuming is invisible*: running to round
``T`` in one process is bit-identical — states, outputs, scramble
schedule, trace digests — to running to round ``k``, snapshotting,
restoring (even in another process), and running on to ``T``.  The
property suite in ``tests/store/test_snapshot_properties.py`` pins this
across all four communication models, static and dynamic networks, and
the process-parallel backend.

Layout of the envelope (JSON-safe, deterministically serialized by
:meth:`Snapshot.to_bytes` with sorted keys):

* identity — ``codec_version``, ``engine_version``, ``algorithm``, ``n``;
* position — ``round_number``, ``rng_state`` (the full Mersenne-Twister
  state of the scramble stream, or ``None`` when scrambling is off);
* state — ``states_blob`` (base64 pickle of the local-state vector; the
  one audited deep-serialization path, shared with the parallel backend's
  worker state capture via :func:`encode_states`/:func:`decode_states`),
  ``blob_sha256`` (integrity of the bytes), ``states_digest`` (the
  canonical :func:`~repro.core.engine.instrumentation.state_digest`,
  integrity of the *meaning* — two processes with different hash seeds
  pickle a set differently but digest it identically);
* observation — ``tracers``: the attached tracers' metric registries, in
  attach order.

**Version guard.**  :meth:`Snapshot.from_dict` and every restore path
reject a snapshot whose ``codec_version`` or ``engine_version`` differs
from the running code with :class:`SnapshotVersionError` — silently
stepping a snapshot across an engine generation would produce divergent
trajectories that *look* resumed.  Corrupted payloads raise
:class:`SnapshotIntegrityError` on decode, never garbage states.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.core.engine import ENGINE_VERSION
from repro.core.engine.instrumentation import state_digest
from repro.store.atomic import atomic_write_bytes

#: Generation of the snapshot envelope itself.  Bump on any change to the
#: fields or their encoding; restore refuses mismatches loudly.
#: "1" was the original envelope; "2" added the ``quotient`` field
#: (snapshots of quotient-accelerated runs carry *base* states plus the
#: fibration classes — see :mod:`repro.core.engine.quotient`).
SNAPSHOT_CODEC_VERSION = "2"


class SnapshotError(ValueError):
    """Base class for snapshot encode/decode failures."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by a different codec or engine generation."""


class SnapshotIntegrityError(SnapshotError):
    """The snapshot's payload does not match its recorded digests."""


# ---------------------------------------------------------------------- #
# the audited state-vector serialization path
# ---------------------------------------------------------------------- #

def encode_states(states: List[Any]) -> bytes:
    """Serialize a local-state vector — the single audited deep-copy /
    cross-process path for agent states (the parallel backend's worker
    capture and every checkpoint go through here)."""
    return pickle.dumps(list(states), protocol=pickle.HIGHEST_PROTOCOL)


def decode_states(blob: bytes) -> List[Any]:
    """Inverse of :func:`encode_states`."""
    states = pickle.loads(blob)
    if not isinstance(states, list):
        raise SnapshotIntegrityError(
            f"decoded state vector is a {type(states).__name__}, not a list"
        )
    return states


def copy_states(states: List[Any]) -> List[Any]:
    """A deep, detached copy of a state vector via the audited codec."""
    return decode_states(encode_states(states))


# ---------------------------------------------------------------------- #
# the snapshot record
# ---------------------------------------------------------------------- #

@dataclass
class Snapshot:
    """One checkpoint of a live execution (see the module docstring)."""

    algorithm: str
    n: int
    round_number: int
    states_blob: bytes
    states_digest: int
    rng_state: Optional[List[Any]]
    tracers: List[Dict[str, Any]] = field(default_factory=list)
    codec_version: str = SNAPSHOT_CODEC_VERSION
    engine_version: str = ENGINE_VERSION
    #: ``None`` for direct runs.  For quotient-accelerated runs
    #: (:class:`~repro.core.engine.quotient.QuotientExecution`) this is
    #: ``{"base_n": ..., "classes": [...]}`` — ``states_blob`` then holds
    #: the *base* state vector (length ``base_n``) and ``classes`` maps
    #: each of the ``n`` full-graph vertices to its base vertex, which is
    #: all a restore needs to lift.  ``n`` stays the full network size.
    quotient: Optional[Dict[str, Any]] = None

    def states(self) -> List[Any]:
        """Decode the state vector, verifying both integrity digests."""
        states = decode_states(self.states_blob)
        digest = state_digest(states)
        if digest != self.states_digest:
            raise SnapshotIntegrityError(
                f"state digest mismatch: snapshot says {self.states_digest}, "
                f"decoded states digest to {digest}"
            )
        return states

    # -- envelope ------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "codec_version": self.codec_version,
            "engine_version": self.engine_version,
            "algorithm": self.algorithm,
            "n": self.n,
            "round_number": self.round_number,
            "rng_state": self.rng_state,
            "states_b64": base64.b64encode(self.states_blob).decode("ascii"),
            "blob_sha256": hashlib.sha256(self.states_blob).hexdigest(),
            "states_digest": self.states_digest,
            "tracers": self.tracers,
            "quotient": self.quotient,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Snapshot":
        check_versions(d.get("codec_version"), d.get("engine_version"))
        try:
            blob = base64.b64decode(d["states_b64"].encode("ascii"))
        except (KeyError, AttributeError, ValueError) as exc:
            raise SnapshotIntegrityError(f"snapshot has no decodable state blob: {exc}")
        recorded = d.get("blob_sha256")
        if recorded != hashlib.sha256(blob).hexdigest():
            raise SnapshotIntegrityError(
                "state blob does not match its recorded sha256 — the snapshot "
                "file is corrupt"
            )
        return cls(
            algorithm=d["algorithm"],
            n=d["n"],
            round_number=d["round_number"],
            states_blob=blob,
            states_digest=d["states_digest"],
            rng_state=d.get("rng_state"),
            tracers=list(d.get("tracers") or []),
            quotient=d.get("quotient"),
        )

    def to_bytes(self) -> bytes:
        """Deterministic serialization of the envelope (sorted keys)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        try:
            d = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotIntegrityError(f"snapshot bytes are not a JSON envelope: {exc}")
        if not isinstance(d, dict):
            raise SnapshotIntegrityError("snapshot envelope must be a JSON object")
        return cls.from_dict(d)

    def __repr__(self) -> str:
        return (
            f"Snapshot({self.algorithm}, n={self.n}, round={self.round_number}, "
            f"codec=v{self.codec_version}/engine=v{self.engine_version})"
        )


def check_versions(codec_version: Any, engine_version: Any) -> None:
    """The restore guard: refuse snapshots from a different codec or
    engine generation (silently stepping one would produce trajectories
    that *look* resumed but diverge from the original run)."""
    if codec_version != SNAPSHOT_CODEC_VERSION:
        raise SnapshotVersionError(
            f"snapshot codec version {codec_version!r} != running codec "
            f"{SNAPSHOT_CODEC_VERSION!r}; re-run the original computation "
            "instead of restoring across codec generations"
        )
    if engine_version != ENGINE_VERSION:
        raise SnapshotVersionError(
            f"snapshot engine version {engine_version!r} != running engine "
            f"{ENGINE_VERSION!r}; trajectories are only comparable within one "
            "engine generation — recompute instead of resuming"
        )


# ---------------------------------------------------------------------- #
# capture / restore
# ---------------------------------------------------------------------- #

def _rng_state_to_json(state: Any) -> List[Any]:
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _rng_state_from_json(payload: List[Any]) -> Any:
    version, internal, gauss_next = payload
    return (version, tuple(internal), gauss_next)


def snapshot_execution(execution) -> Snapshot:
    """Capture a :class:`Snapshot` of a live execution.

    Reads only — the execution continues unperturbed.  Attached
    :class:`~repro.core.engine.trace.Tracer` observers contribute their
    metric registries (in attach order) so a restored run's counters
    continue from the checkpoint instead of restarting at zero.

    A quotient-active :class:`~repro.core.engine.quotient.QuotientExecution`
    snapshots its *base* run: base states, base scramble stream, plus the
    fibration classes in the ``quotient`` field — exponentially smaller
    than the lifted vector, and exactly what a resume needs to continue
    bit-identically on the base.
    """
    from repro.core.engine.trace import Tracer  # engine sits below the store

    quotient = None
    if getattr(execution, "quotient_active", False):
        mb = execution.minimum_base
        quotient = {"base_n": mb.base.n, "classes": list(mb.classes)}
        stepper = execution.base_execution._stepper
    else:
        if getattr(execution, "vector_active", False):
            # Vector runs snapshot their object-level states; the packed
            # arrays are a pure function of them and rebuild on restore.
            execution._materialize()
        stepper = execution._stepper
    rng = stepper._rng
    blob = encode_states(stepper.states)
    tracers = [
        observer.registry.as_dict()
        for observer in stepper.observers
        if isinstance(observer, Tracer)
    ]
    return Snapshot(
        algorithm=execution.algorithm.name(),
        n=execution.n,
        round_number=stepper.round_number,
        states_blob=blob,
        states_digest=state_digest(stepper.states),
        rng_state=None if rng is None else _rng_state_to_json(rng.getstate()),
        tracers=tracers,
        quotient=quotient,
    )


def restore_execution(execution, snapshot: Snapshot) -> Any:
    """Restore ``snapshot`` into an existing execution, in place.

    The execution must have been constructed for the *same computation*:
    same algorithm (by name), same network size, and a scramble stream
    if and only if the snapshot recorded one.  A quotient snapshot (one
    carrying a ``quotient`` field) restores only into a quotient-active
    execution over the *same* fibration classes — and vice versa, a plain
    snapshot refuses a quotient-active execution: the scramble streams of
    base and full runs are different streams, so crossing modes would
    silently desynchronize the resumed trajectory.  Returns the execution.
    """
    from repro.core.engine.trace import MetricsRegistry, Tracer

    check_versions(snapshot.codec_version, snapshot.engine_version)
    if execution.algorithm.name() != snapshot.algorithm:
        raise SnapshotError(
            f"snapshot was taken of {snapshot.algorithm!r}, cannot restore "
            f"into an execution of {execution.algorithm.name()!r}"
        )
    if execution.n != snapshot.n:
        raise SnapshotError(
            f"snapshot has {snapshot.n} agents, execution has {execution.n}"
        )
    quotient_active = getattr(execution, "quotient_active", False)
    if snapshot.quotient is not None:
        if not quotient_active:
            raise SnapshotError(
                "snapshot was taken of a quotient-accelerated run; restore "
                "it into an Execution(..., quotient=True) whose activation "
                "succeeded (resume_execution arranges this automatically)"
            )
        if list(execution.minimum_base.classes) != list(snapshot.quotient["classes"]):
            raise SnapshotError(
                "fibration mismatch: the snapshot's quotient classes differ "
                "from this execution's — same graph, same initial "
                "configuration required"
            )
        stepper = execution.base_execution._stepper
        execution._lifted_round = -1  # invalidate the cached lifted vector
    elif quotient_active:
        raise SnapshotError(
            "snapshot was taken of a direct run; a quotient-active "
            "execution cannot continue its scramble stream — restore into "
            "a plain Execution instead"
        )
    else:
        stepper = execution._stepper
    if (stepper._rng is None) != (snapshot.rng_state is None):
        raise SnapshotError(
            "scramble mismatch: snapshot and execution disagree on whether "
            "delivery scrambling is active"
        )
    stepper.states = snapshot.states()
    stepper.round_number = snapshot.round_number
    if getattr(execution, "vector_active", False):
        execution._repack()
    if snapshot.rng_state is not None:
        stepper._rng.setstate(_rng_state_from_json(snapshot.rng_state))
    restorable = [o for o in stepper.observers if isinstance(o, Tracer)]
    for tracer, registry_dict in zip(restorable, snapshot.tracers):
        tracer.registry = MetricsRegistry.from_dict(registry_dict)
    return execution


def resume_execution(
    snapshot: Snapshot,
    algorithm,
    network,
    check_model: bool = True,
) -> Any:
    """Build a fresh :class:`~repro.core.execution.Execution` positioned
    exactly at ``snapshot``.

    The algorithm and network are *not* serialized into snapshots (they
    are code and configuration, reconstructed from the job spec or the
    call site); this convenience wires them back together.  Scrambling is
    re-enabled iff the snapshot carries an RNG state (the seed value is
    irrelevant — the restored stream position overwrites it).

    A quotient snapshot resumes as a quotient-accelerated execution on
    ``network``: the base states are lifted along the recorded classes to
    rebuild the full configuration, and the execution is pinned to the
    recorded fibration (via
    :meth:`~repro.core.engine.quotient.QuotientExecution.adopt_partition`
    when re-activation lands on a different — e.g. coarser, if the states
    have gained symmetry since round 0 — partition), so the base scramble
    stream continues bit-identically.
    """
    from repro.core.execution import Execution

    check_versions(snapshot.codec_version, snapshot.engine_version)
    scramble_seed = None if snapshot.rng_state is None else 0
    if snapshot.quotient is not None:
        classes = list(snapshot.quotient["classes"])
        base_states = snapshot.states()
        lifted = [base_states[c] for c in classes]
        execution = Execution(
            algorithm,
            network,
            initial_states=lifted,
            scramble_seed=scramble_seed,
            check_model=check_model,
            quotient=True,
            quotient_ratio=1.0,
        )
        if (
            not execution.quotient_active
            or list(execution.minimum_base.classes) != classes
        ):
            try:
                execution.adopt_partition(classes)
            except ValueError as exc:
                raise SnapshotError(
                    f"snapshot's quotient classes are not an equitable "
                    f"partition of this network: {exc}"
                )
        return restore_execution(execution, snapshot)
    execution = Execution(
        algorithm,
        network,
        initial_states=snapshot.states(),
        scramble_seed=scramble_seed,
        check_model=check_model,
    )
    return restore_execution(execution, snapshot)


# ---------------------------------------------------------------------- #
# snapshot files and the periodic checkpoint hook
# ---------------------------------------------------------------------- #

def write_snapshot(path: Union[str, "os.PathLike"], snapshot: Snapshot) -> None:  # noqa: F821
    """Write a snapshot file atomically (a kill mid-write leaves the
    previous checkpoint intact, never a torn one)."""
    atomic_write_bytes(path, snapshot.to_bytes())


def read_snapshot(path: Union[str, "os.PathLike"]) -> Snapshot:  # noqa: F821
    """Read a snapshot file (raising :class:`SnapshotIntegrityError` /
    :class:`SnapshotVersionError` on corrupt or cross-generation files)."""
    with open(path, "rb") as fh:
        return Snapshot.from_bytes(fh.read())


class Checkpointer:
    """A round observer that persists a snapshot every ``every`` rounds.

    Attach with :meth:`Execution.checkpoint_to` (or manually via
    ``execution.attach``); each write goes through :func:`write_snapshot`,
    so the file on disk is always a complete, restorable checkpoint —
    the newest one that finished writing.  ``save()`` forces an
    off-schedule checkpoint (the batch runners call it after the final
    round so a completed run's checkpoint is never stale).
    """

    def __init__(self, execution, path, every: int = 10):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1 round")
        self.execution = execution
        self.path = path
        self.every = every
        self.saved_rounds: List[int] = []

    def on_round(self, record) -> None:
        if record.round_number % self.every == 0:
            self.save()

    def save(self) -> Snapshot:
        snapshot = snapshot_execution(self.execution)
        write_snapshot(self.path, snapshot)
        self.saved_rounds.append(snapshot.round_number)
        return snapshot
