"""Tests for degree-blind constant-weight averaging ([11]'s regime)."""

import pytest

from repro.algorithms.constant_weight import ConstantWeightAveraging
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.core.convergence import run_until_asymptotic
from repro.core.execution import Execution
from repro.core.models import CommunicationModel
from repro.dynamics.generators import random_dynamic_symmetric
from repro.graphs.builders import (
    bidirectional_ring,
    path_graph,
    random_symmetric_connected,
    star_graph,
)

INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
AVG = sum(INPUTS) / 6


class TestBasics:
    def test_is_a_pure_broadcast_algorithm(self):
        alg = ConstantWeightAveraging(8)
        assert alg.model is CommunicationModel.SYMMETRIC
        # The message depends on the state alone.
        assert alg.message((2.5,)) == 2.5

    def test_bound_validated(self):
        with pytest.raises(ValueError):
            ConstantWeightAveraging(1)

    def test_average_invariant_each_round(self):
        g = random_symmetric_connected(6, seed=1)
        ex = Execution(ConstantWeightAveraging(8), g, inputs=INPUTS)
        for _ in range(20):
            ex.step()
            assert sum(ex.outputs()) / 6 == pytest.approx(AVG)

    def test_estimates_stay_in_hull(self):
        g = star_graph(6)
        ex = Execution(ConstantWeightAveraging(8), g, inputs=INPUTS)
        for _ in range(30):
            ex.step()
            assert min(INPUTS) - 1e-12 <= min(ex.outputs())
            assert max(ex.outputs()) <= max(INPUTS) + 1e-12


class TestConvergence:
    @pytest.mark.parametrize("builder", [bidirectional_ring, path_graph, star_graph])
    def test_static_families(self, builder):
        g = builder(6)
        ex = Execution(ConstantWeightAveraging(8), g, inputs=INPUTS)
        report = run_until_asymptotic(ex, 4000, tolerance=1e-8, target=AVG)
        assert report.converged

    def test_dynamic_symmetric(self):
        dyn = random_dynamic_symmetric(6, seed=2)
        ex = Execution(ConstantWeightAveraging(8), dyn, inputs=INPUTS)
        report = run_until_asymptotic(ex, 4000, tolerance=1e-8, target=AVG)
        assert report.converged

    def test_loose_bound_still_correct_but_slower(self):
        g = random_symmetric_connected(6, seed=3)

        def rounds(bound):
            ex = Execution(ConstantWeightAveraging(bound), g, inputs=INPUTS)
            report = run_until_asymptotic(ex, 20000, tolerance=1e-8, target=AVG)
            assert report.converged
            return report.stabilization_round

        assert rounds(64) > rounds(8)  # pessimism costs rounds, not correctness

    def test_slower_than_metropolis(self):
        # The paper's remark: dropping outdegree awareness costs time.
        dyn = random_dynamic_symmetric(6, seed=4)

        def rounds(alg):
            ex = Execution(alg, dyn, inputs=INPUTS)
            report = run_until_asymptotic(ex, 20000, tolerance=1e-8, target=AVG)
            assert report.converged
            return report.stabilization_round

        blind = rounds(ConstantWeightAveraging(12))
        adaptive = rounds(MetropolisAlgorithm())
        assert blind >= adaptive
