"""Tests for ConstantWeightFrequency — the [11]-style symmetric pipeline."""

from fractions import Fraction

import pytest

from repro.algorithms.constant_weight import ConstantWeightFrequency
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_symmetric
from repro.functions.library import AVERAGE, SUM
from repro.graphs.builders import bidirectional_ring, star_graph

INPUTS = [3, 1, 1, 4, 1, 4]


class TestConstruction:
    def test_exact_needs_bound(self):
        with pytest.raises(ValueError):
            ConstantWeightFrequency(mode="exact")

    def test_multiset_needs_n(self):
        with pytest.raises(ValueError):
            ConstantWeightFrequency(mode="multiset")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            ConstantWeightFrequency(mode="nope", n_bound=4)


class TestMassConservation:
    def test_per_value_mass_invariant(self):
        g = bidirectional_ring(6)
        alg = ConstantWeightFrequency(mode="exact", n_bound=8)
        ex = Execution(alg, g, inputs=INPUTS)
        for _ in range(15):
            ex.step()
            for (value, mult) in ((1, 3), (4, 2), (3, 1)):
                total = sum(s.get(value, 0.0) for s in ex.states)
                assert total == pytest.approx(mult)


class TestExactness:
    @pytest.mark.parametrize("seed", range(3))
    def test_exact_frequencies_dynamic(self, seed):
        dyn = random_dynamic_symmetric(6, seed=seed)
        alg = ConstantWeightFrequency(mode="exact", n_bound=8)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 3000, patience=10)
        assert report.converged
        assert report.value[1] == Fraction(1, 2)

    def test_average_composition(self):
        dyn = random_dynamic_symmetric(6, seed=3)
        alg = ConstantWeightFrequency(mode="exact", n_bound=8, f=AVERAGE)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS), 3000, patience=10, target=AVERAGE(INPUTS)
        )
        assert report.converged

    def test_multiset_and_sum_with_known_n(self):
        dyn = random_dynamic_symmetric(6, seed=4)
        alg = ConstantWeightFrequency(mode="multiset", n=6)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 3000, patience=10)
        assert report.converged
        assert report.value == {1: 3, 3: 1, 4: 2}
        alg = ConstantWeightFrequency(mode="multiset", n=6, f=SUM)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS), 3000, patience=10, target=SUM(INPUTS)
        )
        assert report.converged

    def test_star_topology(self):
        g = star_graph(6)
        alg = ConstantWeightFrequency(mode="exact", n_bound=7)
        report = run_until_stable(Execution(alg, g, inputs=INPUTS), 3000, patience=10)
        assert report.converged


class TestNoOutdegreeNeeded:
    def test_message_is_state_only(self):
        # The defining property of the pure symmetric model: σ : Q -> M.
        alg = ConstantWeightFrequency(mode="exact", n_bound=4)
        state = {7: 1.0}
        assert alg.message(state) is state
