"""Tests for the three fibre-cardinality solvers (eqs. (1), (3), (4))."""

import pytest

from repro.algorithms.fibre_solver import (
    fibre_ratios_outdegree,
    fibre_ratios_ports,
    fibre_ratios_symmetric,
)
from repro.algorithms.minimum_base_alg import (
    OutdegreeViewAlgorithm,
    PortViewAlgorithm,
    SymmetricViewAlgorithm,
    extract_base,
)
from repro.core.execution import Execution
from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import (
    bidirectional_ring,
    random_symmetric_connected,
    star_graph,
)
from repro.graphs.digraph import DiGraph
from repro.linalg.exact import gcd_list


def distributed_base(algorithm, graph, rounds=24):
    ex = Execution(algorithm, graph, inputs=list(graph.values))
    ex.run(rounds)
    base = ex.outputs()[0]
    assert base is not None
    return base


def reference_ratios(graph):
    mb = minimum_base(graph)
    sizes = mb.fibre_sizes
    g = gcd_list(sizes)
    return sorted(s // g for s in sizes)


class TestOutdegreeSolver:
    def test_star_ratios(self):
        g = star_graph(4, values=["h", "l", "l", "l"])
        base = distributed_base(OutdegreeViewAlgorithm(), g)
        z = fibre_ratios_outdegree(base)
        assert z is not None
        assert sorted(z) == [1, 3]

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_centralized_fibres(self, seed):
        g = random_symmetric_connected(6, seed=seed).with_values([1, 2, 1, 2, 1, 2])
        base = distributed_base(OutdegreeViewAlgorithm(), g)
        z = fibre_ratios_outdegree(base)
        assert z is not None
        assert sorted(z) == reference_ratios(g)

    def test_unlabeled_base_rejected(self):
        # The solver needs G_od labels: plain values carry no b_i.
        base = DiGraph(2, [(0, 1), (1, 0), (0, 0), (1, 1)], values=[1, 2])
        assert fibre_ratios_outdegree(base) is None

    def test_non_integer_outdegree_rejected(self):
        base = DiGraph(1, [(0, 0)], values=[(1, "x")])
        assert fibre_ratios_outdegree(base) is None

    def test_manual_g_od_base(self):
        # Star base, hand-built: hub label ('h', 4), leaf label ('l', 2),
        # leaf->hub x3, hub->leaf x1, self-loops.
        base = DiGraph(
            2,
            [(1, 0), (1, 0), (1, 0), (0, 1), (0, 0), (1, 1)],
            values=[("h", 4), ("l", 2)],
        )
        assert fibre_ratios_outdegree(base) == [1, 3]


class TestPortSolver:
    def test_all_ones(self):
        g = bidirectional_ring(6, values=[1, 2, 1, 2, 1, 2])
        base = distributed_base(PortViewAlgorithm(), g)
        z = fibre_ratios_ports(base)
        assert z == [1] * base.n

    def test_duplicate_ports_rejected(self):
        base = DiGraph(1, [(0, 0, 0), (0, 0, 0)], values=[1])
        assert fibre_ratios_ports(base) is None

    def test_non_port_colors_rejected(self):
        base = DiGraph(1, [(0, 0, "x")], values=[1])
        assert fibre_ratios_ports(base) is None


class TestSymmetricSolver:
    def test_star_ratios(self):
        g = star_graph(4, values=["h", "l", "l", "l"])
        base = distributed_base(SymmetricViewAlgorithm(), g)
        z = fibre_ratios_symmetric(base)
        assert z is not None
        assert sorted(z) == [1, 3]

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_centralized_fibres(self, seed):
        g = random_symmetric_connected(7, seed=seed).with_values(
            [1, 2, 1, 2, 1, 2, 1]
        )
        base = distributed_base(SymmetricViewAlgorithm(), g, rounds=30)
        z = fibre_ratios_symmetric(base)
        assert z is not None
        assert sorted(z) == reference_ratios(g)

    def test_asymmetric_support_rejected(self):
        base = DiGraph(2, [(0, 1), (0, 0), (1, 1)], values=[1, 2])
        assert fibre_ratios_symmetric(base) is None

    def test_inconsistent_ratios_rejected(self):
        # A triangle where pairwise ratios multiply to != 1 around a cycle.
        base = DiGraph(
            3,
            [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (0, 2), (2, 0),
             (0, 0), (1, 1), (2, 2)],
            values=[1, 2, 3],
        )
        # Ratios: z1/z0 = 1, z2/z1 = 1, but z2/z0 = 1/2: inconsistent.
        assert fibre_ratios_symmetric(base) is None


class TestCrossSolverAgreement:
    def test_outdegree_and_symmetric_agree(self):
        g = star_graph(5, values=["h", "l", "l", "l", "l"])
        base_od = distributed_base(OutdegreeViewAlgorithm(), g)
        base_sym = distributed_base(SymmetricViewAlgorithm(), g)
        z_od = fibre_ratios_outdegree(base_od)
        z_sym = fibre_ratios_symmetric(base_sym)
        assert sorted(z_od) == sorted(z_sym) == [1, 4]
