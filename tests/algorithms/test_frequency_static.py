"""Tests for the assembled static algorithm (Theorem 4.1 positive side)."""

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge
from repro.functions.library import AVERAGE, MAXIMUM, MINIMUM, frequency_of
from repro.graphs.builders import (
    bidirectional_ring,
    de_bruijn_graph,
    random_strongly_connected,
    random_symmetric_connected,
    star_graph,
    torus,
)

INPUTS = [3, 1, 1, 4, 1, 4]

ENRICHED = [CM.OUTDEGREE_AWARE, CM.SYMMETRIC, CM.OUTPUT_PORT_AWARE]


def graph_for(model, n=6, seed=0):
    if model is CM.SYMMETRIC:
        return random_symmetric_connected(n, seed=seed)
    return random_strongly_connected(n, seed=seed)


class TestConstruction:
    def test_broadcast_rejected(self):
        with pytest.raises(ValueError):
            StaticFunctionAlgorithm(AVERAGE, CM.SIMPLE_BROADCAST)

    def test_exact_n_requires_n(self):
        with pytest.raises(ValueError):
            StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC, knowledge=Knowledge.EXACT_N)


class TestFrequencyComputation:
    @pytest.mark.parametrize("model", ENRICHED)
    def test_average_exact(self, model):
        g = graph_for(model)
        alg = StaticFunctionAlgorithm(AVERAGE, model)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=AVERAGE(INPUTS)
        )
        assert report.converged

    @pytest.mark.parametrize("model", ENRICHED)
    def test_set_based_functions_also_work(self, model):
        g = graph_for(model, seed=1)
        for f in (MAXIMUM, MINIMUM):
            alg = StaticFunctionAlgorithm(f, model)
            report = run_until_stable(
                Execution(alg, g, inputs=INPUTS), 60, patience=4, target=f(INPUTS)
            )
            assert report.converged

    @pytest.mark.parametrize("model", ENRICHED)
    def test_value_frequency(self, model):
        g = graph_for(model, seed=2)
        f = frequency_of(1)
        alg = StaticFunctionAlgorithm(f, model)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=f(INPUTS)
        )
        assert report.converged

    def test_multiplicity_blind_but_frequency_exact(self):
        # Two rings carrying the same frequencies but different sizes give
        # the same (correct) average.
        small = bidirectional_ring(4, values=[1, 2, 1, 2])
        big = bidirectional_ring(8, values=[1, 2, 1, 2, 1, 2, 1, 2])
        for g in (small, big):
            alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
            report = run_until_stable(
                Execution(alg, g, inputs=list(g.values)), 60, patience=4
            )
            assert report.converged
            assert float(report.value) == 1.5


class TestGraphFamilies:
    @pytest.mark.parametrize(
        "graph",
        [
            star_graph(6, values=[2, 1, 1, 1, 1, 1]),
            torus(2, 3, values=INPUTS),
            bidirectional_ring(6, values=INPUTS),
        ],
    )
    def test_symmetric_families(self, graph):
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, graph, inputs=list(graph.values)),
            80,
            patience=4,
            target=AVERAGE(list(graph.values)),
        )
        assert report.converged

    def test_de_bruijn_outdegree(self):
        g = de_bruijn_graph(2, 3, values=[1, 2, 1, 2, 1, 2, 1, 2])
        alg = StaticFunctionAlgorithm(AVERAGE, CM.OUTDEGREE_AWARE)
        report = run_until_stable(
            Execution(alg, g, inputs=list(g.values)), 80, patience=4
        )
        assert report.converged
        assert float(report.value) == 1.5


class TestOutputsBeforeStabilization:
    def test_none_in_early_rounds(self):
        g = bidirectional_ring(6, values=INPUTS)
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        ex = Execution(alg, g, inputs=INPUTS)
        ex.step()
        assert all(o is None for o in ex.outputs())
