"""Tests for set flooding (the simple gossip algorithm)."""

from repro.algorithms.gossip import GossipAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_strongly_connected, sparse_pulsed_dynamic
from repro.dynamics.starts import AsynchronousStartGraph
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.graphs.builders import bidirectional_ring, directed_ring
from repro.graphs.properties import diameter


class TestStatic:
    def test_computes_support(self):
        g = directed_ring(5)
        ex = Execution(GossipAlgorithm(), g, inputs=[1, 2, 2, 3, 1])
        ex.run(diameter(g))
        assert ex.outputs() == [frozenset({1, 2, 3})] * 5

    def test_stabilizes_within_diameter(self):
        g = bidirectional_ring(8)
        ex = Execution(GossipAlgorithm(), g, inputs=list(range(8)))
        report = run_until_stable(ex, max_rounds=20, patience=3)
        assert report.converged
        assert report.stabilization_round <= diameter(g) + 1

    def test_set_based_functions(self):
        g = directed_ring(4)
        for fn, expected in ((max, 9), (min, 2), (len, 3)):
            ex = Execution(GossipAlgorithm(fn), g, inputs=[2, 9, 5, 2])
            ex.run(4)
            assert ex.unanimous_output() == expected

    def test_multiplicities_invisible(self):
        # Gossip cannot distinguish [1, 2] multiplicities — by design.
        g1 = directed_ring(4)
        a = Execution(GossipAlgorithm(), g1, inputs=[1, 1, 1, 2]).run(5)
        b = Execution(GossipAlgorithm(), g1, inputs=[1, 2, 2, 2]).run(5)
        assert a.outputs() == b.outputs()


class TestDynamic:
    def test_works_on_random_dynamic(self):
        dyn = random_dynamic_strongly_connected(6, seed=5)
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[3, 1, 4, 1, 5, 9])
        report = run_until_stable(ex, max_rounds=30, patience=3, target=9)
        assert report.converged

    def test_survives_disconnected_rounds(self):
        dyn = sparse_pulsed_dynamic(5, pulse_every=3, seed=1)
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[1, 2, 3, 4, 5])
        report = run_until_stable(ex, max_rounds=60, patience=3, target=5)
        assert report.converged

    def test_tolerates_async_starts(self):
        base = StaticAsDynamic(bidirectional_ring(5))
        dyn = AsynchronousStartGraph(base, [1, 3, 2, 5, 1])
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[1, 2, 3, 4, 5])
        report = run_until_stable(ex, max_rounds=30, patience=3, target=5)
        assert report.converged


class TestNotSelfStabilizing:
    def test_corrupted_state_never_flushed(self):
        # A ghost value in one agent's initial state floods everywhere:
        # gossip is not self-stabilizing (§1's requirement discussion).
        g = directed_ring(3)
        states = [frozenset({1}), frozenset({1, 99}), frozenset({1})]
        ex = Execution(GossipAlgorithm(max), g, initial_states=states)
        ex.run(5)
        assert ex.unanimous_output() == 99
