"""Tests for history-class counting in dynamic symmetric networks."""

from fractions import Fraction

import pytest

from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.network_class import Knowledge
from repro.dynamics.generators import random_dynamic_symmetric, sparse_pulsed_dynamic
from repro.functions.library import AVERAGE, SUM
from repro.graphs.builders import bidirectional_ring, path_graph, star_graph

INPUTS5 = [3, 1, 1, 4, 1]


class TestConstruction:
    def test_exact_n_requires_n(self):
        with pytest.raises(ValueError):
            HistoryTreeAlgorithm(knowledge=Knowledge.EXACT_N)

    def test_bound_degrades_to_none(self):
        alg = HistoryTreeAlgorithm(knowledge=Knowledge.BOUND_N)
        assert alg.knowledge is Knowledge.NONE


class TestStaticSymmetric:
    @pytest.mark.parametrize("builder", [bidirectional_ring, path_graph, star_graph])
    def test_exact_frequencies(self, builder):
        g = builder(5)
        alg = HistoryTreeAlgorithm()
        report = run_until_stable(Execution(alg, g, inputs=INPUTS5), 24, patience=4)
        assert report.converged
        assert report.value == {1: Fraction(3, 5), 3: Fraction(1, 5), 4: Fraction(1, 5)}

    def test_uniform_inputs(self):
        g = bidirectional_ring(4)
        alg = HistoryTreeAlgorithm()
        report = run_until_stable(Execution(alg, g, inputs=[7, 7, 7, 7]), 16, patience=3)
        assert report.converged
        assert report.value == {7: Fraction(1)}


class TestDynamicSymmetric:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_dynamic(self, seed):
        dyn = random_dynamic_symmetric(5, seed=seed)
        alg = HistoryTreeAlgorithm()
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS5), 24, patience=4)
        assert report.converged
        assert report.value[1] == Fraction(3, 5)

    def test_pulsed_dynamic(self):
        dyn = sparse_pulsed_dynamic(4, pulse_every=2, seed=1, symmetric=True)
        alg = HistoryTreeAlgorithm()
        report = run_until_stable(
            Execution(alg, dyn, inputs=[1, 1, 2, 2]), 40, patience=4
        )
        assert report.converged
        assert report.value == {1: Fraction(1, 2), 2: Fraction(1, 2)}

    def test_average_composition(self):
        dyn = random_dynamic_symmetric(5, seed=4)
        alg = HistoryTreeAlgorithm(f=AVERAGE)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS5), 24, patience=4, target=AVERAGE(INPUTS5)
        )
        assert report.converged


class TestKnowledgeVariants:
    def test_exact_n_gives_multiset(self):
        dyn = random_dynamic_symmetric(5, seed=5)
        alg = HistoryTreeAlgorithm(knowledge=Knowledge.EXACT_N, n=5)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS5), 24, patience=4)
        assert report.converged
        assert report.value == {1: 3, 3: 1, 4: 1}

    def test_exact_n_computes_sum(self):
        dyn = random_dynamic_symmetric(5, seed=6)
        alg = HistoryTreeAlgorithm(knowledge=Knowledge.EXACT_N, n=5, f=SUM)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS5), 24, patience=4, target=SUM(INPUTS5)
        )
        assert report.converged

    def test_leader_gives_multiset(self):
        dyn = random_dynamic_symmetric(5, seed=7)
        linputs = [(v, i == 0) for i, v in enumerate(INPUTS5)]
        alg = HistoryTreeAlgorithm(knowledge=Knowledge.LEADER, leader_count=1)
        report = run_until_stable(Execution(alg, dyn, inputs=linputs), 24, patience=4)
        assert report.converged
        assert report.value == {1: 3, 3: 1, 4: 1}

    def test_early_rounds_output_none(self):
        g = bidirectional_ring(5)
        alg = HistoryTreeAlgorithm()
        ex = Execution(alg, g, inputs=INPUTS5)
        ex.step()
        assert all(o is None for o in ex.outputs())
