"""Tests for Metropolis averaging in symmetric networks."""

import pytest

from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.core.convergence import run_until_asymptotic
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.generators import random_dynamic_symmetric, sparse_pulsed_dynamic
from repro.dynamics.starts import AsynchronousStartGraph
from repro.graphs.builders import (
    bidirectional_ring,
    path_graph,
    random_symmetric_connected,
    star_graph,
)


INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]


class TestStatic:
    @pytest.mark.parametrize("builder", [bidirectional_ring, path_graph, star_graph])
    def test_average_on_symmetric_families(self, builder):
        g = builder(6)
        ex = Execution(MetropolisAlgorithm(), g, inputs=INPUTS)
        report = run_until_asymptotic(ex, 2000, tolerance=1e-8, target=sum(INPUTS) / 6)
        assert report.converged

    def test_average_invariant_each_round(self):
        g = random_symmetric_connected(6, seed=3)
        ex = Execution(MetropolisAlgorithm(), g, inputs=INPUTS)
        for _ in range(20):
            ex.step()
            assert sum(ex.outputs()) / 6 == pytest.approx(sum(INPUTS) / 6)

    def test_lazy_variant_converges(self):
        g = random_symmetric_connected(6, seed=4)
        ex = Execution(MetropolisAlgorithm(lazy=True), g, inputs=INPUTS)
        report = run_until_asymptotic(ex, 3000, tolerance=1e-8, target=sum(INPUTS) / 6)
        assert report.converged


class TestDynamic:
    def test_random_dynamic_symmetric(self):
        dyn = random_dynamic_symmetric(6, seed=6)
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=INPUTS)
        report = run_until_asymptotic(ex, 2000, tolerance=1e-8, target=sum(INPUTS) / 6)
        assert report.converged

    def test_pulsed_symmetric(self):
        dyn = sparse_pulsed_dynamic(5, pulse_every=2, seed=3, symmetric=True)
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=INPUTS[:5])
        report = run_until_asymptotic(
            ex, 4000, tolerance=1e-7, target=sum(INPUTS[:5]) / 5
        )
        assert report.converged

    def test_asynchronous_starts(self):
        base = StaticAsDynamic(random_symmetric_connected(5, seed=5))
        dyn = AsynchronousStartGraph(base, [1, 3, 2, 4, 1])
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=INPUTS[:5])
        report = run_until_asymptotic(
            ex, 3000, tolerance=1e-7, target=sum(INPUTS[:5]) / 5
        )
        assert report.converged

    def test_estimates_stay_in_convex_hull(self):
        dyn = random_dynamic_symmetric(6, seed=8)
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=INPUTS)
        for _ in range(50):
            ex.step()
            assert min(INPUTS) - 1e-12 <= min(ex.outputs())
            assert max(ex.outputs()) <= max(INPUTS) + 1e-12
