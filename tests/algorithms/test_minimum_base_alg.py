"""Tests for the distributed minimum-base construction (§3.2, §4.2)."""

import pytest

from repro.algorithms.minimum_base_alg import (
    DistributedMinimumBase,
    OutdegreeViewAlgorithm,
    PortViewAlgorithm,
    SymmetricViewAlgorithm,
    extract_base,
)
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import (
    bidirectional_ring,
    random_symmetric_connected,
    star_graph,
)
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.properties import diameter


def run_and_extract(algorithm, graph, inputs, rounds):
    ex = Execution(algorithm, graph, inputs=inputs)
    ex.run(rounds)
    return ex.outputs()


class TestFactory:
    def test_model_dispatch(self):
        assert isinstance(DistributedMinimumBase(CM.OUTDEGREE_AWARE), OutdegreeViewAlgorithm)
        assert isinstance(DistributedMinimumBase(CM.SYMMETRIC), SymmetricViewAlgorithm)
        assert isinstance(DistributedMinimumBase(CM.OUTPUT_PORT_AWARE), PortViewAlgorithm)

    def test_broadcast_rejected(self):
        with pytest.raises(ValueError):
            DistributedMinimumBase(CM.SIMPLE_BROADCAST)


class TestExtraction:
    def test_too_shallow_returns_none(self):
        alg = SymmetricViewAlgorithm()
        state = alg.initial_state(1)
        assert extract_base(state[1], alg.builder) is None

    def test_symmetric_base_matches_centralized(self):
        g = bidirectional_ring(6, values=[1, 2, 1, 2, 1, 2])
        alg = SymmetricViewAlgorithm()
        rounds = 4 * (6 + diameter(g))
        outs = run_and_extract(alg, g, list(g.values), rounds)
        truth = minimum_base(g).base
        for base in outs:
            assert base is not None
            assert base.n == truth.n
            assert sorted(map(repr, base.values)) == sorted(map(repr, truth.values))

    def test_all_agents_agree(self):
        g = random_symmetric_connected(6, seed=7).with_values([1, 1, 2, 2, 1, 2])
        alg = SymmetricViewAlgorithm()
        outs = run_and_extract(alg, g, list(g.values), 30)
        reprs = {repr(sorted(map(repr, b.values))) for b in outs if b is not None}
        assert len(reprs) == 1

    def test_outdegree_base_carries_labels(self):
        g = star_graph(4, values=["h", "l", "l", "l"])
        alg = OutdegreeViewAlgorithm()
        outs = run_and_extract(alg, g, list(g.values), 20)
        base = outs[0]
        assert base is not None
        # Vertex labels are G_od's (value, outdegree) pairs: the hub has
        # outdegree 4, the leaves 2.
        assert sorted(base.values, key=repr) == [("h", 4), ("l", 2)]

    def test_outdegree_separates_hidden_degree_twins(self):
        # Regression: vertices whose *annotated in-views* coincide but
        # whose outdegrees differ (each sees both annotations — one via
        # its self-loop, one from the other) must still be separated,
        # because §4.2's base is that of the double-valued graph G_od.
        from repro.graphs.builders import random_strongly_connected

        g = random_strongly_connected(4, seed=1)  # the hypothesis-found case
        assert sorted(g.outdegree(v) for v in g.vertices()) == [2, 2, 3, 3]
        alg = OutdegreeViewAlgorithm()
        outs = run_and_extract(alg, g, [0, 0, 0, 0], 20)
        base = outs[0]
        assert base is not None
        assert base.n == 4  # G_od is fibration prime here
        from repro.algorithms.fibre_solver import fibre_ratios_outdegree

        assert fibre_ratios_outdegree(base) == [1, 1, 1, 1]

    def test_port_base_is_covering_quotient(self):
        g = bidirectional_ring(6, values=[1, 2, 1, 2, 1, 2])
        alg = PortViewAlgorithm()
        outs = run_and_extract(alg, g, list(g.values), 24)
        base = outs[0]
        assert base is not None
        # With ports the quotient is a covering: out-edges carry distinct
        # port colors at each base vertex.
        for v in base.vertices():
            ports = [e.color for e in base.out_edges(v)]
            assert len(set(ports)) == len(ports)


class TestStabilization:
    def test_stabilizes_by_2n_plus_2d(self):
        for seed in range(3):
            g = random_symmetric_connected(7, seed=seed).with_values(
                [1, 2, 1, 2, 1, 2, 1]
            )
            truth = minimum_base(g).base
            alg = SymmetricViewAlgorithm()
            ex = Execution(alg, g, inputs=list(g.values))
            bound = 2 * (7 + diameter(g)) + 2
            ex.run(bound)
            for base in ex.outputs():
                assert base is not None
                assert are_isomorphic(base, truth)

    def test_output_stable_after_stabilization(self):
        g = bidirectional_ring(4, values=[1, 2, 1, 2])
        alg = SymmetricViewAlgorithm()
        ex = Execution(alg, g, inputs=[1, 2, 1, 2])
        ex.run(16)
        first = [repr(sorted(map(repr, b.values))) for b in ex.outputs()]
        ex.run(8)
        second = [repr(sorted(map(repr, b.values))) for b in ex.outputs()]
        assert first == second


class TestSelfStabilization:
    def test_recovers_from_garbage_views(self):
        # Arbitrary (wrong) initial views are outgrown: the extraction only
        # reads the top half of the view, which is rebuilt from scratch.
        g = bidirectional_ring(4, values=[1, 2, 1, 2])
        alg = SymmetricViewAlgorithm()
        garbage = alg.builder.node(
            99, [(None, alg.builder.leaf(98)), (None, alg.builder.leaf(97))]
        )
        states = [(v, garbage) for v in [1, 2, 1, 2]]
        ex = Execution(alg, g, initial_states=states)
        ex.run(24)
        truth = minimum_base(g).base
        for base in ex.outputs():
            assert base is not None
            assert sorted(map(repr, base.values)) == sorted(map(repr, truth.values))
