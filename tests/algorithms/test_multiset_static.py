"""Tests for multiset recovery with known n or leaders (Corollaries 4.3–4.4)."""

import pytest

from repro.algorithms.multiset_static import known_size_algorithm, leader_algorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.functions.library import SIZE, SUM
from repro.graphs.builders import (
    bidirectional_ring,
    random_strongly_connected,
    random_symmetric_connected,
    star_graph,
)

INPUTS = [3, 1, 1, 4, 1, 4]
ENRICHED = [CM.OUTDEGREE_AWARE, CM.SYMMETRIC, CM.OUTPUT_PORT_AWARE]


def graph_for(model, n=6, seed=0):
    if model is CM.SYMMETRIC:
        return random_symmetric_connected(n, seed=seed)
    return random_strongly_connected(n, seed=seed)


class TestKnownSize:
    @pytest.mark.parametrize("model", ENRICHED)
    def test_sum(self, model):
        g = graph_for(model)
        alg = known_size_algorithm(SUM, model, n=6)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=SUM(INPUTS)
        )
        assert report.converged

    def test_size_recovered(self):
        g = graph_for(CM.SYMMETRIC, seed=3)
        alg = known_size_algorithm(SIZE, CM.SYMMETRIC, n=6)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=6
        )
        assert report.converged

    def test_collapsed_ring_with_known_n(self):
        # Uniform values on a ring: one fibre, ratios (1); with n known the
        # multiplicity n/1 is exact.
        g = bidirectional_ring(5, values=[7, 7, 7, 7, 7])
        alg = known_size_algorithm(SUM, CM.SYMMETRIC, n=5)
        report = run_until_stable(
            Execution(alg, g, inputs=[7] * 5), 40, patience=4, target=35
        )
        assert report.converged


class TestLeader:
    @pytest.mark.parametrize("model", ENRICHED)
    def test_sum_with_one_leader(self, model):
        g = graph_for(model, seed=1)
        linputs = [(v, i == 0) for i, v in enumerate(INPUTS)]
        alg = leader_algorithm(SUM, model, leader_count=1)
        report = run_until_stable(
            Execution(alg, g, inputs=linputs), 60, patience=4, target=SUM(INPUTS)
        )
        assert report.converged

    def test_two_leaders_with_known_count(self):
        g = graph_for(CM.SYMMETRIC, seed=2)
        linputs = [(v, i < 2) for i, v in enumerate(INPUTS)]
        alg = leader_algorithm(SUM, CM.SYMMETRIC, leader_count=2)
        report = run_until_stable(
            Execution(alg, g, inputs=linputs), 60, patience=4, target=SUM(INPUTS)
        )
        assert report.converged

    def test_leader_breaks_ring_symmetry(self):
        # Uniform values, but one leader: the full multiset (hence n and
        # the sum) becomes computable on a plain ring.
        values = [7] * 6
        linputs = [(7, i == 0) for i in range(6)]
        g = bidirectional_ring(6)
        alg = leader_algorithm(SUM, CM.SYMMETRIC, leader_count=1)
        report = run_until_stable(
            Execution(alg, g, inputs=linputs), 60, patience=4, target=42
        )
        assert report.converged

    def test_leader_on_star(self):
        g = star_graph(5)
        linputs = [(v, i == 0) for i, v in enumerate([10, 1, 1, 1, 1])]
        alg = leader_algorithm(SUM, CM.SYMMETRIC, leader_count=1)
        report = run_until_stable(
            Execution(alg, g, inputs=linputs), 60, patience=4, target=14
        )
        assert report.converged
