"""Tests for Push-Sum (Theorem 5.2)."""

import pytest

from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.convergence import run_until_asymptotic
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.generators import (
    random_dynamic_strongly_connected,
    sparse_pulsed_dynamic,
)
from repro.dynamics.starts import AsynchronousStartGraph
from repro.functions.library import quot_sum
from repro.graphs.builders import bidirectional_ring, directed_ring, star_graph


class TestStaticConvergence:
    @pytest.mark.parametrize("builder", [directed_ring, bidirectional_ring, star_graph])
    def test_average_on_static_graphs(self, builder):
        g = builder(6)
        inputs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        ex = Execution(PushSumAlgorithm(), g, inputs=inputs)
        report = run_until_asymptotic(ex, 400, tolerance=1e-9, target=sum(inputs) / 6)
        assert report.converged

    def test_quot_sum_with_weights(self):
        g = directed_ring(4)
        pairs = [(2.0, 1.0), (4.0, 2.0), (6.0, 3.0), (0.0, 2.0)]
        ex = Execution(PushSumAlgorithm(), g, inputs=pairs)
        report = run_until_asymptotic(ex, 400, tolerance=1e-9, target=quot_sum(pairs))
        assert report.converged

    def test_mass_conservation_invariant(self):
        g = directed_ring(5)
        inputs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ex = Execution(PushSumAlgorithm(), g, inputs=inputs)
        for _ in range(10):
            ex.step()
            ys = sum(s[0] for s in ex.states)
            zs = sum(s[1] for s in ex.states)
            assert ys == pytest.approx(sum(inputs))
            assert zs == pytest.approx(5.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            PushSumAlgorithm().initial_state((1.0, -1.0))


class TestDynamicConvergence:
    def test_random_dynamic(self):
        dyn = random_dynamic_strongly_connected(7, seed=11)
        inputs = [float(i) for i in range(7)]
        ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
        report = run_until_asymptotic(ex, 600, tolerance=1e-8, target=3.0)
        assert report.converged

    def test_pulsed_dynamic_with_disconnected_rounds(self):
        dyn = sparse_pulsed_dynamic(5, pulse_every=3, seed=2, symmetric=False)
        inputs = [0.0, 0.0, 0.0, 0.0, 10.0]
        ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
        report = run_until_asymptotic(ex, 1500, tolerance=1e-7, target=2.0)
        assert report.converged

    def test_asynchronous_starts(self):
        base = StaticAsDynamic(bidirectional_ring(5))
        dyn = AsynchronousStartGraph(base, [1, 4, 2, 3, 1])
        inputs = [5.0, 0.0, 5.0, 0.0, 5.0]
        ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
        report = run_until_asymptotic(ex, 600, tolerance=1e-8, target=3.0)
        assert report.converged


class TestMonotoneEnvelope:
    def test_extremes_contract(self):
        # max and min of the estimates are non-increasing/non-decreasing
        # (the B(t) matrices are row-stochastic — Theorem 5.2's proof).
        g = bidirectional_ring(6)
        ex = Execution(PushSumAlgorithm(), g, inputs=[3.0, 1.0, 4.0, 1.0, 5.0, 9.0])
        prev_max, prev_min = float("inf"), float("-inf")
        for _ in range(30):
            ex.step()
            outs = ex.outputs()
            assert max(outs) <= prev_max + 1e-12
            assert min(outs) >= prev_min - 1e-12
            prev_max, prev_min = max(outs), min(outs)
