"""Tests for the frequency Push-Sum (Algorithm 1, Corollaries 5.3–5.5)."""

from fractions import Fraction

import pytest

from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.dynamics.starts import AsynchronousStartGraph
from repro.functions.frequency import FrequencyFunction
from repro.functions.library import AVERAGE, SUM
from repro.graphs.builders import bidirectional_ring, directed_ring


INPUTS = [3, 1, 1, 4, 1, 4]  # frequencies 1: 1/2, 4: 1/3, 3: 1/6


class TestConstruction:
    def test_exact_needs_bound(self):
        with pytest.raises(ValueError):
            PushSumFrequencyAlgorithm(mode="exact")

    def test_multiset_needs_anchor(self):
        with pytest.raises(ValueError):
            PushSumFrequencyAlgorithm(mode="multiset")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            PushSumFrequencyAlgorithm(mode="bogus")


class TestExactFrequencies:
    def test_static_ring(self):
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=8)
        ex = Execution(alg, directed_ring(6), inputs=INPUTS)
        report = run_until_stable(ex, 500, patience=8)
        assert report.converged
        assert report.value == FrequencyFunction({1: "1/2", 4: "1/3", 3: "1/6"})

    def test_dynamic(self):
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=7)
        dyn = random_dynamic_strongly_connected(6, seed=13)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 500, patience=8)
        assert report.converged
        assert report.value[1] == Fraction(1, 2)

    def test_with_function_composition(self):
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=8, f=AVERAGE)
        ex = Execution(alg, directed_ring(6), inputs=INPUTS)
        report = run_until_stable(ex, 500, patience=8, target=AVERAGE(INPUTS))
        assert report.converged

    def test_mass_invariants(self):
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=8)
        ex = Execution(alg, bidirectional_ring(6), inputs=INPUTS)
        ex.run(40)
        # Per-value y-mass equals the multiplicity; z-mass equals n once
        # everyone has joined every instance.
        for (value, mult) in ((1, 3), (4, 2), (3, 1)):
            y_total = sum(s[1][value][0] for s in ex.states)
            z_total = sum(s[1][value][1] for s in ex.states)
            assert y_total == pytest.approx(mult)
            assert z_total == pytest.approx(6.0)


class TestMultisetModes:
    def test_known_n_recovers_multiset(self):
        alg = PushSumFrequencyAlgorithm(mode="multiset", n=6)
        dyn = random_dynamic_strongly_connected(6, seed=17)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 500, patience=8)
        assert report.converged
        assert report.value == {1: 3, 3: 1, 4: 2}

    def test_known_n_computes_sum(self):
        alg = PushSumFrequencyAlgorithm(mode="multiset", n=6, f=SUM)
        dyn = random_dynamic_strongly_connected(6, seed=19)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS), 500, patience=8, target=SUM(INPUTS)
        )
        assert report.converged

    def test_leader_variant(self):
        alg = PushSumFrequencyAlgorithm(mode="multiset", leader_count=1)
        linputs = [(v, i == 0) for i, v in enumerate(INPUTS)]
        dyn = random_dynamic_strongly_connected(6, seed=23)
        report = run_until_stable(Execution(alg, dyn, inputs=linputs), 500, patience=8)
        assert report.converged
        assert report.value == {1: 3, 3: 1, 4: 2}

    def test_two_leaders(self):
        alg = PushSumFrequencyAlgorithm(mode="multiset", leader_count=2)
        linputs = [(v, i < 2) for i, v in enumerate(INPUTS)]
        dyn = random_dynamic_strongly_connected(6, seed=29)
        report = run_until_stable(Execution(alg, dyn, inputs=linputs), 500, patience=8)
        assert report.converged
        assert report.value == {1: 3, 3: 1, 4: 2}

    def test_leader_outputs_none_before_mass_arrives(self):
        alg = PushSumFrequencyAlgorithm(mode="multiset", leader_count=1)
        linputs = [(v, i == 0) for i, v in enumerate(INPUTS)]
        ex = Execution(alg, directed_ring(6), inputs=linputs)
        # Before the leader's z-mass reaches everyone, some estimates are ∞
        # and the output is None (§5.5: x may transiently be infinite).
        assert None in ex.outputs()


class TestNormalizedFrequencies:
    def test_frequencies_mode_asymptotic(self):
        alg = PushSumFrequencyAlgorithm(mode="frequencies")
        dyn = random_dynamic_strongly_connected(6, seed=31)
        ex = Execution(alg, dyn, inputs=INPUTS)
        ex.run(300)
        out = ex.outputs()[0]
        assert out[1] == pytest.approx(0.5, abs=1e-6)
        assert sum(out.values()) == pytest.approx(1.0)

    def test_asynchronous_starts(self):
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=8)
        base = StaticAsDynamic(bidirectional_ring(6))
        dyn = AsynchronousStartGraph(base, [1, 3, 2, 5, 4, 1])
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 600, patience=8)
        assert report.converged
        assert report.value[4] == Fraction(1, 3)
