"""Tests for bounded-denominator rational approximation (Corollary 5.3)."""

from fractions import Fraction

import pytest

from repro.algorithms.rational import nearest_frequency, nearest_rational


class TestNearestRational:
    def test_exact_passthrough(self):
        assert nearest_rational(Fraction(1, 3), 5) == Fraction(1, 3)

    def test_rounds_to_simple_fraction(self):
        assert nearest_rational(0.3333333, 10) == Fraction(1, 3)
        assert nearest_rational(0.4999999, 10) == Fraction(1, 2)

    def test_pi_convergents(self):
        import math

        assert nearest_rational(math.pi, 10) == Fraction(22, 7)
        assert nearest_rational(math.pi, 150) == Fraction(355, 113)

    def test_denominator_one(self):
        assert nearest_rational(2.7, 1) == Fraction(3)
        assert nearest_rational(2.2, 1) == Fraction(2)

    def test_optimality_brute_force(self):
        # Against exhaustive search over all p/q with q <= N.
        import random

        rng = random.Random(0)
        for _ in range(50):
            x = rng.uniform(0, 1)
            n = rng.randint(1, 12)
            best = min(
                (Fraction(p, q) for q in range(1, n + 1) for p in range(0, q + 1)),
                key=lambda f: abs(f - Fraction(x)),
            )
            got = nearest_rational(x, n)
            assert abs(got - Fraction(x)) <= abs(best - Fraction(x))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            nearest_rational(0.5, 0)

    def test_negative_values(self):
        assert nearest_rational(-0.24, 4) == Fraction(-1, 4)


class TestNearestFrequency:
    def test_clamps_to_unit_interval(self):
        assert nearest_frequency(-0.1, 5) == 0
        assert nearest_frequency(1.2, 5) == 1

    def test_separation_guarantee(self):
        # Distinct members of Q_N are >= 1/N² apart, so an estimate within
        # 1/(2N²) always rounds to the truth.
        n = 6
        truth = Fraction(2, 6)
        noisy = float(truth) + 1 / (2 * n * n) * 0.9
        assert nearest_frequency(noisy, n) == truth
