"""Tests for vector-valued Push-Sum (δ2 on ℝᵏ, §2.3)."""

import pytest

from repro.algorithms.push_sum import VectorPushSumAlgorithm
from repro.core.convergence import run_until_asymptotic
from repro.core.execution import Execution
from repro.core.metrics import euclidean_metric
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.graphs.builders import bidirectional_ring


POSITIONS = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0), (2.0, 2.0)]
BARYCENTER = (2.0, 2.0)


class TestVectorConvergence:
    def test_barycenter_on_static_ring(self):
        g = bidirectional_ring(5)
        ex = Execution(VectorPushSumAlgorithm(), g, inputs=POSITIONS)
        report = run_until_asymptotic(
            ex, 500, tolerance=1e-8, target=BARYCENTER, metric=euclidean_metric
        )
        assert report.converged

    def test_barycenter_on_dynamic_graph(self):
        dyn = random_dynamic_strongly_connected(5, seed=21)
        ex = Execution(VectorPushSumAlgorithm(), dyn, inputs=POSITIONS)
        report = run_until_asymptotic(
            ex, 800, tolerance=1e-8, target=BARYCENTER, metric=euclidean_metric
        )
        assert report.converged

    def test_componentwise_mass_conservation(self):
        g = bidirectional_ring(5)
        ex = Execution(VectorPushSumAlgorithm(), g, inputs=POSITIONS)
        for _ in range(12):
            ex.step()
            totals = [sum(s[0][i] for s in ex.states) for i in range(2)]
            assert totals[0] == pytest.approx(10.0)
            assert totals[1] == pytest.approx(10.0)

    def test_dimensions_preserved(self):
        g = bidirectional_ring(3)
        inputs = [(1.0, 2.0, 3.0), (4.0, 5.0, 6.0), (7.0, 8.0, 9.0)]
        ex = Execution(VectorPushSumAlgorithm(), g, inputs=inputs)
        ex.run(5)
        assert all(len(o) == 3 for o in ex.outputs())

    def test_matches_scalar_push_sum_per_coordinate(self):
        from repro.algorithms.push_sum import PushSumAlgorithm

        g = bidirectional_ring(4)
        xs = [1.0, 2.0, 3.0, 4.0]
        vec_ex = Execution(VectorPushSumAlgorithm(), g, inputs=[(x,) for x in xs])
        sca_ex = Execution(PushSumAlgorithm(), g, inputs=xs)
        for _ in range(10):
            vec_ex.step()
            sca_ex.step()
            for vo, so in zip(vec_ex.outputs(), sca_ex.outputs()):
                assert vo[0] == pytest.approx(so)
