"""Unit tests for the bandwidth accounting utilities."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.minimum_base_alg import SymmetricViewAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.bandwidth import bandwidth_curve, max_message_units, payload_units
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring
from repro.graphs.views import ViewBuilder


class TestPayloadUnits:
    def test_atoms(self):
        assert payload_units(3.14) == 1
        assert payload_units("hello") == 1
        assert payload_units(None) == 1

    def test_containers(self):
        assert payload_units((1.0, 2.0)) == 2
        assert payload_units({1: (0.5, 0.5), 2: (0.0, 1.0)}) == 6
        assert payload_units(frozenset({1, 2, 3})) == 3

    def test_views_count_dag_not_tree(self):
        b = ViewBuilder()
        x = b.leaf("x")
        # A node referencing x twice: shared child shipped once.
        n = b.node("r", [(None, x), (None, x)])
        assert payload_units(n) == (1 + 2) + 1  # node+2 edges, one leaf

    def test_shared_views_within_message(self):
        b = ViewBuilder()
        x = b.leaf("x")
        n = b.node("r", [(None, x)])
        # Tuple carrying the same view twice: second occurrence free.
        assert payload_units((n, n)) == payload_units(n)


class TestMessageMeasurement:
    def test_push_sum_constant(self):
        g = bidirectional_ring(4)
        ex = Execution(PushSumAlgorithm(), g, inputs=[1.0, 2.0, 3.0, 4.0])
        curve = bandwidth_curve(ex, 10)
        assert curve == [2] * 10  # (y, z) shares

    def test_gossip_bounded_by_support(self):
        g = bidirectional_ring(4)
        ex = Execution(GossipAlgorithm(), g, inputs=[1, 2, 1, 2])
        curve = bandwidth_curve(ex, 6)
        assert max(curve) == 2

    def test_views_grow(self):
        g = bidirectional_ring(4, values=[1, 2, 1, 2])
        ex = Execution(SymmetricViewAlgorithm(), g, inputs=[1, 2, 1, 2])
        curve = bandwidth_curve(ex, 10)
        assert curve == sorted(curve)
        assert curve[-1] > curve[0]

    def test_max_over_agents(self):
        from repro.graphs.builders import star_graph

        g = star_graph(4)
        ex = Execution(GossipAlgorithm(), g, initial_states=[
            frozenset({1, 2, 3}), frozenset({1}), frozenset({1}), frozenset({1}),
        ])
        assert max_message_units(ex) == 3
