"""Tests for the JSON reproduction certificate."""

import json

from repro.analysis.certificate import certificate_json, reproduction_certificate


class TestCertificate:
    def test_structure_and_verdict(self):
        doc = reproduction_certificate()
        assert doc["summary"]["verdict"] == "PASS"
        assert doc["summary"]["cells"] == 28
        assert doc["summary"]["consistent"] == 28
        assert doc["summary"]["open_cells_demonstrated"] == 2
        assert len(doc["table1"]) == 16
        assert len(doc["table2"]) == 12

    def test_cells_carry_citations(self):
        doc = reproduction_certificate()
        notes = {c["paper_note"] for c in doc["table1"]}
        assert any("Theorem 4.1" in note for note in notes)
        assert any("Boldi" in note for note in notes)

    def test_json_roundtrip(self):
        text = certificate_json()
        doc = json.loads(text)
        assert doc["summary"]["verdict"] == "PASS"

    def test_cli_json_mode(self, capsys):
        from repro.__main__ import main

        assert main(["--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["summary"]["verdict"] == "PASS"
