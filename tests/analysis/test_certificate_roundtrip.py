"""Round-trip and re-verification tests for certificates and manifests.

The certificate pipeline must close the loop: emit → JSON → parse →
independently re-verify, with zero problems on an honest document and a
specific complaint for each kind of tampering.  The same discipline
covers impossibility counterexamples (:func:`verify_counterexample`,
including the tolerance-aware :func:`outputs_match` path) and
:class:`~repro.analysis.provenance.Manifest` dict round-trips.
"""

import json

import pytest

from repro.analysis.certificate import (
    certificate_json,
    parse_certificate,
    reproduction_certificate,
    verify_certificate,
)
from repro.analysis.impossibility import (
    frequency_counterexample,
    outputs_match,
    verify_counterexample,
)
from repro.analysis.provenance import (
    Manifest,
    current_backend,
    graph_fingerprint,
    network_fingerprint,
)
from repro.core.engine import ENGINE_VERSION
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.graphs.builders import bidirectional_ring, random_strongly_connected


@pytest.fixture(scope="module")
def certificate_doc():
    # One real certificate for the whole module: each cell runs actual
    # probes, so regenerating it per test would dominate the suite.
    return parse_certificate(certificate_json(n=5, seed=0))


class TestCertificateRoundTrip:
    def test_emit_parse_verify_is_clean(self, certificate_doc):
        assert verify_certificate(certificate_doc) == []

    def test_json_round_trip_is_lossless(self, certificate_doc):
        again = parse_certificate(json.dumps(certificate_doc))
        assert again == certificate_doc

    def test_every_cell_carries_manifest(self, certificate_doc):
        for table in ("table1", "table2"):
            for cell in certificate_doc[table]:
                manifest = cell["manifest"]
                assert manifest is not None
                assert manifest["engine_version"] == ENGINE_VERSION
                assert manifest["graph_hash"]
                assert manifest["kind"] in ("table1-cell", "table2-cell")
                # Cell manifests are backend-free by design (bit-identical
                # across sequential/parallel); the document records the backend.
                assert manifest["backend"] is None

    def test_document_manifest_records_backend(self, certificate_doc):
        top = certificate_doc["manifest"]
        assert top["kind"] == "certificate"
        assert top["backend"] in ("sequential", "parallel")
        assert top["seed"] == certificate_doc["parameters"]["seed"]

    def test_parse_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            parse_certificate("[1, 2]")

    def test_parse_rejects_missing_sections(self):
        with pytest.raises(ValueError, match="missing sections"):
            parse_certificate('{"paper": "x"}')

    def test_parse_rejects_malformed_cell(self, certificate_doc):
        mangled = json.loads(json.dumps(certificate_doc))
        del mangled["table1"][0]["manifest"]
        with pytest.raises(ValueError, match="missing keys"):
            parse_certificate(json.dumps(mangled))


def tampered(doc, mutate):
    copy = json.loads(json.dumps(doc))
    mutate(copy)
    return copy


class TestVerifyCatchesTampering:
    def test_flipped_consistency_flag(self, certificate_doc):
        doc = tampered(certificate_doc, lambda d: d["table1"][0].update(consistent=False))
        assert any("does not re-derive" in p for p in verify_certificate(doc))

    def test_forged_paper_class(self, certificate_doc):
        doc = tampered(
            certificate_doc, lambda d: d["table1"][0].update(paper_class="everything")
        )
        assert any("paper_class" in p for p in verify_certificate(doc))

    def test_wrong_dynamic_flag(self, certificate_doc):
        doc = tampered(certificate_doc, lambda d: d["table2"][0].update(dynamic=False))
        assert any("contradicts its table" in p for p in verify_certificate(doc))

    def test_stale_engine_version(self, certificate_doc):
        doc = tampered(
            certificate_doc,
            lambda d: d["table1"][0]["manifest"].update(engine_version="0"),
        )
        assert any("engine_version" in p for p in verify_certificate(doc))

    def test_mismatched_manifest_seed(self, certificate_doc):
        doc = tampered(
            certificate_doc, lambda d: d["table1"][0]["manifest"].update(seed=999)
        )
        assert any("seed" in p for p in verify_certificate(doc))

    def test_removed_cell_manifest(self, certificate_doc):
        doc = tampered(certificate_doc, lambda d: d["table1"][0].update(manifest=None))
        assert any("no provenance manifest" in p for p in verify_certificate(doc))

    def test_miscounted_summary(self, certificate_doc):
        doc = tampered(certificate_doc, lambda d: d["summary"].update(cells=99))
        assert any("summary.cells" in p for p in verify_certificate(doc))

    def test_wrong_document_backend(self, certificate_doc):
        doc = tampered(certificate_doc, lambda d: d["manifest"].update(backend="gpu"))
        assert any("backend" in p for p in verify_certificate(doc))

    def test_unknown_enum_value(self, certificate_doc):
        doc = tampered(certificate_doc, lambda d: d["table1"][0].update(model="telepathy"))
        assert any("unknown enum" in p for p in verify_certificate(doc))


class TestCertificateBackendParameter:
    def test_explicit_parallel_recorded(self):
        doc = reproduction_certificate(n=4, seed=0, parallel=True, workers=2)
        assert doc["manifest"]["backend"] == "parallel"
        assert doc["manifest"]["extra"] == {"workers": 2}
        assert verify_certificate(doc) == []


class TestCounterexampleRoundTrip:
    def test_sum_yields_sound_certificate(self):
        cert = frequency_counterexample(sum, [1, 2, 3])
        assert cert is not None
        assert verify_counterexample(cert) == []
        assert cert["manifest"]["kind"] == "impossibility"
        # JSON round trip keeps it verifiable.
        assert verify_counterexample(json.loads(json.dumps(cert))) == []

    def test_frequency_based_f_yields_no_certificate(self):
        # A naive float average differs between v and w only by summation
        # order: outputs_match must absorb that, emitting no certificate.
        naive_average = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert frequency_counterexample(naive_average, [0.1, 0.2, 0.7]) is None

    def test_tolerance_path_rejects_rounding_noise_certificate(self):
        cert = frequency_counterexample(sum, [1, 2, 3])
        forged = dict(cert)
        forged["f(v)"] = 6.0
        forged["f(w)"] = 6.0 + 1e-13  # rounding noise, not a counterexample
        problems = verify_counterexample(forged)
        assert any("agree up to tolerance" in p for p in problems)
        assert outputs_match(forged["f(v)"], forged["f(w)"])

    def test_tampered_vectors_detected(self):
        cert = frequency_counterexample(sum, [1, 2, 3])
        forged = dict(cert)
        forged["w"] = [1, 1, 1]
        assert any("frequency" in p for p in verify_counterexample(forged))

    def test_tampered_sizes_detected(self):
        cert = frequency_counterexample(sum, [1, 2, 3])
        forged = dict(cert, n=77)
        assert any("ring sizes" in p for p in verify_counterexample(forged))

    def test_missing_manifest_detected(self):
        cert = frequency_counterexample(sum, [1, 2, 3])
        forged = {k: v for k, v in cert.items() if k != "manifest"}
        assert any("manifest" in p for p in verify_counterexample(forged))

    def test_empty_certificate(self):
        assert verify_counterexample({}) == ["certificate has no input vectors"]


class TestManifestRoundTrip:
    def test_dict_round_trip(self):
        manifest = Manifest(
            kind="trace",
            seed=3,
            n=8,
            rounds=20,
            graph_hash="abc123",
            model="simple_broadcast",
            knowledge="none",
            backend="sequential",
            extra={"algorithm": "push-sum"},
        )
        assert Manifest.from_dict(manifest.to_dict()) == manifest

    def test_unknown_keys_fold_into_extra(self):
        manifest = Manifest.from_dict({"kind": "trace", "future_field": 42})
        assert manifest.extra == {"future_field": 42}
        assert manifest.engine_version == ENGINE_VERSION

    def test_graph_fingerprint_pins_content(self):
        a = random_strongly_connected(6, seed=1)
        b = random_strongly_connected(6, seed=1)
        c = random_strongly_connected(6, seed=2)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(c)
        # Values participate in the identity.
        assert graph_fingerprint(a) != graph_fingerprint(a.with_values([9] * 6))

    def test_network_fingerprint_handles_dynamic(self):
        a = random_dynamic_strongly_connected(5, seed=1)
        b = random_dynamic_strongly_connected(5, seed=1)
        c = random_dynamic_strongly_connected(5, seed=2)
        assert network_fingerprint(a) == network_fingerprint(b)
        assert network_fingerprint(a) != network_fingerprint(c)
        assert network_fingerprint(bidirectional_ring(4)) == graph_fingerprint(
            bidirectional_ring(4)
        )

    def test_current_backend_is_sequential_here(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert current_backend() == "sequential"
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        assert current_backend() == "parallel"
