"""The table harness's refutation machinery must itself be falsifiable.

A harness that reports "refuted" for every function would also pass the
tables; these tests check the certificates *decline* to refute functions
that genuinely are computable — the refutations carry information.
"""

from repro.analysis.tables import _broadcast_refutation, _sum_refutation
from repro.analysis.impossibility import frequency_counterexample
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge
from repro.functions.library import AVERAGE, MAXIMUM, SUM


class TestRefutationsAreSelective:
    def test_broadcast_refutation_declines_set_based_functions(self):
        # max agrees across the cover pair (same support), so the pair
        # proves nothing against it — the harness must say so.
        for knowledge in (Knowledge.NONE, Knowledge.EXACT_N, Knowledge.LEADER):
            assert not _broadcast_refutation(MAXIMUM, knowledge)

    def test_broadcast_refutation_catches_frequency_functions(self):
        for knowledge in (Knowledge.NONE, Knowledge.BOUND_N, Knowledge.EXACT_N, Knowledge.LEADER):
            assert _broadcast_refutation(AVERAGE, knowledge)

    def test_broadcast_refutation_catches_multiset_functions(self):
        assert _broadcast_refutation(SUM, Knowledge.NONE)

    def test_counterexample_declines_frequency_based(self):
        assert frequency_counterexample(AVERAGE, [1, 2]) is None
        assert frequency_counterexample(MAXIMUM, [1, 2]) is None

    def test_sum_refutation_all_models(self):
        for model in (CM.SIMPLE_BROADCAST, CM.OUTDEGREE_AWARE, CM.OUTPUT_PORT_AWARE):
            assert _sum_refutation(model)
