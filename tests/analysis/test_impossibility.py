"""Tests for the impossibility experiment harness (§4.1)."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.impossibility import (
    demonstrate_collapse,
    frequency_counterexample,
    outputs_match,
    two_fibre_cover,
    verify_lifting_on_outputs,
)
from repro.core.models import CommunicationModel as CM
from repro.fibrations.fibration import ring_collapse
from repro.fibrations.minimum_base import minimum_base
from repro.functions.library import AVERAGE, MAXIMUM, SUM
from repro.graphs.properties import is_strongly_connected


class TestLiftingVerification:
    def test_gossip_lifts_on_rings(self):
        phi = ring_collapse(8, 4)
        assert verify_lifting_on_outputs(phi, GossipAlgorithm, [1, 2, 3, 4], rounds=12)

    def test_push_sum_lifts_on_rings(self):
        phi = ring_collapse(6, 3)
        assert verify_lifting_on_outputs(
            phi, PushSumAlgorithm, [1.0, 2.0, 3.0], rounds=12
        )

    def test_gossip_lifts_on_star_base(self):
        from repro.graphs.builders import star_graph

        g = star_graph(5, values=["h", "l", "l", "l", "l"])
        mb = minimum_base(g)
        assert verify_lifting_on_outputs(
            mb.fibration, GossipAlgorithm, list(mb.base.values), rounds=10
        )


class TestCollapse:
    def test_outputs_coincide_across_sizes(self):
        outcome = demonstrate_collapse(
            GossipAlgorithm, n=4, m=8, base_values=[1, 2], rounds=10
        )
        assert outcome.lifted
        # All three executions stabilize on the same support.
        assert set(outcome.outputs_big) == set(outcome.outputs_other)

    def test_push_sum_defeats_sum(self):
        # Push-Sum computes the average on both rings — which coincides —
        # while the sums differ: the certificate that sum is uncomputable.
        outcome = demonstrate_collapse(
            PushSumAlgorithm, n=4, m=8, base_values=[1.0, 3.0], rounds=200
        )
        assert outcome.lifted
        big = outcome.outputs_big[0]
        other = outcome.outputs_other[0]
        assert big == pytest.approx(other)
        assert SUM([1.0, 3.0] * 2) != SUM([1.0, 3.0] * 4)

    def test_port_model_collapse(self):
        outcome = demonstrate_collapse(
            GossipAlgorithm, n=6, m=12, base_values=[1, 2, 3], rounds=10,
            model=CM.OUTPUT_PORT_AWARE,
        )
        assert outcome.lifted

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            demonstrate_collapse(GossipAlgorithm, n=5, m=8, base_values=[1, 2], rounds=3)


class TestCounterexampleCertificates:
    def test_sum_has_counterexample(self):
        cert = frequency_counterexample(SUM, [1, 2])
        assert cert is not None
        assert cert["f(v)"] != cert["f(w)"]
        assert cert["n"] == 2 and cert["m"] == 4

    def test_average_has_none(self):
        assert frequency_counterexample(AVERAGE, [1, 2]) is None

    def test_max_has_none(self):
        assert frequency_counterexample(MAXIMUM, [1, 2, 3]) is None


class TestTwoFibreCovers:
    @pytest.mark.parametrize("z", [(1, 1), (1, 2), (1, 3), (2, 2), (2, 4), (3, 5)])
    def test_cover_well_formed(self, z):
        g = two_fibre_cover(*z)
        assert g.n == sum(z)
        assert is_strongly_connected(g)
        assert g.all_have_self_loops()

    @pytest.mark.parametrize("z", [(1, 2), (1, 3), (2, 2), (2, 4)])
    def test_fibres_as_requested(self, z):
        g = two_fibre_cover(*z)
        mb = minimum_base(g)
        assert mb.base.n == 2
        assert sorted(mb.fibre_sizes) == sorted(z)

    def test_shared_base_across_cardinalities(self):
        from repro.graphs.isomorphism import are_isomorphic

        bases = [minimum_base(two_fibre_cover(*z)).base for z in ((1, 2), (1, 3), (2, 2))]
        assert are_isomorphic(bases[0], bases[1])
        assert are_isomorphic(bases[1], bases[2])

    def test_equal_n_different_frequencies(self):
        # The known-n broadcast counterexample: same size, same base,
        # different frequencies (footnote a: n >= 4).
        g1, g2 = two_fibre_cover(1, 3), two_fibre_cover(2, 2)
        assert g1.n == g2.n == 4
        from repro.functions.frequency import frequencies_of

        assert frequencies_of(g1.values) != frequencies_of(g2.values)

    def test_gossip_behaves_identically_on_pair(self):
        # Lifting through the shared base: outputs on both covers are the
        # base outputs copied fibrewise.
        for z in ((1, 3), (2, 2)):
            g = two_fibre_cover(*z)
            mb = minimum_base(g)
            assert verify_lifting_on_outputs(
                mb.fibration, GossipAlgorithm, list(mb.base.values), rounds=10
            )

    def test_invalid_cardinalities(self):
        with pytest.raises(ValueError):
            two_fibre_cover(2, 1)
        with pytest.raises(ValueError):
            two_fibre_cover(0, 3)


def naive_average(vec):
    """A float average whose repr depends on summation length (the trap
    that used to produce spurious certificates through ``repr`` equality)."""
    return sum(vec) / len(vec)


class TestFloatToleranceRegression:
    def test_the_trap_is_real(self):
        # Same multiset frequencies, different summation lengths, different
        # last-bit rounding: repr-equality calls these "different outputs".
        a = naive_average([0.1, 0.1])
        b = naive_average([0.1, 0.1] * 3)
        assert repr(a) != repr(b)
        assert abs(a - b) < 1e-12

    def test_no_spurious_certificate_for_float_average(self):
        # Regression: frequency_counterexample compared outputs by repr, so
        # rounding noise in a frequency-based function was misread as a
        # genuine disagreement and certified SUM-style impossibility.
        assert frequency_counterexample(naive_average, [0.1, 0.1], reps_v=1, reps_w=3) is None

    def test_sum_still_certified(self):
        cert = frequency_counterexample(SUM, [1, 2])
        assert cert is not None
        assert cert["f(v)"] != cert["f(w)"]


class TestOutputsMatch:
    def test_scalar_tolerance(self):
        assert outputs_match(0.1 + 0.2, 0.3)
        assert outputs_match(1e-13, 0.0)  # abs_tol catches near-zero noise
        assert not outputs_match(1.0, 1.1)

    def test_non_numeric_falls_back_to_repr(self):
        assert outputs_match("abc", "abc")
        assert not outputs_match("abc", "abd")
        assert outputs_match(frozenset({1, 2}), frozenset({1, 2}))

    def test_sequences_compared_elementwise(self):
        assert outputs_match([0.1 + 0.2, 1.0], [0.3, 1.0])
        assert outputs_match((0.1 + 0.2,), (0.3,))
        assert not outputs_match([1.0, 2.0], [1.0, 2.0, 3.0])
        assert not outputs_match([1.0, 2.0], [1.0, 2.5])

    def test_numpy_arrays_compared_elementwise(self):
        numpy = pytest.importorskip("numpy")
        assert outputs_match(numpy.array([0.1 + 0.2, 1.0]), numpy.array([0.3, 1.0]))
        assert not outputs_match(numpy.array([1.0]), numpy.array([2.0]))

    def test_nested_sequences_compared_recursively(self):
        # Nested float containers tolerate rounding noise at every level
        # (a list of per-agent float vectors — e.g. nested averages —
        # must not mismatch on last-ulp differences).
        assert outputs_match([[0.1 + 0.2]], [[0.3]])
        assert outputs_match([[1.0]], [[1.0]])
        assert not outputs_match([[1.0, 2.0]], [[1.0, 2.5]])
        assert not outputs_match([[1.0]], [[1.0, 2.0]])

    def test_dicts_compared_key_by_key(self):
        # Per-value frequency tables are dict outputs with float values.
        assert outputs_match({1: 0.1 + 0.2, 2: 1.0}, {1: 0.3, 2: 1.0})
        assert not outputs_match({1: 0.1}, {1: 0.1, 2: 0.2})
        assert not outputs_match({1: 1.0}, {1: 2.0})
        # ...and nest inside sequences (per-agent lists of tables).
        assert outputs_match([{1: 0.1 + 0.2}], [{1: 0.3}])

    def test_recursion_stops_at_depth_cap(self):
        from repro.analysis.impossibility import OUTPUTS_MATCH_MAX_DEPTH

        shallow = noisy = 0.1 + 0.2
        clean = 0.3
        for _ in range(OUTPUTS_MATCH_MAX_DEPTH):
            noisy, clean = [noisy], [clean]
        # At the cap the wrapped floats still compare with tolerance...
        assert outputs_match(noisy, clean)
        # ...one level beyond, the comparison is exact repr only.
        assert not outputs_match([noisy], [clean])
        assert outputs_match([[shallow]], [[shallow]])
