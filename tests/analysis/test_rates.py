"""Unit tests for the proof-trace machinery in repro.analysis.rates."""

import numpy as np
import pytest

from repro.analysis.rates import trace_push_sum, verify_proof_invariants
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.graphs.builders import bidirectional_ring, directed_ring


class TestTrace:
    def test_shapes(self):
        net = StaticAsDynamic(directed_ring(4))
        trace = trace_push_sum(net, [1.0, 2.0, 3.0, 4.0], rounds=7)
        assert len(trace.a_matrices) == 7
        assert len(trace.b_matrices) == 7
        assert len(trace.z_history) == 8
        assert len(trace.x_history) == 8

    def test_initial_state_recorded(self):
        net = StaticAsDynamic(directed_ring(3))
        trace = trace_push_sum(net, [2.0, 4.0, 6.0], weights=[1.0, 2.0, 1.0], rounds=3)
        np.testing.assert_allclose(trace.z_history[0], [1.0, 2.0, 1.0])
        np.testing.assert_allclose(trace.x_history[0], [2.0, 2.0, 6.0])

    def test_b_factorization(self):
        # B(t) = diag(z(t))^-1 A(t) diag(z(t-1)) reproduces the estimate
        # recursion x(t) = B(t) x(t-1).
        net = StaticAsDynamic(bidirectional_ring(4))
        trace = trace_push_sum(net, [3.0, 1.0, 4.0, 1.0], rounds=6)
        for t in range(1, 7):
            np.testing.assert_allclose(
                trace.x_history[t],
                trace.b_matrices[t - 1] @ trace.x_history[t - 1],
                rtol=1e-12,
            )

    def test_validation(self):
        net = StaticAsDynamic(directed_ring(3))
        with pytest.raises(ValueError):
            trace_push_sum(net, [1.0, 2.0], rounds=2)
        with pytest.raises(ValueError):
            trace_push_sum(net, [1.0, 2.0, 3.0], weights=[1.0, -1.0, 1.0], rounds=2)


class TestVerifier:
    def test_clean_trace_passes(self):
        net = StaticAsDynamic(bidirectional_ring(4))
        trace = trace_push_sum(net, [3.0, 1.0, 4.0, 1.0], rounds=12)
        assert verify_proof_invariants(trace, d=2, n=4) == []

    def test_catches_broken_row_stochasticity(self):
        net = StaticAsDynamic(directed_ring(3))
        trace = trace_push_sum(net, [1.0, 2.0, 3.0], rounds=6)
        trace.b_matrices[2] = trace.b_matrices[2] * 1.5
        problems = verify_proof_invariants(trace, d=2, n=3)
        assert any("row-stochastic" in p for p in problems)

    def test_catches_envelope_violation(self):
        net = StaticAsDynamic(directed_ring(3))
        trace = trace_push_sum(net, [1.0, 2.0, 3.0], rounds=6)
        trace.z_history[4] = trace.z_history[4] * 10
        problems = verify_proof_invariants(trace, d=2, n=3)
        assert any("exceeds the total weight" in p for p in problems)
