"""Tests for the plain-text table renderer."""

from repro.analysis.reporting import render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned

    def test_title(self):
        out = render_table(["x"], [["y"]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_ragged_rows_padded(self):
        out = render_table(["a", "b", "c"], [["1"]])
        assert out.count("|") > 0
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1

    def test_non_string_cells(self):
        out = render_table(["n"], [[42], [None]])
        assert "42" in out and "None" in out


class TestMetricsTable:
    def _registry(self):
        from repro.core.engine.trace import MetricsRegistry

        r = MetricsRegistry()
        r.counter("rounds").inc(12)
        r.gauge("residual").set(0.25)
        r.histogram("round_wall_seconds").observe(0.5)
        r.histogram("round_wall_seconds").observe(1.5)
        return r

    def test_renders_all_metric_kinds(self):
        from repro.analysis.reporting import metrics_table

        out = metrics_table(self._registry(), title="run metrics")
        lines = out.splitlines()
        assert lines[0] == "run metrics"
        assert "rounds" in out and "counter" in out and "12" in out
        assert "residual" in out and "gauge" in out and "0.25" in out
        assert "count=2 mean=1 min=0.5 max=1.5" in out
        assert len({len(line) for line in lines[1:]}) == 1  # aligned box

    def test_rows_are_name_sorted(self):
        from repro.analysis.reporting import metrics_table

        out = metrics_table(self._registry())
        assert out.index("residual") < out.index("round_wall_seconds") < out.index("rounds")

    def test_empty_registry(self):
        from repro.analysis.reporting import metrics_table
        from repro.core.engine.trace import MetricsRegistry

        out = metrics_table(MetricsRegistry())
        assert "metric" in out  # headers render even with no rows


class TestCsvExport:
    def test_to_csv(self):
        from repro.analysis.reporting import to_csv

        text = to_csv(["a", "b"], [[1, 2], ["x,y", 3]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == '"x,y",3'  # commas quoted

    def test_trace_csv_exact_mode(self):
        from repro.algorithms.gossip import GossipAlgorithm
        from repro.analysis.reporting import trace_csv
        from repro.core.convergence import run_until_stable
        from repro.core.execution import Execution
        from repro.graphs.builders import bidirectional_ring

        ex = Execution(GossipAlgorithm(max), bidirectional_ring(4), inputs=[1, 2, 3, 4])
        report = run_until_stable(ex, 10, patience=3)
        text = trace_csv(report)
        lines = text.strip().splitlines()
        assert lines[0] == "round,value"
        assert len(lines) == report.rounds_run + 1
        assert lines[-1].endswith(",4")

    def test_trace_csv_asymptotic_mode(self):
        from repro.algorithms.push_sum import PushSumAlgorithm
        from repro.analysis.reporting import trace_csv
        from repro.core.convergence import run_until_asymptotic
        from repro.core.execution import Execution
        from repro.graphs.builders import bidirectional_ring

        ex = Execution(PushSumAlgorithm(), bidirectional_ring(4), inputs=[1.0, 2.0, 3.0, 4.0])
        report = run_until_asymptotic(ex, 50, tolerance=1e-6)
        text = trace_csv(report, series_name="spread")
        assert text.splitlines()[0] == "round,spread"
        # Spreads shrink: the last recorded value is below the first.
        import csv as _csv
        import io

        rows = list(_csv.reader(io.StringIO(text)))[1:]
        assert float(rows[-1][1]) < float(rows[0][1])
