"""The table reproduction must not hinge on one lucky seed."""

import pytest

from repro.analysis.tables import reproduce_table1, reproduce_table2


@pytest.mark.slow
class TestSeedRobustness:
    @pytest.mark.parametrize("seed", range(4))
    def test_table1_across_seeds(self, seed):
        results = reproduce_table1(seed=seed)
        bad = [(r.model.value, r.knowledge.value) for r in results if not r.consistent]
        assert not bad, bad

    @pytest.mark.parametrize("seed", range(3))
    def test_table2_across_seeds(self, seed):
        results = reproduce_table2(seed=seed)
        bad = [(r.model.value, r.knowledge.value) for r in results if not r.consistent]
        assert not bad, bad

    @pytest.mark.parametrize("n", [5, 7, 8])
    def test_table1_across_sizes(self, n):
        results = reproduce_table1(n=n)
        bad = [(r.model.value, r.knowledge.value) for r in results if not r.consistent]
        assert not bad, bad
