"""Tests for the Table 1 / Table 2 reproduction harness.

The full-table runs are the headline integration results: every cell's
measured class must agree with the paper.
"""

import pytest

from repro.analysis.tables import (
    format_results,
    reproduce_table1,
    reproduce_table2,
    run_dynamic_cell,
    run_static_cell,
)
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge as K
from repro.functions.classes import FunctionClass as FC


class TestIndividualCells:
    def test_broadcast_none(self):
        cell = run_static_cell(CM.SIMPLE_BROADCAST, K.NONE)
        assert cell.consistent
        assert cell.measured is FC.SET_BASED

    def test_outdegree_none(self):
        cell = run_static_cell(CM.OUTDEGREE_AWARE, K.NONE)
        assert cell.consistent
        assert cell.measured is FC.FREQUENCY_BASED

    def test_symmetric_exact_n(self):
        cell = run_static_cell(CM.SYMMETRIC, K.EXACT_N)
        assert cell.consistent
        assert cell.measured is FC.MULTISET_BASED

    def test_ports_leader(self):
        cell = run_static_cell(CM.OUTPUT_PORT_AWARE, K.LEADER)
        assert cell.consistent

    def test_dynamic_symmetric_none(self):
        cell = run_dynamic_cell(CM.SYMMETRIC, K.NONE)
        assert cell.consistent
        assert cell.measured is FC.FREQUENCY_BASED

    def test_dynamic_outdegree_open_cell(self):
        cell = run_dynamic_cell(CM.OUTDEGREE_AWARE, K.NONE)
        assert cell.expected.open_question
        assert cell.consistent  # lower bound demonstrated


@pytest.mark.slow
class TestFullTables:
    def test_table1_all_cells_consistent(self):
        results = reproduce_table1()
        assert len(results) == 16
        assert all(r.consistent for r in results), [
            (r.model.value, r.knowledge.value, r.details)
            for r in results
            if not r.consistent
        ]

    def test_table2_all_cells_consistent(self):
        results = reproduce_table2()
        assert len(results) == 12
        assert all(r.consistent for r in results), [
            (r.model.value, r.knowledge.value, r.details)
            for r in results
            if not r.consistent
        ]

    def test_formatting(self):
        results = reproduce_table1()
        text = format_results(results, "Table 1")
        assert "Table 1" in text
        assert "frequency-based" in text
        assert "✗" not in text
