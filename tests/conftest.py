"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

# Property tests run whole simulations per example; wall-clock deadlines
# only produce flaky failures under load.  Examples stay bounded by each
# test's max_examples instead.
settings.register_profile("repro", deadline=None)
# CI runs want reproducible example sequences: a red build must replay
# identically on a developer machine, so the shared CI profile also
# derandomizes hypothesis' example search.
settings.register_profile("repro-ci", deadline=None, derandomize=True)
settings.load_profile(
    "repro-ci" if os.environ.get("CI") or os.environ.get("REPRO_PARALLEL") else "repro"
)

from repro.graphs.builders import (
    bidirectional_ring,
    random_strongly_connected,
    random_symmetric_connected,
)


@pytest.fixture
def ring6():
    return bidirectional_ring(6)


@pytest.fixture
def valued_ring6():
    return bidirectional_ring(6, values=[1, 2, 1, 2, 1, 2])


@pytest.fixture
def inputs6():
    # Multiplicities 1:3, 4:2, 3:1 — the three function classes all
    # distinguish this vector from its reductions.
    return [3, 1, 1, 4, 1, 4]


@pytest.fixture(params=[0, 1, 2])
def seed(request):
    return request.param


@pytest.fixture
def random_digraph(seed):
    return random_strongly_connected(7, seed=seed)


@pytest.fixture
def random_symmetric(seed):
    return random_symmetric_connected(7, seed=seed)


def random_valued_graph(n: int, seed: int, symmetric: bool = False, values=None):
    """A deterministic random test graph with input values attached."""
    build = random_symmetric_connected if symmetric else random_strongly_connected
    g = build(n, seed=seed)
    if values is None:
        rng = random.Random(seed + 1000)
        values = [rng.choice([1, 2, 7]) for _ in range(n)]
    return g.with_values(values)
