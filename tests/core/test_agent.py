"""Tests for the algorithm base classes and their contracts."""

import pytest

from repro.core.agent import (
    Algorithm,
    BroadcastAlgorithm,
    OutdegreeAlgorithm,
    OutputPortAlgorithm,
)
from repro.core.models import CommunicationModel


class TestAbstractness:
    def test_cannot_instantiate_bases(self):
        for cls in (Algorithm, BroadcastAlgorithm, OutdegreeAlgorithm, OutputPortAlgorithm):
            with pytest.raises(TypeError):
                cls()

    def test_partial_implementation_rejected(self):
        class Half(BroadcastAlgorithm):
            def initial_state(self, input_value):
                return None

        with pytest.raises(TypeError):
            Half()


class TestDeclaredModels:
    def test_defaults(self):
        class B(BroadcastAlgorithm):
            def initial_state(self, v):
                return v

            def message(self, s):
                return s

            def transition(self, s, r):
                return s

            def output(self, s):
                return s

        assert B().model is CommunicationModel.SIMPLE_BROADCAST
        assert B().name() == "B"

    def test_model_override_for_symmetric(self):
        class S(BroadcastAlgorithm):
            model = CommunicationModel.SYMMETRIC

            def initial_state(self, v):
                return v

            def message(self, s):
                return s

            def transition(self, s, r):
                return s

            def output(self, s):
                return s

        assert S().model is CommunicationModel.SYMMETRIC

    def test_library_algorithms_declare_models(self):
        from repro.algorithms.gossip import GossipAlgorithm
        from repro.algorithms.history_tree import HistoryTreeAlgorithm
        from repro.algorithms.metropolis import MetropolisAlgorithm
        from repro.algorithms.push_sum import PushSumAlgorithm

        assert GossipAlgorithm().model is CommunicationModel.SIMPLE_BROADCAST
        assert PushSumAlgorithm().model is CommunicationModel.OUTDEGREE_AWARE
        assert MetropolisAlgorithm().model is CommunicationModel.OUTDEGREE_AWARE
        assert HistoryTreeAlgorithm().model is CommunicationModel.SYMMETRIC
