"""Tests for the ``python -m repro`` entry point."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.core.engine.trace import events_from_jsonl, read_jsonl


class TestMainFunction:
    def test_table1_only(self, capsys):
        assert main(["--table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" not in out
        assert "every cell agrees" in out

    def test_table2_only(self, capsys):
        assert main(["--table", "2", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_custom_size_and_seed(self, capsys):
        assert main(["--table", "1", "--n", "5", "--seed", "2"]) == 0


class TestTraceSubcommand:
    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "--n", "5", "--rounds", "6"]) == 0
        out = capsys.readouterr().out
        manifest, events = events_from_jsonl(out)
        assert manifest["kind"] == "trace"
        assert manifest["n"] == 5 and manifest["rounds"] == 6
        assert manifest["graph_hash"]
        assert manifest["backend"] in ("sequential", "parallel")
        rounds = [e for e in events if e.kind == "round"]
        assert [e.round for e in rounds] == [1, 2, 3, 4, 5, 6]
        assert events[-1].kind == "summary"
        assert events[-1].fields["metrics"]["rounds"]["value"] == 6

    def test_trace_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "--n", "4", "--rounds", "3", "--out", path]) == 0
        assert path in capsys.readouterr().out
        manifest, events = read_jsonl(path)
        assert manifest["extra"]["algorithm"] == "push-sum"
        assert len([e for e in events if e.kind == "round"]) == 3

    def test_trace_gossip_dynamic(self, capsys):
        assert main(
            ["trace", "--algorithm", "gossip", "--dynamic", "--n", "5", "--rounds", "4"]
        ) == 0
        manifest, events = events_from_jsonl(capsys.readouterr().out)
        assert manifest["extra"] == {"algorithm": "gossip", "dynamic": True}
        # A fresh DiGraph per round: every round compiles a new plan.
        assert len([e for e in events if e.kind == "plan_compile"]) == 4

    def test_trace_recurring_pool_memoizes(self, capsys):
        # A pool of 3 topologies over 9 rounds: 3 compiles, 6 plan hits,
        # and non-zero memo counters in the summary metrics (the interner
        # recognizes rounds 4..9 as revisits).  Unique seed: the memo
        # caches are process-wide and must not be warmed by other tests.
        assert main(
            ["trace", "--algorithm", "gossip", "--recurring", "3",
             "--n", "5", "--rounds", "9", "--seed", "77"]
        ) == 0
        manifest, events = events_from_jsonl(capsys.readouterr().out)
        assert manifest["extra"]["recurring"] == 3
        assert len([e for e in events if e.kind == "plan_compile"]) == 3
        metrics = events[-1].fields["metrics"]
        assert metrics["plan_hits"]["value"] == 6
        assert metrics["memo_interned_graph_hits"]["value"] == 6
        assert metrics["memo_interned_graph_misses"]["value"] == 3
        assert metrics["memo_delivery_plan_misses"]["value"] == 3

    def test_trace_is_deterministic(self, capsys):
        assert main(["trace", "--n", "5", "--seed", "3", "--rounds", "4"]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "--n", "5", "--seed", "3", "--rounds", "4"]) == 0
        second = capsys.readouterr().out
        _, a = events_from_jsonl(first)
        _, b = events_from_jsonl(second)
        deterministic = lambda evs: [  # noqa: E731
            (e.kind, e.round, e.deterministic_fields())
            for e in evs
            if e.kind == "round"
        ]
        assert deterministic(a) == deterministic(b)


class TestParallelFlag:
    def test_table1_parallel_workers(self, capsys):
        assert main(["--table", "1", "--n", "5", "--parallel", "--workers", "2"]) == 0
        assert "every cell agrees" in capsys.readouterr().out

    def test_json_certificate_records_parallel_backend(self, capsys):
        assert main(["--json", "--n", "4", "--parallel", "--workers", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["manifest"]["backend"] == "parallel"
        assert doc["manifest"]["extra"] == {"workers": 2}


@pytest.mark.slow
class TestSubprocess:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--table", "1"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "every cell agrees" in result.stdout

    def test_trace_subcommand_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "--n", "4", "--rounds", "3"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        manifest, events = events_from_jsonl(result.stdout)
        assert manifest["kind"] == "trace"
        assert events[-1].kind == "summary"
