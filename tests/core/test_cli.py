"""Tests for the ``python -m repro`` entry point."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestMainFunction:
    def test_table1_only(self, capsys):
        assert main(["--table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" not in out
        assert "every cell agrees" in out

    def test_table2_only(self, capsys):
        assert main(["--table", "2", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_custom_size_and_seed(self, capsys):
        assert main(["--table", "1", "--n", "5", "--seed", "2"]) == 0


@pytest.mark.slow
class TestSubprocess:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--table", "1"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "every cell agrees" in result.stdout
