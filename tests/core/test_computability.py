"""Tests for the computability oracle (Tables 1 and 2, encoded)."""

import pytest

from repro.core.computability import (
    ROW_ORDER,
    TABLE1_MODELS,
    TABLE2_MODELS,
    computable_class,
    table1,
    table2,
)
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge as K
from repro.functions.classes import FunctionClass as FC


class TestTable1:
    def test_broadcast_stays_set_based_at_every_level(self):
        for knowledge in K:
            cell = computable_class(CM.SIMPLE_BROADCAST, knowledge)
            assert cell.function_class is FC.SET_BASED

    @pytest.mark.parametrize(
        "model", [CM.OUTDEGREE_AWARE, CM.SYMMETRIC, CM.OUTPUT_PORT_AWARE]
    )
    def test_enriched_models_agree(self, model):
        assert computable_class(model, K.NONE).function_class is FC.FREQUENCY_BASED
        assert computable_class(model, K.BOUND_N).function_class is FC.FREQUENCY_BASED
        assert computable_class(model, K.EXACT_N).function_class is FC.MULTISET_BASED
        assert computable_class(model, K.LEADER).function_class is FC.MULTISET_BASED

    def test_all_static_cells_exact(self):
        for cell in table1().values():
            assert cell.exact

    def test_full_coverage(self):
        assert len(table1()) == len(ROW_ORDER) * len(TABLE1_MODELS)

    def test_bound_adds_nothing_exact_n_does(self):
        none = computable_class(CM.OUTDEGREE_AWARE, K.NONE).function_class
        bound = computable_class(CM.OUTDEGREE_AWARE, K.BOUND_N).function_class
        exact = computable_class(CM.OUTDEGREE_AWARE, K.EXACT_N).function_class
        assert none is bound
        assert bound < exact


class TestTable2:
    def test_no_port_column(self):
        with pytest.raises(KeyError):
            computable_class(CM.OUTPUT_PORT_AWARE, K.NONE, dynamic=True)

    def test_open_cells(self):
        assert computable_class(CM.OUTDEGREE_AWARE, K.NONE, dynamic=True).open_question
        assert computable_class(CM.OUTDEGREE_AWARE, K.LEADER, dynamic=True).open_question

    def test_symmetric_column_resolved(self):
        for knowledge in K:
            cell = computable_class(CM.SYMMETRIC, knowledge, dynamic=True)
            assert not cell.open_question

    def test_full_coverage(self):
        assert len(table2()) == len(ROW_ORDER) * len(TABLE2_MODELS)

    def test_labels(self):
        open_cell = computable_class(CM.OUTDEGREE_AWARE, K.NONE, dynamic=True)
        assert open_cell.label() == "?"
        solid = computable_class(CM.SYMMETRIC, K.EXACT_N, dynamic=True)
        assert "multiset" in solid.label()


class TestMonotonicity:
    def test_rows_monotone_in_knowledge(self):
        # More help never shrinks the computable class (where defined).
        order = [K.NONE, K.BOUND_N, K.EXACT_N]
        for models, dynamic in ((TABLE1_MODELS, False), (TABLE2_MODELS, True)):
            for model in models:
                classes = [
                    computable_class(model, k, dynamic=dynamic).function_class
                    for k in order
                ]
                known = [c for c in classes if c is not None]
                assert known == sorted(known, key=lambda c: c.value)
