"""Tests for the convergence detectors."""

import pytest

from repro.core.agent import BroadcastAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.graphs.builders import complete_graph


class SettleAfter(BroadcastAlgorithm):
    """Outputs its round counter until ``settle_at``, then a constant."""

    def __init__(self, settle_at: int, value="done"):
        self.settle_at = settle_at
        self.value = value

    def initial_state(self, input_value):
        return 0

    def message(self, state):
        return None

    def transition(self, state, received):
        return state + 1

    def output(self, state):
        return self.value if state >= self.settle_at else state


class Halver(BroadcastAlgorithm):
    """Error halves each round: converges asymptotically, never exactly."""

    def initial_state(self, input_value):
        return float(input_value)

    def message(self, state):
        return state

    def transition(self, state, received):
        return sum(received) / len(received)

    def output(self, state):
        return state


class TestRunUntilStable:
    def test_detects_stabilization_round(self):
        ex = Execution(SettleAfter(4), complete_graph(3), inputs=[0] * 3)
        report = run_until_stable(ex, max_rounds=20, patience=3)
        assert report.converged
        assert report.value == "done"
        assert report.stabilization_round == 4

    def test_target_mismatch_blocks_convergence(self):
        ex = Execution(SettleAfter(2, value="wrong"), complete_graph(3), inputs=[0] * 3)
        report = run_until_stable(ex, max_rounds=10, patience=2, target="right")
        assert not report.converged

    def test_never_stable(self):
        ex = Execution(SettleAfter(10**9), complete_graph(2), inputs=[0, 0])
        report = run_until_stable(ex, max_rounds=5, patience=2)
        assert not report.converged
        assert report.rounds_run == 5

    def test_patience_validation(self):
        ex = Execution(SettleAfter(1), complete_graph(2), inputs=[0, 0])
        with pytest.raises(ValueError):
            run_until_stable(ex, max_rounds=5, patience=0)

    def test_trace_records_unanimity(self):
        ex = Execution(SettleAfter(2), complete_graph(2), inputs=[0, 0])
        report = run_until_stable(ex, max_rounds=10, patience=2)
        assert report.trace[0] == 1  # both output round counter 1 after round 1


class TestRunUntilAsymptotic:
    def test_converges_to_average(self):
        ex = Execution(Halver(), complete_graph(4), inputs=[0.0, 0.0, 4.0, 4.0])
        report = run_until_asymptotic(ex, max_rounds=100, tolerance=1e-9, target=2.0)
        assert report.converged
        assert report.value == pytest.approx(2.0)

    def test_wrong_target_fails(self):
        ex = Execution(Halver(), complete_graph(4), inputs=[0.0, 0.0, 4.0, 4.0])
        report = run_until_asymptotic(ex, max_rounds=50, tolerance=1e-9, target=3.0)
        assert not report.converged

    def test_output_filter_blocks(self):
        ex = Execution(Halver(), complete_graph(2), inputs=[1.0, 1.0])
        report = run_until_asymptotic(
            ex, max_rounds=5, tolerance=1.0, output_filter=lambda o: False
        )
        assert not report.converged
        assert all(t == float("inf") for t in report.trace)

    def test_early_exit_on_patience(self):
        ex = Execution(Halver(), complete_graph(2), inputs=[1.0, 1.0])
        report = run_until_asymptotic(ex, max_rounds=1000, tolerance=1e-3, patience=3)
        assert report.converged
        assert report.rounds_run < 1000
