"""Unit tests for the layered engine: plans, transports, batch, hooks."""

import pytest

from repro.core.agent import BroadcastAlgorithm
from repro.core.engine import (
    BandwidthObserver,
    BatchJob,
    MessageCountObserver,
    PlanCache,
    SpreadObserver,
    StateDigestObserver,
    WallTimeObserver,
    compile_plan,
    run_batch,
    state_digest,
    transport_for,
    BroadcastTransport,
    OutdegreeTransport,
    OutputPortTransport,
)
from repro.core.execution import Execution
from repro.core.metrics import discrete_metric
from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.dynamics.dynamic_graph import FunctionDynamicGraph, StaticAsDynamic
from repro.graphs.builders import (
    bidirectional_ring,
    complete_graph,
    directed_ring,
    star_graph,
)


class CountMessages(BroadcastAlgorithm):
    def initial_state(self, input_value):
        return 0

    def message(self, state):
        return "ping"

    def transition(self, state, received):
        return state + len(received)

    def output(self, state):
        return state


class TestDeliveryPlan:
    def test_flat_schedule_matches_graph(self):
        g = star_graph(4)
        plan = compile_plan(g)
        assert plan.n == 4
        assert plan.num_messages == g.num_edges
        for j in range(4):
            assert list(plan.sources[j]) == [e.source for e in g.in_edges(j)]
            assert list(plan.source_ports[j]) == [g.port_of(e) for e in g.in_edges(j)]
        assert list(plan.outdegrees) == [g.outdegree(v) for v in range(4)]
        assert plan.all_self_loops

    def test_missing_self_loop_detected(self):
        from repro.graphs.digraph import DiGraph

        plan = compile_plan(DiGraph(2, [(0, 1), (1, 0)]))
        assert not plan.all_self_loops

    def test_symmetry_flag(self):
        assert compile_plan(bidirectional_ring(4)).symmetric
        assert not compile_plan(directed_ring(4)).symmetric


class TestPlanCache:
    def test_static_graph_compiles_once(self):
        g = directed_ring(8)
        cache = PlanCache()
        ex = Execution(CountMessages(), g, inputs=[0] * 8).share_plan_cache(cache)
        ex.run(10)
        assert cache.misses == 1
        assert cache.hits == 9

    def test_shared_across_executions(self):
        g = directed_ring(8)
        cache = PlanCache()
        for _ in range(3):
            Execution(CountMessages(), g, inputs=[0] * 8).share_plan_cache(cache).run(2)
        assert cache.misses == 1

    def test_lru_eviction_bounds_size(self):
        cache = PlanCache(maxsize=2)
        graphs = [directed_ring(3), directed_ring(4), directed_ring(5)]
        for g in graphs:
            cache.plan_for(g)
        assert len(cache) == 2

    def test_invalidate_by_graph(self):
        g = directed_ring(3)
        cache = PlanCache()
        cache.plan_for(g)
        cache.invalidate(g)
        assert len(cache) == 0
        cache.plan_for(g)
        assert cache.misses == 2

    def test_plan_epoch_retires_plans(self):
        calls = []

        def fn(t):
            calls.append(t)
            return directed_ring(3)

        dyn = FunctionDynamicGraph(3, fn)
        cache = PlanCache()
        ex = Execution(CountMessages(), dyn, inputs=[0] * 3).share_plan_cache(cache)
        ex.run(2)
        before = cache.misses
        assert dyn.plan_epoch == 0
        dyn.invalidate_plans()
        assert dyn.plan_epoch == 1
        ex.run(1)  # round 3: memo cleared + epoch bumped -> fresh compile
        assert cache.misses > before

    def test_rejects_empty_cache(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestTransportDispatch:
    def test_flavors_resolve_once(self):
        from repro.algorithms.push_sum import PushSumAlgorithm
        from tests.core.test_execution import PortSpray

        assert isinstance(transport_for(GossipAlgorithm()), BroadcastTransport)
        assert isinstance(transport_for(PushSumAlgorithm()), OutdegreeTransport)
        assert isinstance(transport_for(PortSpray()), OutputPortTransport)

    def test_unknown_flavor_rejected(self):
        class NotAnAlgorithm:
            pass

        with pytest.raises(TypeError, match="unknown algorithm flavor"):
            transport_for(NotAnAlgorithm())


class TestBatchRunner:
    def test_jobs_share_plans(self):
        g = complete_graph(5)
        cache = PlanCache()
        jobs = [
            BatchJob(GossipAlgorithm(), g, inputs=[1, 2, 3, 4, 5], runner="rounds", rounds=4)
            for _ in range(3)
        ]
        # parallel=False: this asserts on the *shared* cache, which pool
        # workers deliberately do not touch (they keep their own).
        results = run_batch(jobs, plan_cache=cache, parallel=False)
        assert len(results) == 3
        assert cache.misses == 1  # one graph, one plan, twelve rounds

    def test_detector_runners_need_round_budget(self):
        # Regression: rounds=0 with a convergence detector used to be
        # accepted silently and report non-convergence after zero rounds.
        g = complete_graph(3)
        with pytest.raises(ValueError, match="positive round budget"):
            BatchJob(
                GossipAlgorithm(),
                g,
                inputs=[1, 2, 3],
                runner="stable",
                target=frozenset({1, 2, 3}),
            )
        with pytest.raises(ValueError, match="positive round budget"):
            BatchJob(
                PushSumAlgorithm(),
                g,
                inputs=[1.0, 2.0, 3.0],
                runner="asymptotic",
                rounds=0,
                tolerance=1e-6,
                target=2.0,
            )

    def test_stable_runner_reports(self):
        g = complete_graph(4)
        (result,) = run_batch(
            [
                BatchJob(
                    GossipAlgorithm(),
                    g,
                    inputs=[1, 2, 3, 4],
                    runner="stable",
                    rounds=20,
                    target=frozenset({1, 2, 3, 4}),
                )
            ]
        )
        assert result.converged
        assert result.report.stabilization_round is not None
        assert discrete_metric(result.report.value, frozenset({1, 2, 3, 4})) == 0.0

    def test_asymptotic_runner_reports(self):
        g = complete_graph(4)
        (result,) = run_batch(
            [
                BatchJob(
                    PushSumAlgorithm(),
                    g,
                    inputs=[1.0, 2.0, 3.0, 4.0],
                    runner="asymptotic",
                    rounds=200,
                    tolerance=1e-6,
                    target=2.5,
                )
            ]
        )
        assert result.converged

    def test_results_in_job_order_with_labels(self):
        g = directed_ring(4)
        jobs = [
            BatchJob(CountMessages(), g, inputs=[0] * 4, rounds=k, label=f"job{k}")
            for k in (1, 2, 3)
        ]
        results = run_batch(jobs)
        assert [r.label for r in results] == ["job1", "job2", "job3"]
        assert [r.execution.round_number for r in results] == [1, 2, 3]

    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown runner"):
            BatchJob(CountMessages(), directed_ring(3), inputs=[0] * 3, runner="warp")

    def test_observers_ride_along(self):
        g = directed_ring(4)
        counter = MessageCountObserver()
        run_batch(
            [BatchJob(CountMessages(), g, inputs=[0] * 4, rounds=3, observers=[counter])]
        )
        assert counter.counts == [8, 8, 8]  # ring + self-loops = 2n edges


class TestInstrumentation:
    def test_message_counts(self):
        counter = MessageCountObserver()
        Execution(CountMessages(), star_graph(4), inputs=[0] * 4).attach(counter).run(2)
        assert counter.counts == [10, 10]  # 2*(n-1) star edges + n loops
        assert counter.total == 20

    def test_state_digest_canonicalizes_sets(self):
        assert state_digest([frozenset("ab")]) == state_digest([frozenset("ba")])
        assert state_digest([frozenset("ab")]) != state_digest([frozenset("ac")])

    def test_digest_observer_tracks_trajectory(self):
        digests = StateDigestObserver()
        Execution(GossipAlgorithm(), complete_graph(3), inputs=[1, 2, 3]).attach(
            digests
        ).run(3)
        # Gossip saturates on a complete graph after one round: the state
        # vector (hence its digest) is constant from round 1 on.
        assert len(digests.digests) == 3
        assert digests.digests[0] == digests.digests[1] == digests.digests[2]

    def test_bandwidth_observer_measures_sent_payloads(self):
        peaks = BandwidthObserver()
        Execution(GossipAlgorithm(), directed_ring(4), inputs=[1, 2, 3, 4]).attach(
            peaks
        ).run(3)
        # Round 1 ships singleton sets; sets only grow along the ring.
        assert peaks.peaks[0] == 1
        assert peaks.peaks == sorted(peaks.peaks)

    def test_spread_observer_feeds_metrics(self):
        spreads = SpreadObserver()
        Execution(
            PushSumAlgorithm(), bidirectional_ring(6), inputs=[0.0] * 5 + [12.0]
        ).attach(spreads).run(40)
        assert spreads.spreads[0] > 0.0
        assert spreads.spreads[-1] < spreads.spreads[0]

    def test_wall_time_observer(self):
        timer = WallTimeObserver()
        Execution(CountMessages(), directed_ring(4), inputs=[0] * 4).attach(timer).run(5)
        assert len(timer.seconds) == 5
        assert all(s >= 0.0 for s in timer.seconds)
        assert timer.total >= 0.0

    def test_detach_stops_observation(self):
        counter = MessageCountObserver()
        ex = Execution(CountMessages(), directed_ring(4), inputs=[0] * 4)
        ex.attach(counter).run(2)
        ex.detach(counter)
        ex.run(2)
        assert len(counter.counts) == 2


class TestFacade:
    def test_states_settable_for_self_stabilization_harnesses(self):
        ex = Execution(CountMessages(), directed_ring(3), inputs=[0] * 3)
        ex.states = [5, 5, 5]
        assert ex.states == [5, 5, 5]
        ex.step()
        assert ex.outputs() == [7, 7, 7]

    def test_static_wrapping_preserved(self):
        g = directed_ring(3)
        ex = Execution(CountMessages(), g, inputs=[0] * 3)
        assert isinstance(ex.network, StaticAsDynamic)
        assert ex.network.graph is g
