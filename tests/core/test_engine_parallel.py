"""Tests for the process-parallel batch backend (engine layer 3).

Covers the determinism contract (``parallel=True`` is bit-identical to
the sequential runner on outputs, reports, and deterministic observer
aggregates) and the robustness policy (crashed workers retried then
recovered in-parent, timeouts recovered in-parent, failures surfaced on
``BatchResult.worker_error``).
"""

import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.engine.parallel as parallel_mod
from repro.core.agent import BroadcastAlgorithm
from repro.core.engine import (
    BatchJob,
    ExecutionSnapshot,
    MessageCountObserver,
    StateDigestObserver,
    parallel_enabled_by_env,
    parallel_map,
    run_batch,
)
from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.graphs.builders import complete_graph, directed_ring


class PoisonInWorker(BroadcastAlgorithm):
    """Healthy in the parent; kills its process inside a pool worker."""

    def initial_state(self, input_value):
        return input_value

    def message(self, state):
        if parallel_mod.in_worker():
            os._exit(17)
        return state

    def transition(self, state, received):
        return max([state] + list(received))

    def output(self, state):
        return state


class SleepyInWorker(BroadcastAlgorithm):
    """Instant in the parent; far slower than any job timeout in a worker."""

    def initial_state(self, input_value):
        return input_value

    def message(self, state):
        if parallel_mod.in_worker():
            time.sleep(3.0)
        return state

    def transition(self, state, received):
        return max([state] + list(received))

    def output(self, state):
        return state


def _gossip_jobs(seeds):
    ring = directed_ring(5)
    complete = complete_graph(4)
    jobs = []
    for k, seed in enumerate(seeds):
        if k % 2 == 0:
            jobs.append(
                BatchJob(
                    GossipAlgorithm(),
                    ring,
                    inputs=[1, 2, 3, 4, 5],
                    rounds=6,
                    scramble_seed=seed,
                    label=f"ring-{k}",
                    observers=[MessageCountObserver(), StateDigestObserver()],
                )
            )
        else:
            jobs.append(
                BatchJob(
                    PushSumAlgorithm(),
                    complete,
                    inputs=[1.0, 2.0, 3.0, 4.0],
                    runner="asymptotic",
                    rounds=40,
                    tolerance=1e-9,
                    target=2.5,
                    scramble_seed=seed,
                    label=f"push-{k}",
                )
            )
    return jobs


class TestParallelDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=2, max_size=6))
    def test_parallel_bit_identical_to_sequential(self, seeds):
        sequential_jobs = _gossip_jobs(seeds)
        parallel_jobs = _gossip_jobs(seeds)
        seq = run_batch(sequential_jobs, parallel=False)
        par = run_batch(parallel_jobs, parallel=True, workers=3)
        assert len(seq) == len(par) == len(seeds)
        for s, p in zip(seq, par):
            assert p.worker_error is None
            assert repr(s.outputs) == repr(p.outputs)
            assert s.outputs == p.outputs
            assert repr(s.report) == repr(p.report)
            assert isinstance(p.execution, ExecutionSnapshot)
            assert p.execution.round_number == s.execution.round_number
        for s_job, p_job in zip(sequential_jobs, parallel_jobs):
            for s_obs, p_obs in zip(s_job.observers, p_job.observers):
                if isinstance(s_obs, MessageCountObserver):
                    assert s_obs.counts == p_obs.counts
                if isinstance(s_obs, StateDigestObserver):
                    assert s_obs.digests == p_obs.digests

    def test_observer_state_round_trips_from_workers(self):
        jobs = _gossip_jobs([7, 8, 9, 10])
        run_batch(jobs, parallel=True, workers=2)
        counter = jobs[0].observers[0]
        assert isinstance(counter, MessageCountObserver)
        assert len(counter.counts) == 6  # one record per round, recorded worker-side
        assert all(count > 0 for count in counter.counts)

    def test_parallel_map_matches_comprehension(self):
        items = list(range(17))
        assert parallel_map(lambda x: x * x + 1, items, workers=3) == [
            x * x + 1 for x in items
        ]

    def test_single_job_collapses_to_sequential(self):
        (result,) = run_batch(_gossip_jobs([5])[:1], parallel=True, workers=4)
        # A one-job batch never pays for a pool: it runs in-process and
        # keeps the live Execution instead of a snapshot.
        assert not isinstance(result.execution, ExecutionSnapshot)
        assert result.worker_error is None

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        assert parallel_enabled_by_env()
        monkeypatch.delenv("REPRO_PARALLEL")
        assert not parallel_enabled_by_env()


class TestParallelRobustness:
    def test_crashed_worker_recovered_in_parent(self):
        ring = directed_ring(4)
        jobs = [
            BatchJob(GossipAlgorithm(), ring, inputs=[1, 2, 3, 4], rounds=4, label="ok-0"),
            BatchJob(GossipAlgorithm(), ring, inputs=[4, 3, 2, 1], rounds=4, label="ok-1"),
            BatchJob(PoisonInWorker(), ring, inputs=[1, 2, 3, 4], rounds=4, label="poison"),
        ]
        results = run_batch(jobs, parallel=True, workers=2, chunk_size=1, max_retries=1)
        # Every job completes with correct outputs, because the poisoned
        # chunk (and any innocent chunk its crash takes down with it) is
        # re-run sequentially in the parent, where the algorithm behaves.
        expected = run_batch(
            [
                BatchJob(GossipAlgorithm(), ring, inputs=[1, 2, 3, 4], rounds=4),
                BatchJob(GossipAlgorithm(), ring, inputs=[4, 3, 2, 1], rounds=4),
                BatchJob(PoisonInWorker(), ring, inputs=[1, 2, 3, 4], rounds=4),
            ],
            parallel=False,
        )
        for got, want in zip(results, expected):
            assert got.outputs == want.outputs
        assert results[2].worker_error is not None
        assert "crash" in results[2].worker_error

    def test_timeout_recovered_in_parent(self):
        ring = directed_ring(3)
        jobs = [
            BatchJob(SleepyInWorker(), ring, inputs=[1, 2, 3], rounds=2, label="slow-0"),
            BatchJob(SleepyInWorker(), ring, inputs=[3, 2, 1], rounds=2, label="slow-1"),
        ]
        start = time.perf_counter()
        results = run_batch(
            jobs, parallel=True, workers=2, chunk_size=1, job_timeout=0.25, max_retries=0
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 6.0  # far less than the 2 * rounds * 3s worker sleeps
        for result in results:
            assert result.worker_error is not None
            assert "timeout" in result.worker_error
        assert results[0].outputs == [3, 3, 3]
        assert results[1].outputs == [3, 3, 3]

    def test_rejects_bad_policy_arguments(self):
        jobs = _gossip_jobs([1, 2])
        with pytest.raises(ValueError, match="max_retries"):
            run_batch(jobs, parallel=True, max_retries=-1)
        with pytest.raises(ValueError, match="job_timeout"):
            run_batch(jobs, parallel=True, job_timeout=0.0)

    def test_parallel_map_propagates_task_errors(self):
        def explode(x):
            if x == 3:
                raise RuntimeError("boom on 3")
            return x

        # The failed chunk falls back to the parent, where the exception
        # propagates exactly as the plain list comprehension would.
        with pytest.raises(RuntimeError, match="boom on 3"):
            parallel_map(explode, list(range(6)), workers=2, chunk_size=1)
