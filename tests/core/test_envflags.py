"""The shared environment-flag parser — one truth table for every knob.

Before :mod:`repro.envflags`, each subsystem parsed its switch its own
way: ``REPRO_PARALLEL`` accepted only the literal ``"1"``, ``REPRO_MEMO``
disabled only on the literal ``"0"``, so ``REPRO_PARALLEL=true`` silently
stayed sequential and ``REPRO_MEMO=false`` silently stayed memoized.
These tests pin the shared truth table — every documented disable
spelling (``=0``, ``=false``, empty string, ``no``, ``off``) actually
disables, every enable spelling enables, and unrecognized values keep
each flag's documented default — across all four flag consumers plus the
``REPRO_STORE`` path variable.
"""

import pytest

from repro.envflags import FALSY, TRUTHY, env_flag, env_float, env_path, parse_flag


DISABLE_SPELLINGS = ["0", "false", "", "no", "off", "FALSE", "No", " 0 "]
ENABLE_SPELLINGS = ["1", "true", "yes", "on", "TRUE", "Yes", " 1 "]


class TestParseFlag:
    @pytest.mark.parametrize("raw", DISABLE_SPELLINGS)
    def test_falsy_spellings(self, raw):
        assert parse_flag(raw, default=True) is False
        assert parse_flag(raw, default=False) is False

    @pytest.mark.parametrize("raw", ENABLE_SPELLINGS)
    def test_truthy_spellings(self, raw):
        assert parse_flag(raw, default=True) is True
        assert parse_flag(raw, default=False) is True

    @pytest.mark.parametrize("raw", [None, "2", "maybe", "enabled"])
    def test_unset_or_unrecognized_keeps_default(self, raw):
        # "2" kept its historical meaning on both sides of the default:
        # REPRO_PARALLEL=2 never enabled, REPRO_MEMO=2 never disabled.
        assert parse_flag(raw, default=True) is True
        assert parse_flag(raw, default=False) is False

    def test_tables_are_disjoint(self):
        assert not (FALSY & TRUTHY)


class TestEnvFlag:
    @pytest.mark.parametrize("raw", DISABLE_SPELLINGS)
    def test_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG", default=True) is False

    @pytest.mark.parametrize("raw", ENABLE_SPELLINGS)
    def test_enable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG", default=False) is True

    def test_unset_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        assert env_flag("REPRO_TEST_FLAG", default=False) is False


class TestEnvPath:
    def test_unset_empty_and_whitespace_mean_no_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_PATH", raising=False)
        assert env_path("REPRO_TEST_PATH") is None
        monkeypatch.setenv("REPRO_TEST_PATH", "")
        assert env_path("REPRO_TEST_PATH") is None
        monkeypatch.setenv("REPRO_TEST_PATH", "   ")
        assert env_path("REPRO_TEST_PATH") is None

    def test_set_path_comes_back_verbatim(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_PATH", "/tmp/some-store")
        assert env_path("REPRO_TEST_PATH") == "/tmp/some-store"


class TestEnvFloat:
    @pytest.mark.parametrize(
        "raw,expected",
        [("2.5", 2.5), ("10", 10.0), (" 0.25 ", 0.25), ("1e2", 100.0)],
    )
    def test_valid_spellings(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_TEST_FLOAT", raw)
        assert env_float("REPRO_TEST_FLOAT", 7.0) == expected

    @pytest.mark.parametrize("raw", ["", "   ", "soon", "1.2.3", "nan", "inf", "-inf"])
    def test_invalid_spellings_keep_default(self, monkeypatch, raw):
        # NaN/inf are parsable floats but nonsense as intervals: a NaN
        # TTL would make every staleness comparison False forever.
        monkeypatch.setenv("REPRO_TEST_FLOAT", raw)
        assert env_float("REPRO_TEST_FLOAT", 7.0) == 7.0

    def test_unset_keeps_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLOAT", raising=False)
        assert env_float("REPRO_TEST_FLOAT", 3.5) == 3.5

    def test_below_minimum_keeps_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "0.0")
        assert env_float("REPRO_TEST_FLOAT", 5.0, minimum=0.1) == 5.0
        monkeypatch.setenv("REPRO_TEST_FLOAT", "-3")
        assert env_float("REPRO_TEST_FLOAT", 5.0, minimum=0.0) == 5.0
        monkeypatch.setenv("REPRO_TEST_FLOAT", "0.1")
        assert env_float("REPRO_TEST_FLOAT", 5.0, minimum=0.1) == 0.1


class TestSchedulerTimingKnobs:
    """The scheduler's two clocks are env-configurable with validation."""

    def test_lease_ttl_from_environment(self, monkeypatch):
        from repro.store.scheduler import (
            DEFAULT_LEASE_TTL,
            LEASE_STALE_ENV,
            default_lease_ttl,
        )

        monkeypatch.setenv(LEASE_STALE_ENV, "4.5")
        assert default_lease_ttl() == 4.5
        monkeypatch.setenv(LEASE_STALE_ENV, "not-a-number")
        assert default_lease_ttl() == DEFAULT_LEASE_TTL
        monkeypatch.setenv(LEASE_STALE_ENV, "0")  # below the 0.1s floor
        assert default_lease_ttl() == DEFAULT_LEASE_TTL
        monkeypatch.delenv(LEASE_STALE_ENV)
        assert default_lease_ttl() == DEFAULT_LEASE_TTL

    def test_heartbeat_interval_from_environment(self, monkeypatch):
        from repro.store.scheduler import (
            DEFAULT_HEARTBEAT_SECONDS,
            HEARTBEAT_ENV,
            default_heartbeat_seconds,
        )

        monkeypatch.setenv(HEARTBEAT_ENV, "0.5")
        assert default_heartbeat_seconds() == 0.5
        monkeypatch.setenv(HEARTBEAT_ENV, "-1")
        assert default_heartbeat_seconds() == DEFAULT_HEARTBEAT_SECONDS
        monkeypatch.delenv(HEARTBEAT_ENV)
        assert default_heartbeat_seconds() == DEFAULT_HEARTBEAT_SECONDS

    def test_queue_inherits_env_ttl(self, monkeypatch, tmp_path):
        from repro.store.scheduler import JobQueue, LEASE_STALE_ENV

        monkeypatch.setenv(LEASE_STALE_ENV, "1.25")
        assert JobQueue(tmp_path / "q").lease_ttl == 1.25
        # An explicit lease_ttl always beats the environment.
        assert JobQueue(tmp_path / "q2", lease_ttl=9.0).lease_ttl == 9.0

    def test_orchestrator_inherits_env_heartbeat(self, monkeypatch, tmp_path):
        from repro.store.orchestrator import Orchestrator
        from repro.store.scheduler import HEARTBEAT_ENV

        monkeypatch.setenv(HEARTBEAT_ENV, "0.2")
        orch = Orchestrator(tmp_path, pools=1)
        assert orch.heartbeat_interval == 0.2


class TestConsumers:
    """The four flag consumers all route through the shared parser."""

    @pytest.mark.parametrize("raw", ["0", "false", ""])
    def test_parallel_disable_spellings(self, monkeypatch, raw):
        from repro.core.engine.batch import parallel_enabled_by_env

        monkeypatch.setenv("REPRO_PARALLEL", raw)
        assert parallel_enabled_by_env() is False

    def test_parallel_enable_spellings(self, monkeypatch):
        from repro.core.engine.batch import parallel_enabled_by_env

        for raw in ("1", "true", "yes"):
            monkeypatch.setenv("REPRO_PARALLEL", raw)
            assert parallel_enabled_by_env() is True

    @pytest.mark.parametrize("raw", ["0", "false", ""])
    def test_memo_disable_spellings(self, monkeypatch, raw):
        from repro.core.memo import memo_enabled

        monkeypatch.setenv("REPRO_MEMO", raw)
        assert memo_enabled() is False

    def test_memo_default_on_and_odd_values_stay_on(self, monkeypatch):
        from repro.core.memo import memo_enabled

        monkeypatch.delenv("REPRO_MEMO", raising=False)
        assert memo_enabled() is True
        monkeypatch.setenv("REPRO_MEMO", "2")  # historical: not a disable
        assert memo_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", ""])
    def test_quotient_disable_spellings(self, monkeypatch, raw):
        from repro.core.engine.quotient import quotient_enabled_by_env

        monkeypatch.setenv("REPRO_QUOTIENT", raw)
        assert quotient_enabled_by_env() is False

    def test_quotient_enable_spellings(self, monkeypatch):
        from repro.core.engine.quotient import quotient_enabled_by_env

        for raw in ("1", "on", "True"):
            monkeypatch.setenv("REPRO_QUOTIENT", raw)
            assert quotient_enabled_by_env() is True

    @pytest.mark.parametrize("raw", ["0", "false", ""])
    def test_vector_disable_spellings(self, monkeypatch, raw):
        from repro.core.engine.vector import vector_enabled_by_env

        monkeypatch.setenv("REPRO_VECTOR", raw)
        assert vector_enabled_by_env() is False

    def test_vector_enable_spellings(self, monkeypatch):
        from repro.core.engine.vector import vector_enabled_by_env

        for raw in ("1", "yes", "ON"):
            monkeypatch.setenv("REPRO_VECTOR", raw)
            assert vector_enabled_by_env() is True

    def test_store_env_empty_means_no_store(self, monkeypatch):
        from repro.store.cache import STORE_ENV, default_store

        monkeypatch.setenv(STORE_ENV, "")
        assert default_store() is None
        monkeypatch.setenv(STORE_ENV, "   ")
        assert default_store() is None


class TestEnvInt:
    """``env_int`` — the service listener's knobs ride through here."""

    @pytest.mark.parametrize(
        "raw,expected", [("8080", 8080), ("0", 0), (" 443 ", 443), ("-3", -3)]
    )
    def test_valid_spellings(self, monkeypatch, raw, expected):
        from repro.envflags import env_int

        monkeypatch.setenv("REPRO_TEST_INT", raw)
        assert env_int("REPRO_TEST_INT", 7) == expected

    @pytest.mark.parametrize("raw", ["", "  ", "abc", "8.5", "1e3", "0x10"])
    def test_invalid_spellings_keep_default(self, monkeypatch, raw):
        from repro.envflags import env_int

        monkeypatch.setenv("REPRO_TEST_INT", raw)
        assert env_int("REPRO_TEST_INT", 7) == 7

    def test_unset_keeps_default(self, monkeypatch):
        from repro.envflags import env_int

        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT", 9) == 9

    def test_out_of_range_keeps_default(self, monkeypatch):
        from repro.envflags import env_int

        monkeypatch.setenv("REPRO_TEST_INT", "70000")
        assert env_int("REPRO_TEST_INT", 8765, minimum=0, maximum=65535) == 8765
        monkeypatch.setenv("REPRO_TEST_INT", "-1")
        assert env_int("REPRO_TEST_INT", 8765, minimum=0, maximum=65535) == 8765

    def test_port_zero_is_in_range(self, monkeypatch):
        """Port 0 — bind ephemerally — is a legitimate configuration,
        not an out-of-range value."""
        from repro.envflags import env_int

        monkeypatch.setenv("REPRO_TEST_INT", "0")
        assert env_int("REPRO_TEST_INT", 8765, minimum=0, maximum=65535) == 0

    def test_service_knobs_route_through_env_int(self, monkeypatch):
        from repro.service.app import (
            SERVICE_BACKLOG_ENV,
            SERVICE_PORT_ENV,
            service_backlog,
            service_port,
        )

        monkeypatch.setenv(SERVICE_PORT_ENV, "0")
        assert service_port() == 0
        monkeypatch.setenv(SERVICE_PORT_ENV, "not-a-port")
        assert service_port() == 8765
        monkeypatch.setenv(SERVICE_BACKLOG_ENV, "256")
        assert service_backlog() == 256
        monkeypatch.setenv(SERVICE_BACKLOG_ENV, "0")  # below minimum 1
        assert service_backlog() == 128
